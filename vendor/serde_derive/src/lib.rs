//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim, written against `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable offline).
//!
//! The generated impls only need field *names* and *arities* — payload
//! types are recovered by inference at the construction site (struct
//! literals and variant constructors), so the parser never has to
//! understand Rust's type grammar beyond skipping it. Supported shapes are
//! exactly what the workspace derives on: non-generic structs (named,
//! tuple, unit) and enums whose variants are unit, tuple, or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, true).parse().expect("generated code parses")
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, false).parse().expect("generated code parses")
}

enum Fields {
    Unit,
    /// Tuple struct/variant with this many elements.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(match toks.next() {
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("unexpected token after struct name: {other:?}"),
        }),
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("expected attribute body, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` and friends carry a parenthesized scope.
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Skips one type expression: everything up to a `,` at angle-bracket
/// depth 0. Token streams already group `()`/`[]`/`{}`, so only `<>` needs
/// explicit tracking.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return names,
            Some(TokenTree::Ident(i)) => names.push(i.to_string()),
            other => panic!("expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type(&mut toks);
        match toks.next() {
            None => return names,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` between fields, got {other:?}"),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return count;
        }
        skip_type(&mut toks);
        count += 1;
        match toks.next() {
            None => return count,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` between tuple fields, got {other:?}"),
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return variants,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, if any.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            while let Some(t) = toks.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                toks.next();
            }
        }
        variants.push(Variant { name, fields });
        match toks.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` between variants, got {other:?}"),
        }
    }
}

// ---- code generation ---------------------------------------------------

fn render(item: &Item, serialize: bool) -> String {
    match (&item.shape, serialize) {
        (Shape::Struct(fields), true) => render_struct_ser(&item.name, fields),
        (Shape::Struct(fields), false) => render_struct_de(&item.name, fields),
        (Shape::Enum(variants), true) => render_enum_ser(&item.name, variants),
        (Shape::Enum(variants), false) => render_enum_de(&item.name, variants),
    }
}

fn fields_to_value(fields: &Fields, access: &dyn Fn(&str) -> String) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value({})", access(&i.to_string())))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({}))",
                        access(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
    }
}

fn fields_from_value(ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => ctor.to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_idx({src}, {i})?"))
                .collect();
            format!("{ctor}({})", items.join(", "))
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::de_field({src}, \"{f}\")?"))
                .collect();
            format!("{ctor} {{ {} }}", inits.join(", "))
        }
    }
}

fn render_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        // Single-element tuple structs serialize as their payload
        // (serde's newtype-struct convention).
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        _ => fields_to_value(fields, &|f| format!("&self.{f}")),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Tuple(1) => format!("{name}(::serde::Deserialize::from_value(v)?)"),
        _ => fields_from_value(name, fields, "v"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         Ok({body})\n\
         }}\n\
         }}"
    )
}

fn render_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),",
                        binds.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let pairs: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                        fs.join(", "),
                        pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}

fn render_enum_de(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            let ctor = format!("{name}::{vn}");
            let build = match &v.fields {
                Fields::Unit => ctor,
                Fields::Tuple(1) => format!("{ctor}(::serde::Deserialize::from_value(inner)?)"),
                other => fields_from_value(&ctor, other, "inner"),
            };
            format!("\"{vn}\" => Ok({build}),")
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let (tag, inner) = ::serde::enum_parts(v)?;\n\
         let _ = inner;\n\
         match tag {{\n{}\n\
         other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}
