//! Offline mini property-testing harness exposing the subset of the
//! `proptest` surface this workspace uses: the `proptest!` macro,
//! range/tuple/`any`/`collection::vec` strategies, `prop::sample::Index`,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic, which suits CI), and the `proptest!` macro reports failing
//! inputs without shrinking them. Explicit shrinking is available through the
//! [`shrink`] module: implement [`shrink::Shrink`] for a type and call
//! [`shrink::minimize`] with a failure predicate to greedily reduce a failing
//! value to a local minimum. Case counts are honored exactly.

#![forbid(unsafe_code)]

pub mod shrink;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Harness internals used by the macro expansion.
pub mod test_runner {
    /// Deterministic xoshiro256++ source for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from a fixed constant (plus `salt`, so each
        /// test in a block sees a different stream).
        pub fn deterministic(salt: u64) -> Self {
            let mut sm = 0x5EED_CAFE_F00D_D00Du64 ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A failed property, carrying its message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

    /// Types with a canonical "anything goes" strategy ([`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// The canonical strategy for `T`.
        pub fn new() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Nested strategy modules (mirrors the `proptest::prop` hierarchy).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A length range for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy for vectors whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::Arbitrary;
        use crate::test_runner::TestRng;

        /// An index into a collection of not-yet-known size
        /// (`any::<Index>()` then [`Index::index`]).
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Projects this index into `0..size`.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "cannot index an empty collection");
                (self.0 % size as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Self(rng.next_u64())
            }
        }
    }
}

/// Everything a `proptest!` caller needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Distinct per-test stream, stable across runs.
                let salt = stringify!($name).bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(31).wrapping_add(b as u64)
                });
                let mut rng = $crate::test_runner::TestRng::deterministic(salt);
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
