//! Explicit shrinking primitives.
//!
//! Upstream proptest shrinks through its strategy tree; this shim keeps
//! generation and shrinking separate so domain crates can derive candidates
//! from their own structure. A type opts in by implementing [`Shrink`]:
//! `shrink_candidates` proposes strictly-simpler variants of a value, and
//! [`minimize`] drives a greedy descent — it repeatedly replaces the current
//! failing value with the first candidate that still fails, stopping at a
//! local minimum where no candidate reproduces the failure.
//!
//! Determinism: candidates are explored in the order the implementation
//! returns them and the predicate is the only source of control flow, so for
//! a deterministic predicate the shrunk value is a pure function of the seed
//! value.

/// Types that can propose strictly-simpler variants of themselves.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`, simplest-first where possible.
    ///
    /// Every candidate must be *strictly* simpler than `self` by some
    /// well-founded measure (fewer elements, smaller magnitude, fewer set
    /// bits); otherwise [`minimize`] relies on its iteration bound to
    /// terminate.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Upper bound on greedy descent steps, a backstop against candidate sets
/// that are not strictly decreasing.
const MAX_SHRINK_STEPS: usize = 10_000;

/// Greedily minimizes a failing value.
///
/// `still_fails` must return `true` for any value that reproduces the
/// original failure (it is guaranteed to hold for `seed`). The result is a
/// value for which `still_fails` returned `true` and none of whose
/// candidates reproduce the failure — a local minimum under
/// [`Shrink::shrink_candidates`].
pub fn minimize<T: Shrink + Clone>(seed: T, mut still_fails: impl FnMut(&T) -> bool) -> T {
    let mut current = seed;
    for _ in 0..MAX_SHRINK_STEPS {
        let Some(next) = current
            .shrink_candidates()
            .into_iter()
            .find(|c| still_fails(c))
        else {
            break;
        };
        current = next;
    }
    current
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self == 0 {
                    return out;
                }
                out.push(0);
                let half = *self / 2;
                if half != 0 {
                    out.push(half);
                }
                out.push(*self - 1);
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Dropping elements first: structural shrinks beat value shrinks.
        for i in 0..self.len() {
            let mut shorter = self.clone();
            shorter.remove(i);
            out.push(shorter);
        }
        for (i, elem) in self.iter().enumerate() {
            for cand in elem.shrink_candidates() {
                let mut simpler = self.clone();
                simpler[i] = cand;
                out.push(simpler);
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_minimizes_to_threshold() {
        // Failure: value >= 17. Greedy descent must land exactly on 17.
        let shrunk = minimize(1000u64, |v| *v >= 17);
        assert_eq!(shrunk, 17);
    }

    #[test]
    fn uint_zero_has_no_candidates() {
        assert!(0u32.shrink_candidates().is_empty());
        assert_eq!(minimize(0u32, |_| true), 0);
    }

    #[test]
    fn vec_minimizes_to_smallest_failing_subset() {
        // Failure: contains at least two elements >= 5.
        let seed = vec![9u32, 1, 7, 3, 8];
        let shrunk = minimize(seed, |v| v.iter().filter(|&&x| x >= 5).count() >= 2);
        assert_eq!(shrunk, vec![5, 5]);
    }

    #[test]
    fn option_shrinks_to_none_when_possible() {
        let shrunk = minimize(Some(40u8), |_| true);
        assert_eq!(shrunk, None);
    }

    #[test]
    fn minimize_is_deterministic() {
        let run = || minimize(vec![250u8, 13, 99], |v| v.iter().any(|&x| x > 50));
        assert_eq!(run(), run());
    }
}
