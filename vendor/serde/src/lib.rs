//! Offline serialization shim exposing the `serde` surface this workspace
//! uses: the [`Serialize`]/[`Deserialize`] traits plus same-named derive
//! macros. Instead of serde's visitor architecture, both traits convert
//! through an owned [`Value`] tree; `serde_json` (the sibling shim) renders
//! and parses that tree. The derive output follows serde's data model for
//! plain types — structs as objects, tuple structs as arrays, externally
//! tagged enums — so the JSON shape is what callers expect, and round trips
//! through `serde_json` are exact.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integers.
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced by [`Deserialize`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by the derive expansion ------------------------------

/// Fetches and deserializes field `key` of an object (derive helper).
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    let field = v
        .get(key)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))?;
    T::from_value(field)
}

/// Fetches and deserializes element `idx` of an array (derive helper).
pub fn de_idx<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => items
            .get(idx)
            .ok_or_else(|| Error::msg(format!("missing tuple element {idx}")))
            .and_then(T::from_value),
        _ => Err(Error::msg("expected array")),
    }
}

/// Splits an externally tagged enum value `{ "Variant": inner }` into its
/// tag and payload (derive helper).
pub fn enum_parts(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        Value::Str(tag) => Ok((tag.as_str(), &Value::Null)),
        _ => Err(Error::msg("expected externally tagged enum")),
    }
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($(de_idx::<$t>(v, $n)?,)+))
            }
        }
    )*};
}
impl_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = de_field(v, "secs")?;
        let nanos: u32 = de_field(v, "nanos")?;
        if nanos >= 1_000_000_000 {
            return Err(Error::msg("duration nanos out of range"));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
