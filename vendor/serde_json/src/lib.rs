//! Offline JSON front end for the vendored serde shim: renders
//! [`serde::Value`] trees to JSON text (compact and pretty) and parses JSON
//! text back. Round trips through [`to_string`]/[`from_str`] are exact for
//! everything the shim's data model covers.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::Value;

/// Error type for rendering and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the tree contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the tree contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::msg("non-finite float is not valid JSON"));
            }
            // `{:?}` gives the shortest representation that round-trips,
            // and always keeps a decimal point or exponent.
            let _ = write!(out, "{x:?}");
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render_string(k, out);
                out.push_str(colon);
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid;
                    // copy the full scalar.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg("expected a JSON value"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("xor\n\"2\"".into())),
            (
                "legs".into(),
                Value::Array(vec![Value::UInt(3), Value::Int(-7), Value::Float(0.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(u32, bool)> = vec![(1, true), (2, false)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u32, bool)> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn float_formatting_round_trips() {
        for x in [0.1f64, 1.0, -2.5, 1e-9, std::f64::consts::PI] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x, back, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
