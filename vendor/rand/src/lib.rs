//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides exactly the surface the workspace uses: the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`] backed by xoshiro256++ (the same algorithm family
//! the real `small_rng` feature ships). Statistical quality matches the
//! upstream generator; streams differ, which is fine because every caller
//! seeds explicitly and only requires determinism, not bit-compatibility.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from raw bits — the shim's stand-in for sampling from
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // at these span sizes is far below measurement noise.
                self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++), mirroring `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as used by upstream rand_core.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_roughly_matches_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
