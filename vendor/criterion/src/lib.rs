//! Offline micro-bench harness exposing the `criterion` surface the
//! workspace's benches use: `Criterion`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Unlike upstream, there is no statistical engine: each benchmark runs
//! `sample_size` timed iterations after one warm-up and prints min/mean
//! wall-clock per iteration. That is enough to compare configurations
//! (which is what the repo's benches are for) without the plotting and
//! regression machinery. `--bench <filter>` style positional filters are
//! honored as substring matches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), p))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, executing one warm-up call plus `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// Top-level bench context (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Self {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.sample_size;
        run_one(name, samples, self.filter.as_deref(), f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        run_one(&full, samples, self.criterion.filter.as_deref(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalizes reports here; we need no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, filter: Option<&str>, mut f: F) {
    if let Some(needle) = filter {
        if !name.contains(needle) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        results: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{name:<48} (no measurement: closure never called iter)");
        return;
    }
    let min = bencher.results.iter().min().expect("non-empty");
    let total: Duration = bencher.results.iter().sum();
    let mean = total / bencher.results.len() as u32;
    println!(
        "{name:<48} min {:>12} mean {:>12} ({} samples)",
        format_duration(*min),
        format_duration(mean),
        bencher.results.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        // No CLI filter in the test harness context should stop this name.
        c.filter = None;
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
