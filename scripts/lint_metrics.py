#!/usr/bin/env python3
"""Lint mmsynthd Prometheus scrapes (the GET /metrics exposition text).

Fails (exit 1) when:

* a scrape has malformed exposition lines, samples without a `# HELP` /
  `# TYPE` header, duplicate series, or an unknown metric type;
* a histogram family is internally inconsistent: bucket counts decrease
  as `le` grows, the `+Inf` bucket disagrees with `_count`, or `_sum` /
  `_count` samples are missing;
* a family the daemon registers at start (queue, jobs, cache, solver,
  progress) is absent, or — with --require-jobs — the per-job families
  (`mmsynth_jobs_total`, `mmsynth_job_duration_us`, `mmsynth_rungs_total`)
  are absent from a scrape taken after work was done;
* given two scrapes, any counter series in the first is missing from or
  decreased in the second (counters only go up within one daemon life).

Stdlib only, so the CI leg needs nothing beyond python3.
"""

import argparse
import re
import sys

# Families ServiceMetrics::register + MetricsBridgeSink::new create at
# daemon start, so every scrape must contain them — even before any job.
EAGER_FAMILIES = {
    "mmsynth_queue_depth": "gauge",
    "mmsynth_jobs_inflight": "gauge",
    "mmsynth_admissions_total": "counter",
    "mmsynth_sheds_total": "counter",
    "mmsynth_retries_total": "counter",
    "mmsynth_panics_total": "counter",
    "mmsynth_cache_hits_total": "counter",
    "mmsynth_cache_misses_total": "counter",
    "mmsynth_cache_stores_total": "counter",
    "mmsynth_cache_quarantined_total": "counter",
    "mmsynth_cache_entries": "gauge",
    "mmsynth_cache_disk_bytes": "gauge",
    "mmsynth_progress_frames_total": "counter",
    "mmsynth_solver_conflicts_total": "counter",
    "mmsynth_solver_propagations_total": "counter",
    "mmsynth_solver_decisions_total": "counter",
    "mmsynth_solver_restarts_total": "counter",
    "mmsynth_ladder_clauses_exported_total": "counter",
    "mmsynth_ladder_clauses_imported_total": "counter",
}

# Families registered lazily by the first resolved job.
JOB_FAMILIES = {
    "mmsynth_jobs_total": "counter",
    "mmsynth_job_duration_us": "histogram",
    "mmsynth_rungs_total": "counter",
}

SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")

errors = []


def check(cond, message):
    if not cond:
        errors.append(message)


def parse_scrape(path):
    """Returns (types, samples): family name -> declared type, and
    (name, label block) -> float value."""
    types = {}
    helped = set()
    samples = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                check(len(parts) >= 4, f"{where}: HELP line without help text")
                if len(parts) >= 3:
                    helped.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                check(len(parts) == 4, f"{where}: malformed TYPE line")
                if len(parts) == 4:
                    _, _, name, kind = parts
                    check(
                        kind in ("counter", "gauge", "histogram"),
                        f"{where}: unknown metric type {kind!r}",
                    )
                    check(name not in types, f"{where}: duplicate TYPE for {name}")
                    types[name] = kind
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            check(m, f"{where}: unparseable sample line {line!r}")
            if not m:
                continue
            name, block, value = m.group(1), m.group(2) or "", m.group(3)
            family = re.sub(r"_(bucket|sum|count)$", "", name)
            check(
                name in types or family in types,
                f"{where}: sample {name} has no TYPE header",
            )
            check(
                name in helped or family in helped,
                f"{where}: sample {name} has no HELP header",
            )
            try:
                parsed = float(value)
            except ValueError:
                check(False, f"{where}: non-numeric value {value!r} for {name}")
                continue
            key = (name, block)
            check(key not in samples, f"{where}: duplicate series {name}{block}")
            samples[key] = parsed
    check(types, f"{path}: empty scrape")
    return types, samples


def strip_le(block):
    """Drops the `le` label from a bucket's label block."""
    inner = block[1:-1]
    labels = [p for p in inner.split(",") if p and not p.startswith("le=")]
    return "{" + ",".join(labels) + "}" if labels else ""


def lint_histograms(path, types, samples):
    for family, kind in types.items():
        if kind != "histogram":
            continue
        # Group buckets by their non-le label block.
        series = {}
        for (name, block), value in samples.items():
            if name != f"{family}_bucket":
                continue
            le_match = re.search(r'le="([^"]*)"', block)
            check(le_match, f"{path}: bucket of {family} without le label")
            if not le_match:
                continue
            le = float("inf") if le_match.group(1) == "+Inf" else float(le_match.group(1))
            series.setdefault(strip_le(block), []).append((le, value))
        check(series, f"{path}: histogram {family} has no buckets")
        for block, buckets in series.items():
            buckets.sort()
            check(
                buckets[-1][0] == float("inf"),
                f"{path}: {family}{block} lacks a +Inf bucket",
            )
            cumulative = [v for _, v in buckets]
            check(
                all(a <= b for a, b in zip(cumulative, cumulative[1:])),
                f"{path}: {family}{block} bucket counts decrease",
            )
            count = samples.get((f"{family}_count", block))
            check(count is not None, f"{path}: {family}{block} lacks _count")
            check(
                (f"{family}_sum", block) in samples,
                f"{path}: {family}{block} lacks _sum",
            )
            if count is not None:
                check(
                    buckets[-1][1] == count,
                    f"{path}: {family}{block} +Inf bucket {buckets[-1][1]} "
                    f"!= _count {count}",
                )


def lint_families(path, types, required):
    for family, kind in sorted(required.items()):
        check(family in types, f"{path}: required family {family} missing")
        if family in types:
            check(
                types[family] == kind,
                f"{path}: {family} is {types[family]}, want {kind}",
            )


def counter_series(types, samples):
    """Every (name, block) -> value that must be non-decreasing: counter
    samples plus histogram buckets/sums/counts."""
    out = {}
    for (name, block), value in samples.items():
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if types.get(name) == "counter" or types.get(family) == "histogram":
            out[(name, block)] = value
    return out


def lint_monotone(first_path, first, second_path, second):
    before = counter_series(*first)
    after = counter_series(*second)
    for key, value in sorted(before.items()):
        name, block = key
        check(
            key in after,
            f"{second_path}: counter {name}{block} vanished (present in "
            f"{first_path})",
        )
        if key in after:
            check(
                after[key] >= value,
                f"{second_path}: counter {name}{block} decreased "
                f"{value} -> {after[key]}",
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "scrapes",
        nargs="+",
        help="one or more /metrics scrape files, oldest first",
    )
    parser.add_argument(
        "--require-jobs",
        action="store_true",
        help="also require the per-job families (scrape taken after work)",
    )
    args = parser.parse_args()

    required = dict(EAGER_FAMILIES)
    if args.require_jobs:
        required.update(JOB_FAMILIES)

    parsed = []
    for path in args.scrapes:
        types, samples = parse_scrape(path)
        lint_histograms(path, types, samples)
        lint_families(path, types, required)
        parsed.append((path, (types, samples)))
    for (p1, s1), (p2, s2) in zip(parsed, parsed[1:]):
        lint_monotone(p1, s1, p2, s2)

    if errors:
        for e in errors:
            print(f"lint_metrics: {e}", file=sys.stderr)
        return 1
    print(
        f"lint_metrics: {len(args.scrapes)} scrape(s) check out "
        f"({len(required)} required families)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
