#!/usr/bin/env python3
"""Diff two BENCH_<n>.json performance-trajectory reports.

Compares a candidate report (fresh `bench_report` run) against a baseline
(the committed report of the previous PR, or the same PR's committed file
on a re-run). Gating rules:

* Deterministic metrics (seeded counters, CNF sizes) fail the diff when
  they move more than --threshold (default 20%) in their *bad* direction
  (`Lower` metrics going up, `Higher` metrics going down). They are exact
  functions of the workload, so any drift is a real change.
* Wall-clock metrics (deterministic: false) only warn, because container
  clocks are noisy. --strict-time promotes them to failures.
* Metrics present on one side only are reported (new probes appear as a
  PR lands them; that is informational, not a failure).
* A missing or unparseable baseline/candidate file is a clear one-line
  error, never a traceback. --allow-missing-baseline restores the
  bootstrap behavior (first PR with a bench report has no baseline).

Stdlib only, so the CI leg needs nothing beyond python3.
"""

import argparse
import json
import os
import sys

BENCH_SCHEMA_VERSION = 1


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as err:
        sys.exit(f"bench-diff: cannot read {path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench-diff: {path} is not valid JSON ({err}); "
                 "regenerate it with bench_report")
    if not isinstance(report, dict):
        sys.exit(f"bench-diff: {path}: expected a JSON object at top level, "
                 f"got {type(report).__name__}")
    version = report.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        sys.exit(f"{path}: unsupported bench schema version {version!r} "
                 f"(expected {BENCH_SCHEMA_VERSION})")
    metrics = {}
    for metric in report.get("metrics", []):
        name = metric.get("name")
        if not isinstance(name, str) or not isinstance(metric.get("value"), (int, float)):
            sys.exit(f"{path}: malformed metric entry {metric!r}")
        metrics[name] = metric
    return metrics


def regression(base, cand):
    """Signed fractional change in the *bad* direction, or None if ungated."""
    direction = cand.get("direction")
    if direction not in ("Lower", "Higher"):
        return None
    old, new = base["value"], cand["value"]
    if old == 0.0:
        # A zero baseline has no meaningful ratio; only flag Lower metrics
        # that became nonzero (0 conflicts -> any conflicts is a regression
        # of unknown size: report 100%).
        if direction == "Lower" and new > 0.0:
            return 1.0
        return 0.0
    change = (new - old) / abs(old)
    return change if direction == "Lower" else -change


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="previous BENCH_<n>.json")
    parser.add_argument("candidate", help="freshly generated BENCH_<n>.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed bad-direction change (fraction, default 0.20)")
    parser.add_argument("--strict-time", action="store_true",
                        help="gate wall-clock metrics too instead of warning")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="pass when the baseline file does not exist "
                             "(bootstrap: the first bench-emitting PR)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        if args.allow_missing_baseline:
            print(f"bench-diff: no baseline at {args.baseline}; "
                  "nothing to compare, passing")
            return 0
        sys.exit(f"bench-diff: baseline {args.baseline} does not exist; "
                 "commit the previous PR's report or pass "
                 "--allow-missing-baseline")
    if not os.path.exists(args.candidate):
        sys.exit(f"bench-diff: candidate {args.candidate} does not exist; "
                 "run bench_report first")

    base = load(args.baseline)
    cand = load(args.candidate)

    failures, warnings = [], []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  new metric: {name} = {cand[name]['value']:g}")
            continue
        if name not in cand:
            print(f"  dropped metric: {name} (was {base[name]['value']:g})")
            continue
        change = regression(base[name], cand[name])
        if change is None:
            continue
        line = (f"{name}: {base[name]['value']:g} -> {cand[name]['value']:g} "
                f"({change:+.1%} bad-direction)")
        if change <= args.threshold:
            print(f"  ok {line}")
        elif cand[name].get("deterministic") or args.strict_time:
            failures.append(line)
        else:
            warnings.append(line)

    for line in warnings:
        print(f"  WARN (advisory wall-clock) {line}")
    for line in failures:
        print(f"  FAIL {line}")
    if failures:
        print(f"bench-diff: {len(failures)} regression(s) past "
              f"{args.threshold:.0%} threshold")
        return 1
    print(f"bench-diff: pass ({len(warnings)} advisory warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
