#!/usr/bin/env python3
"""Diff two BENCH_<n>.json performance-trajectory reports.

Compares a candidate report (fresh `bench_report` run) against a baseline
(the committed report of the previous PR, or the same PR's committed file
on a re-run). Gating rules:

* Deterministic metrics (seeded counters, CNF sizes) fail the diff when
  they move more than --threshold (default 20%) in their *bad* direction
  (`Lower` metrics going up, `Higher` metrics going down). They are exact
  functions of the workload, so any drift is a real change.
* Wall-clock metrics (deterministic: false) only warn, because container
  clocks are noisy. --strict-time promotes them to failures.
* Metrics present on one side only are reported (new probes appear as a
  PR lands them; that is informational, not a failure).
* A missing or unparseable baseline/candidate file is a clear one-line
  error, never a traceback. --allow-missing-baseline restores the
  bootstrap behavior (first PR with a bench report has no baseline).
* Every failure names the offending metric and both values — in the
  per-metric FAIL line and again in the final summary — so a CI log tail
  is enough to see what regressed without scrolling.

Stdlib only, so the CI leg needs nothing beyond python3. `--self-test`
runs the built-in unit checks (exercised by CI before the real diff).
"""

import argparse
import json
import os
import signal
import sys
import tempfile

# Dying cleanly when stdout is a closed pipe (e.g. `bench_diff ... | head`)
# beats a BrokenPipeError traceback.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

BENCH_SCHEMA_VERSION = 1


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as err:
        sys.exit(f"bench-diff: cannot read {path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench-diff: {path} is not valid JSON ({err}); "
                 "regenerate it with bench_report")
    if not isinstance(report, dict):
        sys.exit(f"bench-diff: {path}: expected a JSON object at top level, "
                 f"got {type(report).__name__}")
    version = report.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        sys.exit(f"{path}: unsupported bench schema version {version!r} "
                 f"(expected {BENCH_SCHEMA_VERSION})")
    metrics = {}
    for metric in report.get("metrics", []):
        name = metric.get("name")
        if not isinstance(name, str) or not isinstance(metric.get("value"), (int, float)):
            sys.exit(f"{path}: malformed metric entry {metric!r}")
        metrics[name] = metric
    return metrics


def regression(base, cand):
    """Signed fractional change in the *bad* direction, or None if ungated."""
    direction = cand.get("direction")
    if direction not in ("Lower", "Higher"):
        return None
    old, new = base["value"], cand["value"]
    if old == 0.0:
        # A zero baseline has no meaningful ratio; only flag Lower metrics
        # that became nonzero (0 conflicts -> any conflicts is a regression
        # of unknown size: report 100%).
        if direction == "Lower" and new > 0.0:
            return 1.0
        return 0.0
    change = (new - old) / abs(old)
    return change if direction == "Lower" else -change


def diff_reports(base, cand, threshold, strict_time):
    """Compare metric dicts. Returns (log_lines, failures, warnings);
    failures/warnings are (name, old, new, change) tuples."""
    lines, failures, warnings = [], [], []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            lines.append(f"  new metric: {name} = {cand[name]['value']:g}")
            continue
        if name not in cand:
            lines.append(f"  dropped metric: {name} "
                         f"(was {base[name]['value']:g})")
            continue
        change = regression(base[name], cand[name])
        if change is None:
            continue
        entry = (name, base[name]["value"], cand[name]["value"], change)
        if change <= threshold:
            lines.append(f"  ok {describe(entry)}")
        elif cand[name].get("deterministic") or strict_time:
            failures.append(entry)
        else:
            warnings.append(entry)
    return lines, failures, warnings


def describe(entry):
    name, old, new, change = entry
    return f"{name}: {old:g} -> {new:g} ({change:+.1%} bad-direction)"


def run_diff(args):
    if not os.path.exists(args.baseline):
        if args.allow_missing_baseline:
            print(f"bench-diff: no baseline at {args.baseline}; "
                  "nothing to compare, passing")
            return 0
        sys.exit(f"bench-diff: baseline {args.baseline} does not exist; "
                 "commit the previous PR's report or pass "
                 "--allow-missing-baseline")
    if not os.path.exists(args.candidate):
        sys.exit(f"bench-diff: candidate {args.candidate} does not exist; "
                 "run bench_report first")

    base = load(args.baseline)
    cand = load(args.candidate)
    lines, failures, warnings = diff_reports(
        base, cand, args.threshold, args.strict_time)

    for line in lines:
        print(line)
    for entry in warnings:
        print(f"  WARN (advisory wall-clock) {describe(entry)}")
    for entry in failures:
        print(f"  FAIL {describe(entry)}")
    if failures:
        # The summary names every offender with both values so the last
        # line of a CI log is self-contained.
        offenders = "; ".join(
            f"{name} ({old:g} -> {new:g})" for name, old, new, _ in failures)
        print(f"bench-diff: {len(failures)} regression(s) past "
              f"{args.threshold:.0%} threshold: {offenders}")
        return 1
    print(f"bench-diff: pass ({len(warnings)} advisory warning(s))")
    return 0


# ---------------------------------------------------------------------------
# Self-test


def _report(metrics):
    return {"schema_version": BENCH_SCHEMA_VERSION, "metrics": metrics}


def _metric(name, value, direction="Lower", deterministic=True):
    return {"name": name, "value": value, "unit": "count",
            "direction": direction, "deterministic": deterministic}


def self_test():
    """Unit checks over diff_reports/regression/load. Exit 0 iff all pass."""
    checks = []

    def check(label, cond):
        checks.append((label, cond))
        print(f"  {'ok' if cond else 'FAIL'} {label}")

    def metrics(*entries):
        return {m["name"]: m for m in entries}

    # 1. A deterministic Lower metric past the threshold fails, and the
    #    failure entry carries the metric name and both values.
    _, fails, warns = diff_reports(
        metrics(_metric("conflicts", 100)),
        metrics(_metric("conflicts", 150)), 0.20, False)
    check("deterministic regression fails", len(fails) == 1 and not warns)
    check("failure names the metric and both values",
          fails and fails[0][:3] == ("conflicts", 100, 150)
          and "conflicts: 100 -> 150" in describe(fails[0]))

    # 2. Within the threshold nothing fails.
    _, fails, warns = diff_reports(
        metrics(_metric("conflicts", 100)),
        metrics(_metric("conflicts", 115)), 0.20, False)
    check("within-threshold drift passes", not fails and not warns)

    # 3. Higher-is-better metrics gate on decreases, not increases.
    _, fails, _ = diff_reports(
        metrics(_metric("speedup", 2.0, direction="Higher")),
        metrics(_metric("speedup", 1.0, direction="Higher")), 0.20, False)
    check("Higher metric dropping fails", len(fails) == 1)
    _, fails, _ = diff_reports(
        metrics(_metric("speedup", 1.0, direction="Higher")),
        metrics(_metric("speedup", 2.0, direction="Higher")), 0.20, False)
    check("Higher metric rising passes", not fails)

    # 4. Wall-clock metrics warn by default and gate under --strict-time.
    _, fails, warns = diff_reports(
        metrics(_metric("wall_ms", 100, deterministic=False)),
        metrics(_metric("wall_ms", 200, deterministic=False)), 0.20, False)
    check("wall-clock regression only warns", not fails and len(warns) == 1)
    _, fails, warns = diff_reports(
        metrics(_metric("wall_ms", 100, deterministic=False)),
        metrics(_metric("wall_ms", 200, deterministic=False)), 0.20, True)
    check("--strict-time gates wall-clock", len(fails) == 1 and not warns)

    # 5. Zero baselines: Lower metric becoming nonzero is a full regression;
    #    anything else is ungated.
    check("0 -> nonzero Lower regresses",
          regression(_metric("x", 0), _metric("x", 5)) == 1.0)
    check("0 -> 0 passes", regression(_metric("x", 0), _metric("x", 0)) == 0.0)

    # 6. One-sided metrics are informational, never failures.
    lines, fails, warns = diff_reports(
        metrics(_metric("old_probe", 1)), metrics(_metric("new_probe", 2)),
        0.20, False)
    check("added/dropped metrics are informational",
          not fails and not warns
          and any("new metric: new_probe" in l for l in lines)
          and any("dropped metric: old_probe" in l for l in lines))

    # 7. load() round-trips a well-formed report and rejects a wrong
    #    schema version with a clean exit, not a traceback.
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "good.json")
        with open(good, "w", encoding="utf-8") as fh:
            json.dump(_report([_metric("m", 7)]), fh)
        check("load() parses a valid report", load(good)["m"]["value"] == 7)

        bad = os.path.join(tmp, "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            json.dump({"schema_version": 999, "metrics": []}, fh)
        try:
            load(bad)
            check("load() rejects wrong schema version", False)
        except SystemExit as err:
            check("load() rejects wrong schema version",
                  "unsupported bench schema version" in str(err.code))

    failed = [label for label, cond in checks if not cond]
    if failed:
        print(f"bench-diff --self-test: {len(failed)} check(s) failed: "
              + "; ".join(failed))
        return 1
    print(f"bench-diff --self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="previous BENCH_<n>.json")
    parser.add_argument("candidate", nargs="?",
                        help="freshly generated BENCH_<n>.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed bad-direction change (fraction, default 0.20)")
    parser.add_argument("--strict-time", action="store_true",
                        help="gate wall-clock metrics too instead of warning")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="pass when the baseline file does not exist "
                             "(bootstrap: the first bench-emitting PR)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        parser.error("baseline and candidate are required unless --self-test")
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main())
