#!/usr/bin/env python3
"""Lint mmsynth telemetry artifacts: the JSONL trace, the aggregated run
report, and the --stats-json sidecar.

Fails (exit 1) when:

* any trace line is not valid JSON, or the meta stamp (first event by
  sequence number) is missing or carries the wrong trace schema version;
* the run report is missing its schema version, the expected phases
  (synth with encode/solve children), or rung summaries;
* rung outcomes fall outside the documented vocabulary, or no rung
  decided the run (every minimization has at least one SAT/UNSAT rung);
* the stats sidecar (when given) is missing its schema version or call
  records.

Stdlib only, so the CI leg needs nothing beyond python3.
"""

import argparse
import json
import sys

TRACE_SCHEMA_VERSION = 1
REPORT_SCHEMA_VERSION = 1
RUNG_OUTCOMES = {"sat", "unsat", "unknown", "skipped", "panicked"}

errors = []


def check(cond, message):
    if not cond:
        errors.append(message)


def lint_trace(path):
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                check(False, f"{path}:{lineno}: unparseable trace line: {e}")
    check(events, f"{path}: empty trace")
    if not events:
        return
    first = min(events, key=lambda e: e.get("seq", float("inf")))
    kind = first.get("kind", {})
    point = kind.get("Point", {})
    check(point.get("name") == "meta", f"{path}: first event is not the meta stamp")
    attrs = dict(point.get("attrs", []))
    version = attrs.get("trace_schema_version", {}).get("U64")
    check(
        version == TRACE_SCHEMA_VERSION,
        f"{path}: trace_schema_version is {version}, want {TRACE_SCHEMA_VERSION}",
    )


def phase_names(nodes):
    for node in nodes:
        yield node["name"]
        yield from phase_names(node.get("children", []))


def lint_report(path):
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    check(
        report.get("schema_version") == REPORT_SCHEMA_VERSION,
        f"{path}: schema_version is {report.get('schema_version')!r}, "
        f"want {REPORT_SCHEMA_VERSION}",
    )
    names = set(phase_names(report.get("phases", [])))
    for phase in ("synth", "encode", "solve"):
        check(phase in names, f"{path}: phase {phase!r} missing (got {sorted(names)})")
    rungs = report.get("rungs", [])
    check(rungs, f"{path}: no rung summaries")
    for rung in rungs:
        check(
            rung.get("outcome") in RUNG_OUTCOMES,
            f"{path}: rung outcome {rung.get('outcome')!r} not in {sorted(RUNG_OUTCOMES)}",
        )
    check(
        any(r.get("outcome") in ("sat", "unsat") for r in rungs),
        f"{path}: no rung decided the run",
    )


def lint_stats(path):
    with open(path, encoding="utf-8") as fh:
        stats = json.load(fh)
    check(
        stats.get("schema_version") == 1,
        f"{path}: schema_version is {stats.get('schema_version')!r}, want 1",
    )
    check(stats.get("calls"), f"{path}: no call records")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", required=True, help="JSONL trace from --trace-out")
    parser.add_argument("--report", required=True, help="run report from --report-json")
    parser.add_argument("--stats", help="optional sidecar from --stats-json")
    args = parser.parse_args()

    lint_trace(args.trace)
    lint_report(args.report)
    if args.stats:
        lint_stats(args.stats)

    if errors:
        for e in errors:
            print(f"lint_report: {e}", file=sys.stderr)
        return 1
    print("lint_report: all telemetry artifacts check out")
    return 0


if __name__ == "__main__":
    sys.exit(main())
