//! `memristive-mm` — optimal synthesis of memristive mixed-mode circuits.
//!
//! This is the facade crate of the workspace reproducing *Optimal Synthesis
//! of Memristive Mixed-Mode Circuits* (DATE 2025). It re-exports the public
//! APIs of the member crates:
//!
//! * [`boolfn`] — truth tables, literals, GF(2^m) arithmetic, benchmark
//!   function generators and a Quine–McCluskey minimizer.
//! * [`sat`] — a from-scratch CDCL SAT solver and CNF toolkit.
//! * [`device`] — memristive device models, variability, and the 1D
//!   line-array executor.
//! * [`circuit`] — the mixed-mode circuit IR, scheduling and evaluation.
//! * [`synth`] — the paper's core contribution: SAT-based optimal synthesis
//!   of mixed-mode circuits, the universality census, and the heuristic
//!   mapper.
//! * [`telemetry`] — structured tracing: spans, counters and point events
//!   from every layer above, JSONL sinks, and the [`telemetry::RunReport`]
//!   per-phase timing aggregator.
//! * [`service`] — the crash-safe synthesis service behind `mmsynthd`: a
//!   persistent NPN-canonical result cache, supervised jobs with retry
//!   and overload shedding, and the JSON-lines daemon loops.
//!
//! # Quickstart
//!
//! ```no_run
//! use memristive_mm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize a 1-bit full adder as a mixed-mode circuit with 2 R-ops
//! // and 3 V-legs of 3 steps each (the paper's Table IV optimum).
//! let f = generators::ripple_adder(1);
//! let spec = SynthSpec::mixed_mode(&f, 2, 3, 3)?;
//! let outcome = Synthesizer::new().run(&spec)?;
//! let circuit = outcome.circuit().expect("the paper proves this is SAT");
//! assert_eq!(circuit.metrics().n_steps, 5);
//! # Ok(())
//! # }
//! ```

pub use mm_boolfn as boolfn;
pub use mm_circuit as circuit;
pub use mm_device as device;
pub use mm_sat as sat;
pub use mm_service as service;
pub use mm_synth as synth;
pub use mm_telemetry as telemetry;

/// Convenient glob-import surface for examples and downstream experiments.
pub mod prelude {
    pub use mm_boolfn::{generators, Gf2m, Literal, LiteralSet, MultiOutputFn, TruthTable};
    pub use mm_circuit::{MmCircuit, ROpKind, Schedule, Signal};
    pub use mm_device::{DeviceState, ElectricalParams, LineArray, Variability};
    pub use mm_sat::{Budget, CnfFormula, SatResult, Solver};
    pub use mm_synth::{SynthOutcome, SynthResult, SynthSpec, Synthesizer};
}
