//! `mmsynth` — command-line front end for memristive mixed-mode synthesis.
//!
//! ```text
//! mmsynth synth    --function gf22_mul --rops 4 --legs 6 --steps 3 [--budget 300]
//!                  [--certify] [--proof FILE] [--dot | --json | --dimacs | --schedule]
//! mmsynth minimize --function gf22_mul [--max-rops N] [--max-steps N] [--r-only]
//!                  [--jobs N] [--conflicts N] [--certify] [--proof-dir DIR]
//!                  [--dot | --json | --schedule]
//! mmsynth map      --function adder3 [--dot | --json]
//! mmsynth run      --function gf22_mul --input 1011 [--trace] [--seed 42]
//! mmsynth census   --inputs 3 [--pre K] [--post K] [--tebe K]
//! mmsynth list
//! ```
//!
//! `--certify` runs every SAT call with DRAT proof logging and checks each
//! UNSAT answer with the in-tree backward checker before reporting it;
//! `--proof`/`--proof-dir` additionally archive the accepted proofs as
//! standard DRAT text for cross-checking with external tools (`drat-trim`).
//!
//! Functions are either named generators (see `mmsynth list`) or comma-
//! separated truth-table bitstrings (`--function 0110,1000` = two outputs).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::circuit::Schedule;
use memristive_mm::device::{ElectricalParams, LineArray};
use memristive_mm::sat::Budget;
use memristive_mm::synth::optimize::parallel;
use memristive_mm::synth::universality::{census, CensusConfig};
use memristive_mm::synth::{heuristic, EncodeOptions, SynthResult, SynthSpec, Synthesizer};

fn named_functions() -> Vec<(&'static str, MultiOutputFn)> {
    vec![
        ("adder1", generators::ripple_adder(1)),
        ("adder2", generators::ripple_adder(2)),
        ("adder3", generators::ripple_adder(3)),
        ("adder4", generators::ripple_adder(4)),
        ("gf22_mul", generators::gf22_multiplier()),
        ("gf16_inv", generators::gf16_inversion()),
        ("and2", generators::and_gate(2)),
        ("and4", generators::and_gate(4)),
        ("or4", generators::or_gate(4)),
        ("nand4", generators::nand_gate(4)),
        ("nor4", generators::nor_gate(4)),
        ("xor2", generators::xor_gate(2)),
        ("xor3", generators::xor_gate(3)),
        ("maj3", generators::majority_gate(3)),
        ("mux21", generators::mux21()),
        ("mul2", generators::int_multiplier(2)),
        ("cmp2", generators::comparator(2)),
        ("popcount4", generators::popcount(4)),
    ]
}

fn parse_function(spec: &str) -> Result<MultiOutputFn, String> {
    for (name, f) in named_functions() {
        if name == spec {
            return Ok(f);
        }
    }
    // Comma-separated bitstrings.
    let tables: Result<Vec<TruthTable>, _> =
        spec.split(',').map(TruthTable::from_bitstring).collect();
    match tables {
        Ok(ts) => MultiOutputFn::new("cli", ts).map_err(|e| e.to_string()),
        Err(e) => Err(format!(
            "{spec:?} is neither a known function name nor a truth-table list: {e}"
        )),
    }
}

struct Args {
    flags: HashMap<String, String>,
    bare: Vec<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut bare = Vec::new();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            bare.push(a.clone());
        }
    }
    Args { flags, bare }
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);
    let command = args.bare.first().map(String::as_str).unwrap_or("help");
    match run(command, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "list" => {
            println!("named functions:");
            for (name, f) in named_functions() {
                println!(
                    "  {name:<12} {} inputs, {} outputs",
                    f.n_inputs(),
                    f.n_outputs()
                );
            }
            Ok(())
        }
        "census" => {
            let n = args.get_usize("inputs", 3) as u8;
            let cfg = CensusConfig::new(n)
                .with_pre(args.get_usize("pre", 0) as u32)
                .with_post(args.get_usize("post", 0) as u32)
                .with_tebe(args.get_usize("tebe", 0) as u32);
            let reached = census(&cfg);
            println!(
                "{reached} of {} {n}-input functions realizable with {cfg:?}",
                1u64 << (1 << n)
            );
            Ok(())
        }
        "map" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let circuit = heuristic::map(&f).map_err(|e| e.to_string())?;
            emit_circuit(&circuit, args)
        }
        "synth" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let rops = args.get_usize("rops", 0);
            let spec = if args.has("r-only") {
                SynthSpec::r_only(&f, args.get_usize("r-only", 1))
            } else {
                let legs = args.get_usize(
                    "legs",
                    SynthSpec::paper_legs(&f, rops, f.name().starts_with("adder")),
                );
                SynthSpec::mixed_mode(&f, rops, legs, args.get_usize("steps", 3))
            }
            .map_err(|e| e.to_string())?;
            let synth = Synthesizer::new()
                .with_budget(
                    Budget::new()
                        .with_max_time(Duration::from_secs(args.get_usize("budget", 120) as u64)),
                )
                .with_certification(args.has("certify"));
            if args.has("dimacs") {
                print!("{}", synth.export_dimacs(&spec).map_err(|e| e.to_string())?);
                return Ok(());
            }
            let outcome = synth.run(&spec).map_err(|e| e.to_string())?;
            eprintln!(
                "{} vars, {} clauses, {}",
                outcome.encode_stats.n_vars, outcome.encode_stats.n_clauses, outcome.solver_stats
            );
            if let Some(cert) = &outcome.certificate {
                eprintln!(
                    "certificate: {} proof steps, {} core, checked in {:.3}s",
                    cert.proof.n_steps(),
                    cert.check.core_additions,
                    cert.check.check_time.as_secs_f64()
                );
                if let Some(path) = args.get("proof") {
                    std::fs::write(path, cert.proof.to_drat_string())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("proof written to {path}");
                }
            }
            match outcome.result {
                SynthResult::Realizable(circuit) => emit_circuit(&circuit, args),
                SynthResult::Unrealizable => {
                    println!(
                        "UNSAT: no circuit exists within these budgets (optimality certificate{})",
                        if outcome.certificate.is_some() {
                            ", DRAT-checked"
                        } else {
                            ""
                        }
                    );
                    Ok(())
                }
                SynthResult::Unknown => Err("budget exhausted; raise --budget".into()),
            }
        }
        "minimize" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let jobs = args.get_usize("jobs", parallel::default_jobs()).max(1);
            let options = EncodeOptions::recommended();
            let mut synth = Synthesizer::new().with_certification(args.has("certify"));
            // A conflict (not wall-clock) limit keeps the portfolio result
            // deterministic across --jobs settings; unlimited by default.
            if args.has("conflicts") {
                synth = synth.with_budget(
                    Budget::new().with_max_conflicts(args.get_usize("conflicts", 0) as u64),
                );
            }
            let report = if args.has("r-only") {
                parallel::minimize_r_only(&synth, &f, args.get_usize("max-rops", 8), &options, jobs)
            } else {
                let is_adder = args.has("adder") || f.name().starts_with("adder");
                parallel::minimize_mixed_mode(
                    &synth,
                    &f,
                    args.get_usize("max-rops", 8),
                    args.get_usize("max-steps", 6),
                    is_adder,
                    &options,
                    jobs,
                )
            }
            .map_err(|e| e.to_string())?;
            if let Some(dir) = args.get("proof-dir") {
                std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
            }
            for c in &report.calls {
                eprintln!(
                    "  N_R={} N_L={} N_VS={} -> {:?} ({} vars, {} clauses, {:.3}s{})",
                    c.n_rops,
                    c.n_legs,
                    c.n_vsteps,
                    c.result,
                    c.n_vars,
                    c.n_clauses,
                    c.time.as_secs_f64(),
                    if c.certified {
                        format!(
                            ", certified: {} proof steps checked in {:.3}s",
                            c.proof_steps,
                            c.check_time.as_secs_f64()
                        )
                    } else {
                        String::new()
                    }
                );
                if let (Some(dir), Some(proof)) = (args.get("proof-dir"), &c.proof) {
                    let path = format!(
                        "{dir}/{}_nR{}_nL{}_nVS{}.drat",
                        f.name(),
                        c.n_rops,
                        c.n_legs,
                        c.n_vsteps
                    );
                    std::fs::write(&path, proof.to_drat_string())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            let certified = report.calls.iter().filter(|c| c.certified).count();
            eprintln!(
                "{} calls ({certified} certified UNSAT), {:.3}s solver time, {jobs} jobs",
                report.calls.len(),
                report.total_time().as_secs_f64()
            );
            match report.best {
                Some(circuit) => {
                    emit_circuit(&circuit, args)?;
                    println!(
                        "optimality: {}",
                        match (report.proven_optimal, args.has("certify")) {
                            (true, true) => "proven (UNSAT below, DRAT-certified)",
                            (true, false) => "proven (UNSAT below)",
                            (false, _) => "upper bound only",
                        }
                    );
                    Ok(())
                }
                None => Err(
                    "no circuit found within the search limits; raise --max-rops/--max-steps"
                        .into(),
                ),
            }
        }
        "run" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let input = args
                .get("input")
                .ok_or("--input required (e.g. --input 1011)")?;
            if input.len() != f.n_inputs() as usize {
                return Err(format!("--input must have {} bits", f.n_inputs()));
            }
            let x = u32::from_str_radix(input, 2).map_err(|e| e.to_string())?;
            let circuit = heuristic::map(&f).map_err(|e| e.to_string())?;
            let schedule = Schedule::compile(&circuit).map_err(|e| e.to_string())?;
            let seed = args.get_usize("seed", 42) as u64;
            let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), seed);
            let out = schedule.execute(x, &mut array);
            if args.has("trace") {
                print!("{}", array.trace().to_table());
            }
            let bits: String = out.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!("{}({input}) = {bits}", f.name());
            Ok(())
        }
        _ => {
            println!(
                "usage: mmsynth <synth|minimize|map|run|census|list> [--function NAME|BITS,...]\n\
                 \x20      synth:    --rops N [--legs N] [--steps N] [--r-only N] [--budget s]\n\
                 \x20                [--certify] [--proof FILE]\n\
                 \x20                [--dot | --json | --dimacs | --schedule]\n\
                 \x20      minimize: [--max-rops N] [--max-steps N] [--r-only] [--adder]\n\
                 \x20                [--jobs N] [--conflicts N] [--certify] [--proof-dir DIR]\n\
                 \x20                [--dot | --json | --schedule]\n\
                 \x20      map:      [--dot | --json | --schedule]\n\
                 \x20      run:      --input BITS [--trace] [--seed N]\n\
                 \x20      census:   --inputs N [--pre K] [--post K] [--tebe K]\n\
                 \n\
                 \x20      --certify checks every UNSAT answer against its DRAT proof\n\
                 \x20      before any optimality claim; --proof/--proof-dir archive the\n\
                 \x20      accepted proofs as DRAT text"
            );
            Ok(())
        }
    }
}

fn emit_circuit(circuit: &memristive_mm::circuit::MmCircuit, args: &Args) -> Result<(), String> {
    if args.has("dot") {
        print!("{}", circuit.to_dot());
    } else if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(circuit).map_err(|e| e.to_string())?
        );
    } else if args.has("schedule") {
        let schedule = Schedule::compile(circuit).map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", circuit.to_text());
        let m = circuit.metrics();
        println!(
            "metrics: N_R={} N_L={} N_VS={} N_St={} N_Dev={}",
            m.n_rops, m.n_legs, m.n_vsteps, m.n_steps, m.n_devices_structural
        );
    }
    Ok(())
}
