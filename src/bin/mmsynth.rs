//! `mmsynth` — command-line front end for memristive mixed-mode synthesis.
//!
//! ```text
//! mmsynth synth    --function gf22_mul --rops 4 --legs 6 --steps 3 [--budget 300]
//!                  [--avoid-cells 0,3 --array-size 16] [--deadline SECS]
//!                  [--certify] [--proof FILE] [--dot | --json | --dimacs | --schedule]
//! mmsynth minimize --function gf22_mul [--max-rops N] [--max-steps N] [--r-only]
//!                  [--jobs N] [--conflicts N] [--deadline SECS] [--certify]
//!                  [--no-incremental] [--proof-dir DIR] [--dot | --json | --schedule]
//!                  [--cache-dir DIR [--paranoid]]
//! mmsynth faultsim --function xor2 --rops 1 --legs 2 --steps 2
//!                  [--stuck CELL:lrs,CELL:hrs] [--flip CELL:CYCLE,...]
//!                  [--variability SIGMA] [--trials N] [--seed N]
//!                  [--array-size N] [--repair [--retries N]] [--certify]
//!                  [--out FILE]
//! mmsynth fuzz     [--seed 42] [--budget 100] [--corpus tests/corpus]
//!                  [--replay tests/corpus] [--inject-violation]
//! mmsynth map      --function adder3 [--dot | --json]
//! mmsynth run      --function gf22_mul --input 1011 [--trace] [--seed 42]
//! mmsynth census   --inputs 3 [--pre K] [--post K] [--tebe K]
//! mmsynth list
//! mmsynth client   --socket PATH | --tcp ADDR:PORT [--op minimize|synth|faultsim|ping|stats|metrics|shutdown]
//!                  [--function NAME|BITS,...] [--id ID] [--no-cache] [--progress] [...op flags]
//! ```
//!
//! `minimize --cache-dir DIR` reads/writes the same persistent NPN result
//! cache `mmsynthd` serves from: the request is canonicalized, looked up,
//! solved (canonically) only on a miss, and de-canonicalized for printing.
//! `client` is a one-shot JSON-lines client for a running `mmsynthd`.
//!
//! `--certify` runs every SAT call with DRAT proof logging and checks each
//! UNSAT answer with the in-tree backward checker before reporting it;
//! `--proof`/`--proof-dir` additionally archive the accepted proofs as
//! standard DRAT text for cross-checking with external tools (`drat-trim`).
//!
//! `minimize` descends its budget ladder *incrementally* by default: the
//! formula is encoded once at the top rung and each worker keeps one
//! long-lived solver, activating smaller rungs via assumptions and sharing
//! strong learned clauses across the portfolio. `--no-incremental` restores
//! cold per-rung solves; `--certify` implies them, so every archived proof
//! refutes its own rung's formula.
//!
//! Every subcommand also accepts the telemetry flags: `--trace-out F.jsonl`
//! streams the raw span/counter/point event stream as JSON lines,
//! `--report-json F` aggregates it into a versioned per-phase timing report
//! ([`RunReport`]), and `--progress` renders point events to stderr as a
//! live ticker. `synth` and `minimize` additionally accept `--stats-json
//! [FILE]` for a machine-readable summary (solver statistics, per-rung
//! call records) on stdout or in FILE.
//!
//! `faultsim` synthesizes a circuit, places its schedule on a physical
//! array, and runs a fault-injection campaign against it; `--repair` closes
//! the loop, avoiding the implicated cells and resynthesizing.
//!
//! `fuzz` runs `--budget` seeded end-to-end scenarios (randomized functions
//! × budgets × fault plans × job counts) through synthesize → certify →
//! device-verify → campaign → repair, checking cross-cutting invariants.
//! Failing scenarios are shrunk and archived as replayable JSON to
//! `--corpus DIR`; `--replay DIR` re-runs an archived corpus instead. The
//! whole sweep is bit-for-bit reproducible from `--seed`.
//!
//! Exit codes: 0 on success (including a proven UNSAT), 1 on errors, and
//! 2 when the answer is *inconclusive* — a budget or deadline expired
//! before the search finished, or a repair loop gave up. Degraded runs
//! still print their best-known circuit before exiting with 2.
//!
//! Functions are either named generators (see `mmsynth list`) or comma-
//! separated truth-table bitstrings (`--function 0110,1000` = two outputs).

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use memristive_mm::boolfn::{generators, MultiOutputFn, TruthTable};
use memristive_mm::circuit::campaign::{run_campaign_traced, CampaignConfig, CampaignReport};
use memristive_mm::circuit::{FaultPlan, Schedule};
use memristive_mm::device::{DeviceState, ElectricalParams, LineArray};
use memristive_mm::sat::{Budget, Deadline};
use memristive_mm::synth::optimize::parallel;
use memristive_mm::synth::repair::{synthesize_with_repair, RepairConfig, RepairStatus};
use memristive_mm::synth::universality::{census, CensusConfig};
use memristive_mm::synth::{heuristic, EncodeOptions, SynthResult, SynthSpec, Synthesizer};
use memristive_mm::telemetry::{
    atomic_write, JsonlSink, MemorySink, MultiSink, ProgressSink, RunReport, Telemetry,
    TelemetrySink,
};
use serde::{Serialize, Value};

/// Exit code for inconclusive answers: a budget/deadline expired before the
/// search finished, or a repair loop gave up. Distinct from 1 (errors) so
/// scripts can retry with a larger budget instead of failing hard.
const EXIT_INCONCLUSIVE: u8 = 2;

fn named_functions() -> Vec<(&'static str, MultiOutputFn)> {
    vec![
        ("adder1", generators::ripple_adder(1)),
        ("adder2", generators::ripple_adder(2)),
        ("adder3", generators::ripple_adder(3)),
        ("adder4", generators::ripple_adder(4)),
        ("gf22_mul", generators::gf22_multiplier()),
        ("gf16_inv", generators::gf16_inversion()),
        ("and2", generators::and_gate(2)),
        ("and4", generators::and_gate(4)),
        ("or4", generators::or_gate(4)),
        ("nand4", generators::nand_gate(4)),
        ("nor4", generators::nor_gate(4)),
        ("xor2", generators::xor_gate(2)),
        ("xor3", generators::xor_gate(3)),
        ("maj3", generators::majority_gate(3)),
        ("mux21", generators::mux21()),
        ("mul2", generators::int_multiplier(2)),
        ("cmp2", generators::comparator(2)),
        ("popcount4", generators::popcount(4)),
    ]
}

fn parse_function(spec: &str) -> Result<MultiOutputFn, String> {
    for (name, f) in named_functions() {
        if name == spec {
            return Ok(f);
        }
    }
    // Comma-separated bitstrings.
    let tables: Result<Vec<TruthTable>, _> =
        spec.split(',').map(TruthTable::from_bitstring).collect();
    match tables {
        Ok(ts) => MultiOutputFn::new("cli", ts).map_err(|e| e.to_string()),
        Err(e) => Err(format!(
            "{spec:?} is neither a known function name nor a truth-table list: {e}"
        )),
    }
}

struct Args {
    flags: HashMap<String, String>,
    bare: Vec<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut bare = Vec::new();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            bare.push(a.clone());
        }
    }
    Args { flags, bare }
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);
    let command = args.bare.first().map(String::as_str).unwrap_or("help");
    match run(command, &args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Comma-separated cell indices (`0,3,5`).
fn parse_cells(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad cell index {s:?}: {e}"))
        })
        .collect()
}

/// Builds the solver budget shared by `synth`/`minimize`: `--conflicts`
/// keeps portfolio results deterministic across `--jobs`; `--deadline` adds
/// a wall-clock bound under which minimization degrades gracefully.
fn budget_from(args: &Args) -> Result<Option<Budget>, String> {
    let mut budget = None;
    if let Some(c) = args.get("conflicts") {
        let c: u64 = c.parse().map_err(|e| format!("bad --conflicts: {e}"))?;
        budget = Some(Budget::new().with_max_conflicts(c));
    }
    if let Some(d) = args.get("deadline") {
        let secs: f64 = d.parse().map_err(|e| format!("bad --deadline: {e}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("--deadline must be a nonnegative number, got {d}"));
        }
        let deadline = Deadline::after(Duration::from_secs_f64(secs));
        budget = Some(budget.unwrap_or_default().with_deadline(deadline));
    }
    // Inprocessing is on by default; --no-inprocess disables it for
    // differential testing and clean benchmark baselines.
    if args.has("no-inprocess") {
        budget = Some(budget.unwrap_or_default().with_inprocess(false));
    }
    Ok(budget)
}

/// Telemetry wiring shared by every subcommand: `--trace-out FILE` streams
/// raw JSONL events, `--report-json FILE` aggregates them into a versioned
/// [`RunReport`], `--progress` renders point events to stderr as a ticker.
struct TelemetrySetup {
    telemetry: Telemetry,
    memory: Option<Arc<MemorySink>>,
    report_path: Option<String>,
}

fn telemetry_from(args: &Args, command: &str) -> Result<TelemetrySetup, String> {
    let report_path = args.get("report-json").map(str::to_string);
    let mut sinks: Vec<Arc<dyn TelemetrySink>> = Vec::new();
    let mut memory = None;
    if let Some(path) = args.get("trace-out") {
        let sink =
            JsonlSink::create(Path::new(path)).map_err(|e| format!("creating {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    if report_path.is_some() {
        let m = Arc::new(MemorySink::new());
        memory = Some(m.clone());
        sinks.push(m);
    }
    if args.has("progress") {
        sinks.push(Arc::new(ProgressSink::stderr()));
    }
    let telemetry = match sinks.len() {
        0 => Telemetry::disabled(),
        1 => Telemetry::new(sinks.pop().expect("length checked")),
        _ => Telemetry::new(Arc::new(MultiSink::new(sinks))),
    };
    telemetry.meta_event(command);
    Ok(TelemetrySetup {
        telemetry,
        memory,
        report_path,
    })
}

impl TelemetrySetup {
    /// Flushes sinks and writes the aggregated run report, if requested.
    fn finish(&self) -> Result<(), String> {
        self.telemetry.flush();
        if let (Some(path), Some(memory)) = (&self.report_path, &self.memory) {
            let report = RunReport::from_events(&memory.snapshot());
            let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
            atomic_write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("run report written to {path}");
        }
        Ok(())
    }
}

/// `--stats-json` with no value prints to stdout; with a value, writes to
/// that path.
fn write_stats_json(dest: &str, value: &Value) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    if dest == "true" {
        println!("{json}");
    } else {
        atomic_write(dest, json).map_err(|e| format!("writing {dest}: {e}"))?;
        eprintln!("stats written to {dest}");
    }
    Ok(())
}

fn run(command: &str, args: &Args) -> Result<ExitCode, String> {
    let tel = telemetry_from(args, command)?;
    let result = dispatch(command, args, &tel);
    tel.finish()?;
    result
}

fn dispatch(command: &str, args: &Args, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    match command {
        "list" => {
            println!("named functions:");
            for (name, f) in named_functions() {
                println!(
                    "  {name:<12} {} inputs, {} outputs",
                    f.n_inputs(),
                    f.n_outputs()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "census" => {
            let n = args.get_usize("inputs", 3) as u8;
            let cfg = CensusConfig::new(n)
                .with_pre(args.get_usize("pre", 0) as u32)
                .with_post(args.get_usize("post", 0) as u32)
                .with_tebe(args.get_usize("tebe", 0) as u32);
            let reached = census(&cfg);
            println!(
                "{reached} of {} {n}-input functions realizable with {cfg:?}",
                1u64 << (1 << n)
            );
            Ok(ExitCode::SUCCESS)
        }
        "map" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let circuit = heuristic::map(&f).map_err(|e| e.to_string())?;
            emit_circuit(&circuit, args)?;
            Ok(ExitCode::SUCCESS)
        }
        "synth" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let rops = args.get_usize("rops", 0);
            let mut spec = if args.has("r-only") {
                SynthSpec::r_only(&f, args.get_usize("r-only", 1))
            } else {
                let legs = args.get_usize(
                    "legs",
                    SynthSpec::paper_legs(&f, rops, f.name().starts_with("adder")),
                );
                SynthSpec::mixed_mode(&f, rops, legs, args.get_usize("steps", 3))
            }
            .map_err(|e| e.to_string())?;
            if let Some(cells) = args.get("avoid-cells") {
                let avoid = parse_cells(cells)?;
                spec = spec.with_cell_avoidance(args.get_usize("array-size", 16), avoid);
            }
            let mut budget = Budget::new()
                .with_max_time(Duration::from_secs(args.get_usize("budget", 120) as u64));
            if let Some(extra) = budget_from(args)? {
                if let Some(c) = extra.max_conflicts() {
                    budget = budget.with_max_conflicts(c);
                }
                if let Some(d) = extra.deadline() {
                    budget = budget.with_deadline(d);
                }
            }
            let synth = Synthesizer::new()
                .with_budget(budget)
                .with_certification(args.has("certify"))
                .with_telemetry(tel.telemetry.clone());
            if args.has("dimacs") {
                print!("{}", synth.export_dimacs(&spec).map_err(|e| e.to_string())?);
                return Ok(ExitCode::SUCCESS);
            }
            let outcome = synth.run(&spec).map_err(|e| e.to_string())?;
            eprintln!(
                "{} vars, {} clauses, {}",
                outcome.encode_stats.n_vars, outcome.encode_stats.n_clauses, outcome.solver_stats
            );
            if let Some(dest) = args.get("stats-json") {
                let result = match &outcome.result {
                    SynthResult::Realizable(_) => "realizable",
                    SynthResult::Unrealizable => "unrealizable",
                    SynthResult::Unknown => "unknown",
                };
                let stats = Value::Object(vec![
                    ("schema_version".into(), Value::UInt(1)),
                    ("command".into(), Value::Str("synth".into())),
                    ("function".into(), Value::Str(f.name().to_string())),
                    ("result".into(), Value::Str(result.into())),
                    (
                        "n_vars".into(),
                        Value::UInt(outcome.encode_stats.n_vars as u64),
                    ),
                    (
                        "n_clauses".into(),
                        Value::UInt(outcome.encode_stats.n_clauses as u64),
                    ),
                    ("solver_stats".into(), outcome.solver_stats.to_value()),
                ]);
                write_stats_json(dest, &stats)?;
            }
            if let Some(cert) = &outcome.certificate {
                eprintln!(
                    "certificate: {} proof steps, {} core, checked in {:.3}s",
                    cert.proof.n_steps(),
                    cert.check.core_additions,
                    cert.check.check_time.as_secs_f64()
                );
                if let Some(path) = args.get("proof") {
                    atomic_write(path, cert.proof.to_drat_string())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("proof written to {path}");
                }
            }
            match outcome.result {
                SynthResult::Realizable(circuit) => {
                    if let Some(placement) = &outcome.placement {
                        eprintln!(
                            "placed on {} cells, avoiding {:?} (used: {:?})",
                            placement.n_cells(),
                            args.get("avoid-cells").unwrap_or(""),
                            placement.used_cells()
                        );
                    }
                    emit_circuit(&circuit, args)?;
                    Ok(ExitCode::SUCCESS)
                }
                SynthResult::Unrealizable => {
                    println!(
                        "UNSAT: no circuit exists within these budgets (optimality certificate{})",
                        if outcome.certificate.is_some() {
                            ", DRAT-checked"
                        } else {
                            ""
                        }
                    );
                    Ok(ExitCode::SUCCESS)
                }
                SynthResult::Unknown => {
                    eprintln!("inconclusive: budget exhausted; raise --budget or --deadline");
                    Ok(ExitCode::from(EXIT_INCONCLUSIVE))
                }
            }
        }
        "minimize" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let jobs = args.get_usize("jobs", parallel::default_jobs()).max(1);
            let options = EncodeOptions::recommended();
            if let Some(dir) = args.get("cache-dir") {
                return minimize_cached(args, tel, &f, jobs, &options, dir);
            }
            // Incremental ladder solving is on by default; --no-incremental
            // restores cold per-rung solves (and --certify implies them).
            let incremental = !args.has("no-incremental");
            let mut synth = Synthesizer::new()
                .with_certification(args.has("certify"))
                .with_incremental(incremental)
                .with_telemetry(tel.telemetry.clone());
            // A conflict (not wall-clock) limit keeps the portfolio result
            // deterministic across --jobs settings; a --deadline bounds
            // wall-clock time and degrades gracefully. Unlimited by default.
            if let Some(budget) = budget_from(args)? {
                synth = synth.with_budget(budget);
            }
            let report = if args.has("r-only") {
                parallel::minimize_r_only(&synth, &f, args.get_usize("max-rops", 8), &options, jobs)
            } else {
                let is_adder = args.has("adder") || f.name().starts_with("adder");
                parallel::minimize_mixed_mode(
                    &synth,
                    &f,
                    args.get_usize("max-rops", 8),
                    args.get_usize("max-steps", 6),
                    is_adder,
                    &options,
                    jobs,
                )
            }
            .map_err(|e| e.to_string())?;
            if let Some(dir) = args.get("proof-dir") {
                std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
            }
            for c in &report.calls {
                eprintln!(
                    "  N_R={} N_L={} N_VS={} -> {:?} ({} vars, {} clauses, {:.3}s{})",
                    c.n_rops,
                    c.n_legs,
                    c.n_vsteps,
                    c.result,
                    c.n_vars,
                    c.n_clauses,
                    c.time.as_secs_f64(),
                    if c.certified {
                        format!(
                            ", certified: {} proof steps checked in {:.3}s",
                            c.proof_steps,
                            c.check_time.as_secs_f64()
                        )
                    } else {
                        String::new()
                    }
                );
                if let (Some(dir), Some(proof)) = (args.get("proof-dir"), &c.proof) {
                    let path = format!(
                        "{dir}/{}_nR{}_nL{}_nVS{}.drat",
                        f.name(),
                        c.n_rops,
                        c.n_legs,
                        c.n_vsteps
                    );
                    atomic_write(&path, proof.to_drat_string())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            let certified = report.calls.iter().filter(|c| c.certified).count();
            eprintln!(
                "{} calls ({certified} certified UNSAT), {:.3}s solver time, {jobs} jobs",
                report.calls.len(),
                report.total_time().as_secs_f64()
            );
            let degraded = report.status.is_degraded();
            if let memristive_mm::synth::optimize::OptimizeStatus::Degraded { reason } =
                &report.status
            {
                eprintln!("degraded: {reason}; the result below is the best known");
            }
            if let Some(dest) = args.get("stats-json") {
                let stats = Value::Object(vec![
                    ("schema_version".into(), Value::UInt(1)),
                    ("command".into(), Value::Str("minimize".into())),
                    ("function".into(), Value::Str(f.name().to_string())),
                    ("proven_optimal".into(), Value::Bool(report.proven_optimal)),
                    ("degraded".into(), Value::Bool(degraded)),
                    ("incremental".into(), Value::Bool(incremental)),
                    ("inprocess".into(), Value::Bool(!args.has("no-inprocess"))),
                    ("n_calls".into(), Value::UInt(report.calls.len() as u64)),
                    ("certified_unsat".into(), Value::UInt(certified as u64)),
                    (
                        "total_solver_time_us".into(),
                        Value::UInt(report.total_time().as_micros() as u64),
                    ),
                    (
                        "calls".into(),
                        Value::Array(report.calls.iter().map(Serialize::to_value).collect()),
                    ),
                ]);
                write_stats_json(dest, &stats)?;
            }
            match report.best {
                Some(circuit) => {
                    emit_circuit(&circuit, args)?;
                    println!(
                        "optimality: {}",
                        match (report.proven_optimal, args.has("certify"), degraded) {
                            (true, true, _) => "proven (UNSAT below, DRAT-certified)",
                            (true, false, _) => "proven (UNSAT below)",
                            (false, _, true) => "upper bound only (degraded run)",
                            (false, _, false) => "upper bound only",
                        }
                    );
                    if degraded {
                        Ok(ExitCode::from(EXIT_INCONCLUSIVE))
                    } else {
                        Ok(ExitCode::SUCCESS)
                    }
                }
                None if degraded => {
                    eprintln!("inconclusive: no circuit found before the budget ran out");
                    Ok(ExitCode::from(EXIT_INCONCLUSIVE))
                }
                None => Err(
                    "no circuit found within the search limits; raise --max-rops/--max-steps"
                        .into(),
                ),
            }
        }
        "run" => {
            let f = parse_function(args.get("function").ok_or("--function required")?)?;
            let input = args
                .get("input")
                .ok_or("--input required (e.g. --input 1011)")?;
            if input.len() != f.n_inputs() as usize {
                return Err(format!("--input must have {} bits", f.n_inputs()));
            }
            let x = u32::from_str_radix(input, 2).map_err(|e| e.to_string())?;
            let circuit = heuristic::map(&f).map_err(|e| e.to_string())?;
            let schedule = Schedule::compile(&circuit).map_err(|e| e.to_string())?;
            let seed = args.get_usize("seed", 42) as u64;
            let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), seed);
            let out = schedule.execute(x, &mut array);
            array.trace().emit_telemetry(&tel.telemetry);
            if args.has("trace") {
                print!("{}", array.trace().to_table());
            }
            let bits: String = out.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!("{}({input}) = {bits}", f.name());
            Ok(ExitCode::SUCCESS)
        }
        "faultsim" => faultsim(args, tel),
        "fuzz" => fuzz(args),
        "client" => client(args),
        _ => {
            println!(
                "usage: mmsynth <synth|minimize|faultsim|fuzz|map|run|census|list|client> [--function NAME|BITS,...]\n\
                 \x20      synth:    --rops N [--legs N] [--steps N] [--r-only N] [--budget s]\n\
                 \x20                [--avoid-cells 0,3 --array-size N] [--deadline SECS]\n\
                 \x20                [--certify] [--proof FILE]\n\
                 \x20                [--dot | --json | --dimacs | --schedule]\n\
                 \x20      minimize: [--max-rops N] [--max-steps N] [--r-only] [--adder]\n\
                 \x20                [--jobs N] [--conflicts N] [--deadline SECS]\n\
                 \x20                [--no-incremental] [--no-inprocess]\n\
                 \x20                [--certify] [--proof-dir DIR]\n\
                 \x20                [--cache-dir DIR [--paranoid]]\n\
                 \x20                [--dot | --json | --schedule]\n\
                 \x20      client:   --socket PATH | --tcp ADDR:PORT [--op OP]\n\
                 \x20                [--function NAME|BITS,...] [--id ID] [--no-cache]\n\
                 \x20                [--progress] (streams frames on stderr)\n\
                 \x20                (forwards minimize/synth/faultsim flags to mmsynthd)\n\
                 \x20      faultsim: --rops N [--legs N] [--steps N]\n\
                 \x20                [--stuck CELL:lrs,...] [--flip CELL:CYCLE,...]\n\
                 \x20                [--variability SIGMA] [--trials N] [--seed N]\n\
                 \x20                [--array-size N] [--repair [--retries N]]\n\
                 \x20                [--certify] [--out FILE]\n\
                 \x20      fuzz:     [--seed N] [--budget N] [--corpus DIR]\n\
                 \x20                [--replay DIR] [--inject-violation]\n\
                 \x20                [--emit-seed-corpus --corpus DIR]\n\
                 \x20      map:      [--dot | --json | --schedule]\n\
                 \x20      run:      --input BITS [--trace] [--seed N]\n\
                 \x20      census:   --inputs N [--pre K] [--post K] [--tebe K]\n\
                 \n\
                 \x20      --certify checks every UNSAT answer against its DRAT proof\n\
                 \x20      before any optimality claim; --proof/--proof-dir archive the\n\
                 \x20      accepted proofs as DRAT text\n\
                 \x20      minimize descends its budget ladder incrementally (one\n\
                 \x20      long-lived solver per worker, shared learned clauses);\n\
                 \x20      --no-incremental restores cold per-rung solves, and\n\
                 \x20      --certify implies them (proofs refute each rung's formula)\n\
                 \x20      the solver inprocesses (variable elimination, subsumption,\n\
                 \x20      vivification) at restart boundaries; --no-inprocess turns\n\
                 \x20      that off — verdicts and proofs are identical either way\n\
                 \x20      telemetry (all subcommands): --trace-out FILE.jsonl streams\n\
                 \x20      raw events, --report-json FILE writes the aggregated phase\n\
                 \x20      timing report, --progress renders a stderr ticker;\n\
                 \x20      synth/minimize also take --stats-json [FILE]\n\
                 \x20      exit codes: 0 ok, 1 error, 2 inconclusive (budget/deadline\n\
                 \x20      expired or repair gave up; best-known result still printed)"
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// `mmsynth minimize --cache-dir DIR`: the daemon's cache path without the
/// daemon. Canonicalize, look up, solve the canonical representative on a
/// miss, store, de-canonicalize for printing — so a CLI run warms (and is
/// warmed by) the same cache `mmsynthd` serves from.
fn minimize_cached(
    args: &Args,
    tel: &TelemetrySetup,
    f: &MultiOutputFn,
    jobs: usize,
    options: &EncodeOptions,
    dir: &str,
) -> Result<ExitCode, String> {
    use memristive_mm::boolfn::npn::canonicalize;
    use memristive_mm::service::engine::entry_from_report;
    use memristive_mm::service::ResultCache;
    use memristive_mm::synth::request::{decanonicalize_circuit, MinimizeRequest};

    if args.has("deadline") {
        // A deadline makes the verdict timing-dependent, so such runs can
        // neither be stored nor validly served from the cache.
        return Err(
            "--cache-dir requires a deterministic request; drop --deadline (use --conflicts to bound work)"
                .into(),
        );
    }
    let mut request = if args.has("r-only") {
        MinimizeRequest::r_only(args.get_usize("max-rops", 8))
    } else {
        MinimizeRequest::mixed_mode(
            args.get_usize("max-rops", 8),
            args.get_usize("max-steps", 6),
            args.has("adder") || f.name().starts_with("adder"),
        )
    };
    if let Some(c) = args.get("conflicts") {
        request.max_conflicts = Some(c.parse().map_err(|e| format!("bad --conflicts: {e}"))?);
    }
    request.certify = args.has("certify");

    let (cache, recovery) =
        ResultCache::open(dir).map_err(|e| format!("opening cache {dir}: {e}"))?;
    let cache = cache.with_paranoid(args.has("paranoid"));
    if recovery.quarantined > 0 || recovery.temps_removed > 0 {
        eprintln!(
            "cache recovery: {} valid, {} quarantined, {} temp files removed",
            recovery.valid, recovery.quarantined, recovery.temps_removed
        );
    }
    let (canonical, transform) = canonicalize(f);
    let (entry, outcome, degraded) = match cache.lookup(&canonical, &request) {
        Some(entry) => (entry, "hit", false),
        None => {
            let synth = Synthesizer::new()
                .with_certification(request.certify)
                .with_telemetry(tel.telemetry.clone());
            let report = request
                .run(&synth, &canonical, options, jobs)
                .map_err(|e| e.to_string())?;
            let degraded = report.status.is_degraded();
            if let memristive_mm::synth::optimize::OptimizeStatus::Degraded { reason } =
                &report.status
            {
                eprintln!("degraded: {reason}; the result below is the best known (not cached)");
            }
            let entry = entry_from_report(&canonical, &request, &report);
            if !degraded {
                cache
                    .store(&request, &entry)
                    .map_err(|e| format!("storing cache entry: {e}"))?;
            }
            (entry, "miss", degraded)
        }
    };
    let stats = cache.stats();
    eprintln!(
        "cache: {outcome} ({} entries, {} stored this run)",
        cache.len(),
        stats.stores
    );
    match &entry.circuit {
        Some(circuit) => {
            let circuit = decanonicalize_circuit(circuit, &transform).map_err(|e| e.to_string())?;
            emit_circuit(&circuit, args)?;
            println!(
                "optimality: {}",
                match (entry.proven_optimal, entry.proof.is_some(), degraded) {
                    (true, true, _) => "proven (UNSAT below, DRAT-certified)",
                    (true, false, _) => "proven (UNSAT below)",
                    (false, _, true) => "upper bound only (degraded run)",
                    (false, _, false) => "upper bound only",
                }
            );
            if degraded {
                Ok(ExitCode::from(EXIT_INCONCLUSIVE))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        None if degraded => {
            eprintln!("inconclusive: no circuit found before the budget ran out");
            Ok(ExitCode::from(EXIT_INCONCLUSIVE))
        }
        None => {
            Err("no circuit found within the search limits; raise --max-rops/--max-steps".into())
        }
    }
}

/// `mmsynth client`: one-shot JSON-lines client for a running `mmsynthd`.
/// Resolves `--function` to truth tables locally, sends a single request
/// over `--socket`/`--tcp`, prints the raw response line, and maps the
/// response status onto the usual exit codes (`degraded` → 2).
/// `--progress` subscribes to the daemon's progress stream: interleaved
/// `progress` frames render on stderr as they arrive, stdout still
/// carries exactly the final response line.
fn client(args: &Args) -> Result<ExitCode, String> {
    let op = args.get("op").unwrap_or("minimize");
    let id = args.get("id").unwrap_or("cli").to_string();
    let mut fields: Vec<(String, Value)> = vec![
        ("op".into(), Value::Str(op.into())),
        ("id".into(), Value::Str(id)),
    ];
    if matches!(op, "minimize" | "synth" | "faultsim") {
        let f = parse_function(args.get("function").ok_or("--function required")?)?;
        let tables: Vec<Value> = f
            .outputs()
            .iter()
            .map(|t| Value::Str(t.to_bitstring()))
            .collect();
        fields.push(("tables".into(), Value::Array(tables)));
    }
    for (flag, wire) in [
        ("max-rops", "max_rops"),
        ("max-steps", "max_steps"),
        ("conflicts", "max_conflicts"),
        ("rops", "rops"),
        ("legs", "legs"),
        ("steps", "steps"),
        ("trials", "trials"),
        ("seed", "seed"),
    ] {
        if let Some(v) = args.get(flag) {
            let n: u64 = v.parse().map_err(|e| format!("bad --{flag}: {e}"))?;
            fields.push((wire.into(), Value::UInt(n)));
        }
    }
    if let Some(d) = args.get("deadline") {
        let secs: f64 = d.parse().map_err(|e| format!("bad --deadline: {e}"))?;
        fields.push(("deadline_secs".into(), Value::Float(secs)));
    }
    for (flag, wire) in [
        ("r-only", "r_only"),
        ("adder", "adder"),
        ("certify", "certify"),
        ("no-cache", "no_cache"),
    ] {
        if args.has(flag) {
            fields.push((wire.into(), Value::Bool(true)));
        }
    }
    if let Some(stuck) = args.get("stuck-lrs") {
        let cells = parse_cells(stuck)?;
        fields.push((
            "stuck_lrs".into(),
            Value::Array(cells.into_iter().map(|c| Value::UInt(c as u64)).collect()),
        ));
    }
    let progress = args.has("progress");
    if progress {
        fields.push(("subscribe".into(), Value::Bool(true)));
    }
    let line = serde_json::to_string(&Value::Object(fields)).map_err(|e| e.to_string())?;

    let response = if let Some(path) = args.get("socket") {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("connecting to {path}: {e}"))?;
        client_exchange(stream, &line, progress)?
    } else if let Some(addr) = args.get("tcp") {
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        client_exchange(stream, &line, progress)?
    } else {
        return Err("client needs --socket PATH or --tcp ADDR:PORT".into());
    };
    let reply = response.trim_end();
    if reply.is_empty() {
        return Err("daemon closed the connection without a response".into());
    }
    println!("{reply}");
    let status = serde_json::from_str::<Value>(reply)
        .ok()
        .and_then(|v| match v.get("status") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    match status.as_str() {
        "ok" => Ok(ExitCode::SUCCESS),
        "degraded" => Ok(ExitCode::from(EXIT_INCONCLUSIVE)),
        _ => Ok(ExitCode::FAILURE),
    }
}

/// Sends one request line and reads until the final response, rendering
/// any interleaved `progress` frames on stderr (when `progress` is set;
/// frames only arrive if the request subscribed).
fn client_exchange<S: std::io::Read + std::io::Write>(
    mut stream: S,
    line: &str,
    progress: bool,
) -> Result<String, String> {
    use std::io::{BufRead, BufReader};

    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(String::new()); // EOF: caller reports the hangup
        }
        let trimmed = reply.trim_end();
        match serde_json::from_str::<Value>(trimmed) {
            Ok(v) if matches!(v.get("frame"), Some(Value::Str(f)) if f == "progress") => {
                if progress {
                    render_progress_frame(&v);
                }
            }
            _ => return Ok(trimmed.to_string()),
        }
    }
}

/// One stderr line per frame: `mmsynth: progress <event> k=v ...`.
fn render_progress_frame(frame: &Value) {
    let Value::Object(fields) = frame else { return };
    let mut event = String::new();
    let mut rest = String::new();
    for (key, value) in fields {
        match key.as_str() {
            "frame" | "id" => {}
            "event" => {
                if let Value::Str(s) = value {
                    event = s.clone();
                }
            }
            _ => {
                let rendered = match value {
                    Value::Str(s) => s.clone(),
                    other => serde_json::to_string(other).unwrap_or_default(),
                };
                rest.push_str(&format!(" {key}={rendered}"));
            }
        }
    }
    eprintln!("mmsynth: progress {event}{rest}");
}

/// `mmsynth fuzz`: run seeded end-to-end scenarios, archive shrunk failures.
fn fuzz(args: &Args) -> Result<ExitCode, String> {
    use memristive_mm::synth::fuzz::{run_fuzz, run_scenario, seed_corpus, Corpus, FuzzConfig};

    let seed = args.get_usize("seed", 42) as u64;
    let budget = args.get_usize("budget", 25);
    let cfg = FuzzConfig {
        inject_violation: args.has("inject-violation"),
    };

    // --emit-seed-corpus: (re)write the hand-picked seed cases into
    // --corpus DIR. Used to regenerate `tests/corpus/` after a schema
    // change; the cases themselves live in `fuzz::seed_corpus`.
    if args.has("emit-seed-corpus") {
        let dir = args
            .get("corpus")
            .ok_or("--emit-seed-corpus needs --corpus DIR")?;
        let corpus = Corpus::open(dir).map_err(|e| format!("opening corpus {dir}: {e}"))?;
        for case in seed_corpus() {
            let path = corpus
                .archive(&case)
                .map_err(|e| format!("archiving {}: {e}", case.scenario.name))?;
            println!("wrote {}", path.display());
        }
        return Ok(ExitCode::SUCCESS);
    }

    // --replay DIR: re-run every archived corpus case (twice, pinning
    // replay determinism) instead of generating new scenarios.
    if let Some(dir) = args.get("replay") {
        let corpus = Corpus::open(dir).map_err(|e| format!("opening corpus {dir}: {e}"))?;
        let cases = corpus.load().map_err(|e| format!("loading corpus: {e}"))?;
        let mut violations = 0usize;
        for (path, case) in &cases {
            let first = run_scenario(&case.scenario, &cfg);
            let second = run_scenario(&case.scenario, &cfg);
            match (first, second) {
                (Ok(a), Ok(b)) => {
                    if a.fingerprint != b.fingerprint {
                        violations += 1;
                        eprintln!("{}: replay diverged", path.display());
                    }
                    for v in &a.violations {
                        violations += 1;
                        eprintln!("{}: {v}", path.display());
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    violations += 1;
                    eprintln!("{}: scenario error: {e}", path.display());
                }
            }
        }
        println!(
            "replayed {} corpus cases, {violations} violations",
            cases.len()
        );
        return Ok(if violations == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    let corpus = match args.get("corpus") {
        Some(dir) => Some(Corpus::open(dir).map_err(|e| format!("opening corpus {dir}: {e}"))?),
        None => None,
    };
    let summary = run_fuzz(seed, budget, corpus.as_ref(), &cfg, |index, report| {
        if !report.violations.is_empty() {
            eprintln!("scenario {index} ({}) FAILED", report.name);
        }
    });
    for v in &summary.violations {
        eprintln!("violation: {v}");
    }
    for path in &summary.archived {
        eprintln!("archived shrunk reproducer: {}", path.display());
    }
    println!(
        "fuzz: {} scenarios (seed {seed}), {} degraded, {} violations, fingerprint {:016x}",
        summary.scenarios,
        summary.degraded,
        summary.violations.len(),
        summary.fingerprint
    );
    if let Some(dest) = args.get("stats-json") {
        let stats = Value::Object(vec![
            ("schema_version".into(), Value::UInt(1)),
            ("command".into(), Value::Str("fuzz".into())),
            ("seed".into(), Value::UInt(seed)),
            ("budget".into(), Value::UInt(budget as u64)),
            ("scenarios".into(), Value::UInt(summary.scenarios as u64)),
            (
                "degraded_scenarios".into(),
                Value::UInt(summary.degraded as u64),
            ),
            (
                "violations".into(),
                Value::UInt(summary.violations.len() as u64),
            ),
            (
                "fingerprint".into(),
                Value::Str(format!("{:016x}", summary.fingerprint)),
            ),
            (
                "archived".into(),
                Value::Array(
                    summary
                        .archived
                        .iter()
                        .map(|p| Value::Str(p.display().to_string()))
                        .collect(),
                ),
            ),
        ]);
        write_stats_json(dest, &stats)?;
    }
    Ok(if summary.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `mmsynth faultsim`: synthesize, place, inject faults, optionally repair.
fn faultsim(args: &Args, tel: &TelemetrySetup) -> Result<ExitCode, String> {
    let f = parse_function(args.get("function").ok_or("--function required")?)?;
    let rops = args.get_usize("rops", 1);
    let legs = args.get_usize(
        "legs",
        SynthSpec::paper_legs(&f, rops, f.name().starts_with("adder")),
    );
    let spec = SynthSpec::mixed_mode(&f, rops, legs, args.get_usize("steps", 3))
        .map_err(|e| e.to_string())?;

    // Fault plans: an always-present healthy control, plus one injected
    // plan when any fault flag is given.
    let mut injected = FaultPlan::named("injected");
    if let Some(stuck) = args.get("stuck") {
        for part in stuck.split(',').filter(|s| !s.is_empty()) {
            let (cell, state) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --stuck entry {part:?}, want CELL:lrs|hrs"))?;
            let cell: usize = cell.trim().parse().map_err(|e| format!("bad cell: {e}"))?;
            let state = match state.trim().to_ascii_lowercase().as_str() {
                "lrs" | "1" => DeviceState::Lrs,
                "hrs" | "0" => DeviceState::Hrs,
                other => return Err(format!("bad stuck state {other:?}, want lrs|hrs")),
            };
            injected = injected.with_stuck(cell, state);
        }
    }
    if let Some(flips) = args.get("flip") {
        for part in flips.split(',').filter(|s| !s.is_empty()) {
            let (cell, cycle) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --flip entry {part:?}, want CELL:CYCLE"))?;
            injected = injected.with_transient(
                cell.trim().parse().map_err(|e| format!("bad cell: {e}"))?,
                cycle
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad cycle: {e}"))?,
            );
        }
    }
    if let Some(v) = args.get("variability") {
        let sigma: f64 = v.parse().map_err(|e| format!("bad --variability: {e}"))?;
        injected = injected.with_variability(memristive_mm::device::Variability {
            d2d_sigma: sigma,
            c2c_sigma: sigma / 4.0,
        });
    }
    let mut plans = vec![FaultPlan::named("control")];
    if !injected.is_healthy() {
        plans.push(injected);
    }

    let mut campaign = CampaignConfig::default();
    campaign.trials = args.get_usize("trials", campaign.trials as usize) as u32;
    campaign.seed = args.get_usize("seed", campaign.seed as usize) as u64;

    let synth = Synthesizer::new()
        .with_certification(args.has("certify"))
        .with_telemetry(tel.telemetry.clone());

    if args.has("repair") {
        let array_size = args.get_usize("array-size", 16);
        let config = RepairConfig {
            array_size,
            max_retries: args.get_usize("retries", 4),
            budget_escalation: 2,
            campaign,
        };
        let outcome =
            synthesize_with_repair(&synth, &spec, &plans, &config).map_err(|e| e.to_string())?;
        for (i, attempt) in outcome.attempts.iter().enumerate() {
            eprintln!(
                "round {i}: {} failures with cells {:?} avoided; newly implicated: {:?}",
                attempt.failures, attempt.avoided, attempt.newly_implicated
            );
        }
        match &outcome.status {
            RepairStatus::Clean => eprintln!("clean: schedule survives the campaign unrepaired"),
            RepairStatus::Repaired => eprintln!(
                "repaired: schedule routed around cells {:?} and survives the campaign",
                outcome.avoided
            ),
            RepairStatus::Unrepairable { reason } => eprintln!("unrepairable: {reason}"),
        }
        if let Some(report) = &outcome.report {
            write_report(report, args)?;
        }
        if outcome.succeeded() {
            Ok(ExitCode::SUCCESS)
        } else {
            Ok(ExitCode::from(EXIT_INCONCLUSIVE))
        }
    } else {
        let outcome = synth.run(&spec).map_err(|e| e.to_string())?;
        let circuit = match outcome.result {
            SynthResult::Realizable(c) => c,
            SynthResult::Unrealizable => {
                return Err("no circuit exists within these budgets; raise --rops/--steps".into())
            }
            SynthResult::Unknown => {
                eprintln!("inconclusive: synthesis budget exhausted");
                return Ok(ExitCode::from(EXIT_INCONCLUSIVE));
            }
        };
        let schedule = Schedule::compile(&circuit).map_err(|e| e.to_string())?;
        let n_cells = schedule.n_cells();
        let array_size = args.get_usize("array-size", n_cells);
        let placed = schedule
            .place_avoiding(array_size, &[])
            .map_err(|e| e.to_string())?;
        let report = run_campaign_traced(&placed, &plans, &campaign, &tel.telemetry)
            .map_err(|e| e.to_string())?;
        for plan in &report.plans {
            eprintln!(
                "plan {:?}: {}/{} executions failed (error rate {:.3}; \
                 {} stuck, {} transient, {} variability), first divergence: {:?}",
                plan.plan.name,
                plan.failures,
                plan.executions,
                plan.error_rate,
                plan.stuck_failures,
                plan.transient_failures,
                plan.variability_failures,
                plan.first_divergence_cycle,
            );
        }
        write_report(&report, args)?;
        Ok(ExitCode::SUCCESS)
    }
}

/// Prints the campaign report as JSON to stdout, or to `--out FILE`.
fn write_report(report: &CampaignReport, args: &Args) -> Result<(), String> {
    let json = report.to_json();
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("campaign report written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn emit_circuit(circuit: &memristive_mm::circuit::MmCircuit, args: &Args) -> Result<(), String> {
    if args.has("dot") {
        print!("{}", circuit.to_dot());
    } else if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(circuit).map_err(|e| e.to_string())?
        );
    } else if args.has("schedule") {
        let schedule = Schedule::compile(circuit).map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", circuit.to_text());
        let m = circuit.metrics();
        println!(
            "metrics: N_R={} N_L={} N_VS={} N_St={} N_Dev={}",
            m.n_rops, m.n_legs, m.n_vsteps, m.n_steps, m.n_devices_structural
        );
    }
    Ok(())
}
