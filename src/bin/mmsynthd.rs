//! `mmsynthd` — the crash-safe synthesis daemon.
//!
//! Accepts JSON-lines jobs (`minimize`, `synth`, `faultsim`, plus
//! `ping`/`stats`/`shutdown`) over stdin/stdout by default, or over a
//! Unix/TCP socket with `--socket`/`--tcp`. Results for deterministic
//! minimize requests are cached persistently under `--cache-dir`, keyed
//! by the NPN-canonical form of the requested function, so equivalent
//! requests — across restarts and across clients — are served without
//! re-solving.
//!
//! ```text
//! echo '{"op":"minimize","id":"1","tables":["0110"]}' \
//!   | mmsynthd --cache-dir /var/cache/mmsynth
//! ```
//!
//! SIGTERM (or the `shutdown` op, or stdin EOF) drains: queued jobs
//! finish, the cache index is flushed, telemetry is checkpointed.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use memristive_mm::service::{Daemon, DaemonConfig, RetryPolicy};
use memristive_mm::telemetry::{
    atomic_write, JsonlSink, MemorySink, MultiSink, RunReport, Telemetry, TelemetrySink,
};

struct Args {
    flags: HashMap<String, String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut flags = HashMap::new();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            return Err(format!("unexpected argument {a:?} (flags only)"));
        }
    }
    Ok(Args { flags })
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

const USAGE: &str = "\
mmsynthd — synthesis daemon (JSON-lines protocol)

usage: mmsynthd [options]

  --cache-dir DIR    persistent NPN result cache (recommended)
  --paranoid         re-execute cached circuits on the device model
  --workers N        concurrent jobs (default 2)
  --queue-depth N    queued jobs before shedding `overloaded` (default 16)
  --jobs N           portfolio width per solve (default 2)
  --retries N        max attempts per job (default 3)
  --socket PATH      serve a Unix socket instead of stdio
  --tcp ADDR:PORT    serve TCP instead of stdio
  --metrics-addr A:P serve Prometheus text on GET http://A:P/metrics
  --trace-out FILE   stream telemetry events as JSONL
  --report-json FILE aggregated run report on shutdown
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let args = parse_args(argv)?;
    if args.has("help") {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut sinks: Vec<Arc<dyn TelemetrySink>> = Vec::new();
    let mut memory = None;
    if let Some(path) = args.get("trace-out") {
        let sink = JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| format!("creating {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    let report_path = args.get("report-json").map(str::to_string);
    if report_path.is_some() {
        let m = Arc::new(MemorySink::new());
        memory = Some(m.clone());
        sinks.push(m);
    }
    let telemetry = match sinks.len() {
        0 => Telemetry::disabled(),
        1 => Telemetry::new(sinks.pop().expect("length checked")),
        _ => Telemetry::new(Arc::new(MultiSink::new(sinks))),
    };
    telemetry.meta_event("mmsynthd");

    let config = DaemonConfig {
        cache_dir: args.get("cache-dir").map(PathBuf::from),
        paranoid: args.has("paranoid"),
        workers: args.get_usize("workers", 2)?.max(1),
        queue_depth: args.get_usize("queue-depth", 16)?.max(1),
        solve_jobs: args.get_usize("jobs", 2)?.max(1),
        retry: RetryPolicy {
            max_attempts: args.get_usize("retries", 3)? as u32,
            ..RetryPolicy::default()
        },
        metrics_addr: args.get("metrics-addr").map(str::to_string),
    };
    let cache_dir = config.cache_dir.clone();
    let daemon =
        Daemon::start(config, telemetry.clone()).map_err(|e| format!("starting daemon: {e}"))?;
    if let Some(addr) = daemon.metrics_local_addr() {
        eprintln!("mmsynthd: metrics on http://{addr}/metrics");
    }
    let recovery = daemon.recovery().clone();
    if let Some(dir) = &cache_dir {
        eprintln!(
            "mmsynthd: cache {}: {} valid, {} quarantined, {} temp files removed",
            dir.display(),
            recovery.valid,
            recovery.quarantined,
            recovery.temps_removed
        );
    }

    let served = if let Some(path) = args.get("socket") {
        eprintln!("mmsynthd: serving on unix socket {path}");
        daemon.serve_unix(std::path::Path::new(path))
    } else if let Some(addr) = args.get("tcp") {
        eprintln!("mmsynthd: serving on tcp {addr}");
        daemon.serve_tcp(addr)
    } else {
        eprintln!("mmsynthd: serving on stdio");
        daemon.serve_stdio()
    };
    served.map_err(|e| format!("serve loop: {e}"))?;

    if let (Some(path), Some(memory)) = (&report_path, &memory) {
        let report = RunReport::from_events(&memory.snapshot());
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        atomic_write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("mmsynthd: run report written to {path}");
    }
    eprintln!("mmsynthd: drained");
    Ok(ExitCode::SUCCESS)
}
