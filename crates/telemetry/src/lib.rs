//! Structured tracing, metrics, and run reports for the memristive
//! mixed-mode synthesis pipeline.
//!
//! # Design
//!
//! The crate follows the same discipline as `mm-sat`'s `ProofWriter` hooks:
//! a *disabled* [`Telemetry`] handle costs a single branch per call site
//! (`Option::is_some` on one pointer), so instrumentation can stay compiled
//! into hot paths permanently. An *enabled* handle stamps each event with a
//! global sequence number and a microsecond timestamp and forwards it to a
//! pluggable [`TelemetrySink`].
//!
//! Three primitives cover the pipeline:
//!
//! * **Spans** ([`Telemetry::span`]) — timed phases. Nesting is per-thread by
//!   open/close order; the [`RunReport`] aggregator rebuilds the tree.
//! * **Counters** ([`Telemetry::counter`]) — monotonic totals (conflicts,
//!   propagations, device cycles). Emitted as *deltas* so sampled sites such
//!   as the CDCL cancel-poll can batch increments.
//! * **Points** ([`Telemetry::point`]) — instantaneous lifecycle events with
//!   attributes (rung outcomes, CNF sizes, repair rounds, device cycles).
//!
//! Everything serializes through the vendored `serde` shim to JSON Lines and
//! round-trips exactly, so a `--trace-out` file can be re-aggregated offline
//! into the same [`RunReport`] that was computed in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
mod event;
pub mod metrics;
mod report;
mod sink;

pub use atomic::{atomic_write, AtomicFile};
pub use event::{attr, kv, AttrValue, Event, EventKind, TRACE_SCHEMA_VERSION};
pub use metrics::{latency_buckets, Counter, Gauge, Histogram, MetricsRegistry};
pub use report::{CounterTotal, PhaseNode, RunReport, RungSummary, REPORT_SCHEMA_VERSION};
pub use sink::{JsonlSink, MemorySink, MultiSink, NoopSink, ProgressSink, TelemetrySink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    sink: Arc<dyn TelemetrySink>,
    epoch: Instant,
    next_span: AtomicU64,
    next_seq: AtomicU64,
}

impl Inner {
    fn emit(&self, kind: EventKind) {
        let event = Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.epoch.elapsed().as_micros() as u64,
            thread: thread_label(),
            kind,
        };
        self.sink.record(&event);
    }
}

fn thread_label() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// A cheaply clonable telemetry handle.
///
/// The disabled handle ([`Telemetry::disabled`], also `Default`) is a `None`
/// pointer: every emit method starts with one branch and returns. Handles
/// clone by bumping an `Arc`, so each pipeline layer can own one.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-cost disabled handle.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle forwarding to a shared sink.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                epoch: Instant::now(),
                next_span: AtomicU64::new(0),
                next_seq: AtomicU64::new(0),
            })),
        }
    }

    /// Convenience: an enabled handle owning a freshly boxed sink.
    pub fn with_sink(sink: impl TelemetrySink + 'static) -> Self {
        Self::new(Arc::new(sink))
    }

    /// An enabled handle that records to this handle's sink *and* to
    /// `extra`. A disabled handle becomes one that records to `extra`
    /// alone. Used by the service to attach per-job progress sinks and
    /// the live-metrics bridge without disturbing the base trace wiring.
    ///
    /// The returned handle has its own epoch and sequence numbering; the
    /// base handle keeps emitting independently.
    pub fn with_extra_sink(&self, extra: Arc<dyn TelemetrySink>) -> Self {
        match &self.inner {
            None => Self::new(extra),
            Some(inner) => Self::new(Arc::new(MultiSink::new(vec![inner.sink.clone(), extra]))),
        }
    }

    /// Whether events are being recorded. This is the single hot-path branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, Vec::new())
    }

    /// Opens a span with attributes; it closes when the guard drops.
    pub fn span_with(&self, name: &str, attrs: Vec<(String, AttrValue)>) -> Span {
        match &self.inner {
            None => Span {
                telemetry: Telemetry::disabled(),
                id: 0,
            },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed) + 1;
                inner.emit(EventKind::SpanOpen {
                    id,
                    name: name.to_string(),
                    attrs,
                });
                Span {
                    telemetry: self.clone(),
                    id,
                }
            }
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            if delta > 0 {
                inner.emit(EventKind::Counter {
                    name: name.to_string(),
                    delta,
                });
            }
        }
    }

    /// Emits an instantaneous event with attributes.
    pub fn point(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        if let Some(inner) = &self.inner {
            inner.emit(EventKind::Point {
                name: name.to_string(),
                attrs,
            });
        }
    }

    /// Emits a `meta` point carrying the trace schema version; `mmsynth`
    /// stamps every trace with this as its first event.
    pub fn meta_event(&self, command: &str) {
        self.point(
            "meta",
            vec![
                kv("trace_schema_version", TRACE_SCHEMA_VERSION),
                kv("command", command),
            ],
        );
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// RAII guard for an open span; emits the close event on drop.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    id: u64,
}

impl Span {
    /// The span's process-unique id (0 when telemetry is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.telemetry.inner {
            inner.emit(EventKind::SpanClose { id: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let span = telemetry.span("root");
        assert_eq!(span.id(), 0);
        telemetry.counter("c", 5);
        telemetry.point("p", vec![kv("k", 1u64)]);
        drop(span);
        telemetry.flush();
    }

    #[test]
    fn span_nesting_builds_a_tree() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        {
            let _root = telemetry.span("run");
            {
                let _encode = telemetry.span("encode");
            }
            {
                let _solve = telemetry.span("solve");
                telemetry.counter("solver.conflicts", 7);
            }
            {
                let _solve = telemetry.span("solve");
                telemetry.counter("solver.conflicts", 3);
            }
        }
        let report = RunReport::from_events(&sink.snapshot());
        assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
        let run = report.phase(&["run"]).expect("run phase");
        assert_eq!(run.count, 1);
        assert_eq!(run.children.len(), 2);
        assert_eq!(report.phase(&["run", "encode"]).expect("encode").count, 1);
        let solve = report.phase(&["run", "solve"]).expect("solve");
        assert_eq!(solve.count, 2);
        assert_eq!(report.counter("solver.conflicts"), 10);
    }

    #[test]
    fn jsonl_roundtrip_rebuilds_identical_report() {
        let memory = Arc::new(MemorySink::new());
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let jsonl = Arc::new(JsonlSink::with_writer(Box::new(SharedBuf(buffer.clone()))));
        let telemetry = Telemetry::new(Arc::new(MultiSink::new(vec![
            memory.clone() as Arc<dyn TelemetrySink>,
            jsonl.clone() as Arc<dyn TelemetrySink>,
        ])));
        {
            let _root = telemetry.span_with("run", vec![kv("command", "test")]);
            telemetry.point("rung", vec![kv("n_rops", 2u64), kv("outcome", "sat")]);
            telemetry.counter("device.cycles", 12);
        }
        telemetry.flush();

        let text = String::from_utf8(buffer.lock().expect("buffer").clone()).expect("utf8");
        let from_file = RunReport::from_jsonl(&text).expect("parse trace");
        let from_memory = RunReport::from_events(&memory.snapshot());
        assert_eq!(from_file, from_memory);
        assert_eq!(from_file.rungs.len(), 1);
        assert_eq!(from_file.rungs[0].outcome, "sat");
        assert_eq!(from_file.counter("device.cycles"), 12);
    }

    #[test]
    fn unclosed_spans_are_closed_at_trace_end() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let root = telemetry.span("run");
        telemetry.counter("c", 1);
        std::mem::forget(root); // never closed
        let report = RunReport::from_events(&sink.snapshot());
        assert_eq!(report.phase(&["run"]).expect("run").count, 1);
    }

    #[test]
    fn multithreaded_spans_stay_per_thread() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let telemetry = telemetry.clone();
                scope.spawn(move || {
                    let _synth = telemetry.span("synth");
                    let _solve = telemetry.span("solve");
                    telemetry.counter("solver.conflicts", 1);
                });
            }
        });
        let report = RunReport::from_events(&sink.snapshot());
        let synth = report.phase(&["synth"]).expect("synth phase");
        assert_eq!(synth.count, 4);
        assert_eq!(report.phase(&["synth", "solve"]).expect("solve").count, 4);
        assert_eq!(report.counter("solver.conflicts"), 4);
    }

    use std::sync::Mutex;

    /// Test writer sharing its bytes with the asserting thread.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buffer").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
