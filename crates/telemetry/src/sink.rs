//! Pluggable event sinks.
//!
//! A [`TelemetrySink`] receives every [`Event`] an enabled [`crate::Telemetry`]
//! handle emits. Sinks must be `Send + Sync`: portfolio workers emit from many
//! threads concurrently. The implementations here cover the shipped use cases:
//!
//! * [`NoopSink`] — enabled handle, events dropped; exists so the overhead
//!   bench can measure instrumentation cost separately from I/O cost.
//! * [`MemorySink`] — collects events in memory for in-process aggregation
//!   ([`crate::RunReport::from_events`]) and tests.
//! * [`JsonlSink`] — streams one JSON object per line to a writer, buffered
//!   through a small fixed pool of sharded string buffers so concurrent
//!   writers rarely contend on the same lock.
//! * [`MultiSink`] — fans out to several sinks (e.g. JSONL file + progress).
//! * [`ProgressSink`] — renders a terse human ticker from lifecycle events.

use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};

/// Receives telemetry events. Implementations must tolerate concurrent
/// `record` calls from multiple threads.
pub trait TelemetrySink: Send + Sync {
    /// Records one event. Called on the emitting thread; must be cheap.
    fn record(&self, event: &Event);

    /// Flushes any buffered state to the underlying medium. Default: no-op.
    fn flush(&self) {}
}

/// Drops every event. Used to measure enabled-path overhead without I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory, in arrival order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of all events recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Removes and returns all events recorded so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Number of buffer shards in a [`JsonlSink`]. Threads hash to a shard, so
/// with the portfolio's typical ≤ 8 workers collisions are rare.
const JSONL_SHARDS: usize = 16;

/// A shard buffer larger than this is drained to the writer inline.
const JSONL_FLUSH_BYTES: usize = 64 * 1024;

/// Streams events as JSON Lines.
///
/// `record` serializes on the emitting thread, appends the line to one of
/// [`JSONL_SHARDS`] string buffers chosen by thread-id hash, and only takes
/// the writer lock when a shard fills. Lines are written whole, so the output
/// is always valid JSONL; cross-thread line order is unspecified (consumers
/// order by [`Event::seq`]).
pub struct JsonlSink {
    shards: [Mutex<String>; JSONL_SHARDS],
    out: Mutex<Box<dyn Write + Send>>,
    hasher: RandomState,
}

impl JsonlSink {
    /// Creates a sink writing to `path` (buffered, crash-safe): bytes
    /// stream to a hidden temp sibling that is promoted onto `path` on the
    /// first [`flush`](TelemetrySink::flush) (and on drop), so a killed
    /// process never leaves a torn trace at the consumer-visible path.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = crate::atomic::AtomicFile::create(path)?;
        Ok(Self::with_writer(Box::new(file)))
    }

    /// Creates a sink over an arbitrary writer (used by tests and benches).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(String::new())),
            out: Mutex::new(out),
            hasher: RandomState::new(),
        }
    }

    fn shard_index(&self) -> usize {
        (self.hasher.hash_one(std::thread::current().id()) as usize) % JSONL_SHARDS
    }

    fn drain_to_out(&self, buf: String) {
        if buf.is_empty() {
            return;
        }
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        let _ = out.write_all(buf.as_bytes());
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let Ok(mut line) = serde_json::to_string(event) else {
            return;
        };
        line.push('\n');
        let full = {
            let mut shard = self.shards[self.shard_index()]
                .lock()
                .expect("jsonl shard poisoned");
            shard.push_str(&line);
            if shard.len() >= JSONL_FLUSH_BYTES {
                Some(std::mem::take(&mut *shard))
            } else {
                None
            }
        };
        if let Some(buf) = full {
            self.drain_to_out(buf);
        }
    }

    fn flush(&self) {
        for shard in &self.shards {
            let buf = std::mem::take(&mut *shard.lock().expect("jsonl shard poisoned"));
            self.drain_to_out(buf);
        }
        let _ = self.out.lock().expect("jsonl writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans every event out to a list of sinks, in order.
pub struct MultiSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl MultiSink {
    /// Creates a fan-out sink over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> Self {
        Self { sinks }
    }
}

impl TelemetrySink for MultiSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Renders a terse human-readable ticker from lifecycle events.
///
/// Only [`EventKind::Point`] events are shown (rung outcomes, CNF sizes,
/// repair rounds, …); spans and counters are too chatty for a terminal.
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl ProgressSink {
    /// Ticker writing to standard error.
    pub fn stderr() -> Self {
        Self::with_writer(Box::new(io::stderr()))
    }

    /// Ticker writing to an arbitrary writer (used by tests).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }
}

impl TelemetrySink for ProgressSink {
    fn record(&self, event: &Event) {
        let EventKind::Point { name, attrs } = &event.kind else {
            return;
        };
        let mut line = format!("[{:>9.3}s] {name}", event.t_us as f64 / 1e6);
        for (k, v) in attrs {
            use crate::event::AttrValue as A;
            match v {
                A::U64(x) => line.push_str(&format!(" {k}={x}")),
                A::I64(x) => line.push_str(&format!(" {k}={x}")),
                A::F64(x) => line.push_str(&format!(" {k}={x:.4}")),
                A::Str(s) => line.push_str(&format!(" {k}={s}")),
                A::Bool(b) => line.push_str(&format!(" {k}={b}")),
            }
        }
        line.push('\n');
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}
