//! Rolling a raw event stream up into a [`RunReport`].
//!
//! The report is the *stable*, versioned artifact `mmsynth --report-json`
//! writes: a per-phase timing tree (spans nested per emitting thread),
//! counter totals, and one summary row per portfolio rung. Aggregates are
//! deterministic functions of the event *multiset* — phases, counters, and
//! rungs are sorted by name/budget, never by arrival order — so reports from
//! different thread interleavings of the same run compare equal wherever the
//! underlying work was the same.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::event::{attr, Event, EventKind};

/// Version of the [`RunReport`] JSON schema. Bump on incompatible change.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Aggregated view of one run, built from its telemetry events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version; always [`REPORT_SCHEMA_VERSION`] for reports built by
    /// this crate.
    pub schema_version: u64,
    /// Number of events consumed.
    pub n_events: u64,
    /// Roots of the per-phase timing tree, sorted by name (recursively).
    pub phases: Vec<PhaseNode>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CounterTotal>,
    /// One row per `rung` point event, sorted by budget then outcome.
    pub rungs: Vec<RungSummary>,
}

/// One node of the phase timing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseNode {
    /// Span name (e.g. `"synth"`, `"encode"`).
    pub name: String,
    /// How many spans with this name closed at this tree position.
    pub count: u64,
    /// Total wall time across those spans, microseconds.
    pub total_us: u64,
    /// Child phases, sorted by name.
    pub children: Vec<PhaseNode>,
}

/// Total of one named counter across the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterTotal {
    /// Counter name.
    pub name: String,
    /// Sum of all deltas.
    pub total: u64,
}

/// Summary of one portfolio rung, decoded from a `rung` point event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RungSummary {
    /// R-op budget of the rung.
    pub n_rops: u64,
    /// Leg budget of the rung.
    pub n_legs: u64,
    /// V-step budget of the rung.
    pub n_vsteps: u64,
    /// Outcome: `sat`, `unsat`, `unknown`, `skipped`, or `panicked`.
    pub outcome: String,
    /// Label of the worker thread that ran the rung.
    pub worker: String,
    /// Solver conflicts spent on the rung.
    pub conflicts: u64,
    /// CNF variable count of the rung's encoding.
    pub vars: u64,
    /// CNF clause count of the rung's encoding.
    pub clauses: u64,
    /// Wall time of the rung's synthesis call, microseconds.
    pub time_us: u64,
    /// Whether the rung's answer carried a checked certificate.
    pub certified: bool,
}

/// Mutable tree node used during aggregation.
struct Node {
    name: String,
    count: u64,
    total_us: u64,
    children: Vec<Node>,
}

impl Node {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            count: 0,
            total_us: 0,
            children: Vec::new(),
        }
    }

    fn into_phase(mut self) -> PhaseNode {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        PhaseNode {
            name: self.name,
            count: self.count,
            total_us: self.total_us,
            children: self.children.into_iter().map(Node::into_phase).collect(),
        }
    }
}

/// Index path into the forest: each element selects a child at that depth.
type NodePath = Vec<usize>;

fn find_or_create(forest: &mut Vec<Node>, path: &[usize], name: &str) -> usize {
    let children = path.iter().fold(forest, |nodes, &i| &mut nodes[i].children);
    if let Some(i) = children.iter().position(|n| n.name == name) {
        i
    } else {
        children.push(Node::new(name));
        children.len() - 1
    }
}

fn node_mut<'a>(forest: &'a mut [Node], path: &[usize]) -> &'a mut Node {
    let (&first, rest) = path.split_first().expect("non-empty node path");
    rest.iter()
        .fold(&mut forest[first], |node, &i| &mut node.children[i])
}

/// An open span on some thread's stack.
struct OpenSpan {
    id: u64,
    path: NodePath,
    opened_us: u64,
}

impl RunReport {
    /// Builds a report from events (any order; sorted internally by `seq`).
    pub fn from_events(events: &[Event]) -> RunReport {
        let mut ordered: Vec<&Event> = events.iter().collect();
        ordered.sort_by_key(|e| e.seq);

        let mut forest: Vec<Node> = Vec::new();
        let mut stacks: HashMap<&str, Vec<OpenSpan>> = HashMap::new();
        let mut counters: HashMap<&str, u64> = HashMap::new();
        let mut rungs: Vec<RungSummary> = Vec::new();
        let mut last_us = 0u64;

        for event in &ordered {
            last_us = last_us.max(event.t_us);
            match &event.kind {
                EventKind::SpanOpen { id, name, .. } => {
                    let stack = stacks.entry(event.thread.as_str()).or_default();
                    let parent: NodePath = stack.last().map(|s| s.path.clone()).unwrap_or_default();
                    let child = find_or_create(&mut forest, &parent, name);
                    let mut path = parent;
                    path.push(child);
                    stack.push(OpenSpan {
                        id: *id,
                        path,
                        opened_us: event.t_us,
                    });
                }
                EventKind::SpanClose { id } => {
                    let stack = stacks.entry(event.thread.as_str()).or_default();
                    if let Some(pos) = stack.iter().rposition(|s| s.id == *id) {
                        // Anything opened above the closing span is closed
                        // implicitly at the same timestamp.
                        for open in stack.drain(pos..).rev() {
                            let node = node_mut(&mut forest, &open.path);
                            node.count += 1;
                            node.total_us += event.t_us.saturating_sub(open.opened_us);
                        }
                    }
                }
                EventKind::Counter { name, delta } => {
                    *counters.entry(name.as_str()).or_default() += delta;
                }
                EventKind::Point { name, attrs } => {
                    if name == "rung" {
                        rungs.push(rung_from_attrs(attrs));
                    }
                }
            }
        }

        // Close anything left open at the last observed timestamp.
        for (_, stack) in stacks {
            for open in stack.into_iter().rev() {
                let node = node_mut(&mut forest, &open.path);
                node.count += 1;
                node.total_us += last_us.saturating_sub(open.opened_us);
            }
        }

        forest.sort_by(|a, b| a.name.cmp(&b.name));
        let mut counters: Vec<CounterTotal> = counters
            .into_iter()
            .map(|(name, total)| CounterTotal {
                name: name.to_string(),
                total,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        rungs.sort_by(|a, b| {
            (a.n_rops, a.n_legs, a.n_vsteps, &a.outcome)
                .cmp(&(b.n_rops, b.n_legs, b.n_vsteps, &b.outcome))
        });

        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            n_events: ordered.len() as u64,
            phases: forest.into_iter().map(Node::into_phase).collect(),
            counters,
            rungs,
        }
    }

    /// Builds a report from JSONL trace text (one [`Event`] per line).
    pub fn from_jsonl(text: &str) -> Result<RunReport, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line)
                .map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
            events.push(event);
        }
        Ok(RunReport::from_events(&events))
    }

    /// Looks up a phase node by path from the roots, e.g. `["synth", "solve"]`.
    pub fn phase(&self, path: &[&str]) -> Option<&PhaseNode> {
        let (&first, rest) = path.split_first()?;
        let mut node = self.phases.iter().find(|n| n.name == first)?;
        for &name in rest {
            node = node.children.iter().find(|n| n.name == name)?;
        }
        Some(node)
    }

    /// Total of a named counter, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }
}

fn rung_from_attrs(attrs: &[(String, crate::event::AttrValue)]) -> RungSummary {
    let get_u64 = |k: &str| attr(attrs, k).and_then(|v| v.as_u64()).unwrap_or(0);
    let get_str = |k: &str| {
        attr(attrs, k)
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string()
    };
    RungSummary {
        n_rops: get_u64("n_rops"),
        n_legs: get_u64("n_legs"),
        n_vsteps: get_u64("n_vsteps"),
        outcome: get_str("outcome"),
        worker: get_str("worker"),
        conflicts: get_u64("conflicts"),
        vars: get_u64("vars"),
        clauses: get_u64("clauses"),
        time_us: get_u64("time_us"),
        certified: attr(attrs, "certified")
            .and_then(|v| v.as_bool())
            .unwrap_or(false),
    }
}
