//! The wire-level event model.
//!
//! Every observable occurrence in a run — a phase starting, a counter
//! incrementing, a rung finishing — is an [`Event`]. Events are plain,
//! non-generic data so the vendored `serde` derive can handle them, and the
//! JSONL rendering round-trips exactly: a trace file can be parsed back into
//! the same `Vec<Event>` that produced it.

use serde::{Deserialize, Serialize};

/// Schema version stamped into trace files via [`crate::Telemetry::meta_event`].
///
/// Bump when the shape of [`Event`] or [`EventKind`] changes incompatibly.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// A single telemetry record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number (total order across threads). Sinks may write
    /// events out of order; consumers sort by `seq` to reconstruct the run.
    pub seq: u64,
    /// Microseconds since the owning [`crate::Telemetry`] handle was created.
    pub t_us: u64,
    /// Label of the thread that emitted the event (thread name if set,
    /// otherwise the formatted `ThreadId`).
    pub thread: String,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span (timed phase) opened. Spans nest per-thread: the aggregator
    /// derives parentage from open/close order on the emitting thread.
    SpanOpen {
        /// Process-unique span id (never 0).
        id: u64,
        /// Phase name, e.g. `"encode"` or `"solve"`.
        name: String,
        /// Attributes attached at open time.
        attrs: Vec<(String, AttrValue)>,
    },
    /// A span closed. Unmatched closes are ignored by the aggregator;
    /// spans still open at end of trace are closed at the last timestamp.
    SpanClose {
        /// Id from the matching [`EventKind::SpanOpen`].
        id: u64,
    },
    /// A monotonic counter incremented by `delta`.
    Counter {
        /// Counter name, e.g. `"solver.conflicts"`.
        name: String,
        /// Amount added to the counter.
        delta: u64,
    },
    /// An instantaneous event with attributes, e.g. a rung outcome.
    Point {
        /// Event name, e.g. `"rung"` or `"encoder.cnf"`.
        name: String,
        /// Structured payload.
        attrs: Vec<(String, AttrValue)>,
    },
}

impl EventKind {
    /// The name carried by the event, if its kind has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            EventKind::SpanOpen { name, .. }
            | EventKind::Counter { name, .. }
            | EventKind::Point { name, .. } => Some(name),
            EventKind::SpanClose { .. } => None,
        }
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// Returns the value as `u64` if it is an integer attribute.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(x) => Some(*x),
            AttrValue::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `bool` if it is a boolean attribute.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a float attribute.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::F64(x) => Some(*x),
            _ => None,
        }
    }
}

impl From<u64> for AttrValue {
    fn from(x: u64) -> Self {
        AttrValue::U64(x)
    }
}

impl From<u32> for AttrValue {
    fn from(x: u32) -> Self {
        AttrValue::U64(u64::from(x))
    }
}

impl From<usize> for AttrValue {
    fn from(x: usize) -> Self {
        AttrValue::U64(x as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(x: i64) -> Self {
        AttrValue::I64(x)
    }
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::F64(x)
    }
}

impl From<bool> for AttrValue {
    fn from(x: bool) -> Self {
        AttrValue::Bool(x)
    }
}

impl From<&str> for AttrValue {
    fn from(x: &str) -> Self {
        AttrValue::Str(x.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(x: String) -> Self {
        AttrValue::Str(x)
    }
}

/// Builds one attribute pair; shorthand for event construction sites.
///
/// ```
/// use mm_telemetry::kv;
/// let attrs = vec![kv("n_rops", 3u64), kv("outcome", "sat")];
/// ```
pub fn kv(key: &str, value: impl Into<AttrValue>) -> (String, AttrValue) {
    (key.to_string(), value.into())
}

/// Looks up an attribute by key in an attribute list.
pub fn attr<'a>(attrs: &'a [(String, AttrValue)], key: &str) -> Option<&'a AttrValue> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
