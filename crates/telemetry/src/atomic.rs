//! Crash-safe artifact writes shared by every layer that persists files.
//!
//! Every artifact the workspace emits — stats JSON, campaign reports, DRAT
//! proofs, corpus cases, `BENCH_*.json`, cache entries, JSONL traces — goes
//! through one of two primitives so a crash (or `kill -9`) can never leave
//! a torn file at a consumer-visible path:
//!
//! * [`atomic_write`] — one-shot: write the full payload to a hidden
//!   sibling temp file, `fsync`, then `rename` onto the destination.
//!   Rename is atomic on POSIX filesystems, so readers observe either the
//!   old content or the complete new content, never a prefix.
//! * [`AtomicFile`] — streaming: a [`Write`] implementation that writes to
//!   the temp sibling and *commits* (flush + `fsync` + rename) on the
//!   first explicit [`flush`](Write::flush) and again on drop. Before the
//!   first commit the destination path does not exist; after it, appended
//!   data keeps flowing to the same (now renamed) inode. A process killed
//!   before the first commit leaves only a hidden `.tmp-` file behind —
//!   startup recovery scans delete those.
//!
//! Temp names embed the process id and a monotone nonce, so concurrent
//! writers targeting the same destination never collide on the temp path;
//! the last rename wins, which is the usual POSIX overwrite semantics.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide temp-name nonce (two [`AtomicFile`]s for one destination
/// must not share a temp path).
static NONCE: AtomicU64 = AtomicU64::new(0);

/// The hidden temp sibling used while writing `path`.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    path.with_file_name(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Whether a directory-entry name is one of our hidden in-flight temp
/// files. Recovery scans use this to sweep torn writes left by a crash.
pub fn is_temp_artifact(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp-")
}

/// Atomically replaces `path` with `bytes`: temp sibling + `fsync` +
/// `rename`. Parent directories are created as needed.
///
/// # Errors
///
/// Propagates any I/O error; on failure the temp file is removed and the
/// destination is untouched.
pub fn atomic_write(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes.as_ref())?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// A streaming writer whose destination path only ever holds committed
/// data: bytes accumulate in a buffered temp sibling, and
/// [`commit`](Self::commit) (called by [`flush`](Write::flush) and drop)
/// flushes, `fsync`s and renames the temp file onto the destination. See
/// the module docs for the crash-safety contract.
pub struct AtomicFile {
    inner: Option<BufWriter<File>>,
    tmp: PathBuf,
    dest: PathBuf,
    promoted: bool,
}

impl AtomicFile {
    /// Opens a streaming atomic writer targeting `dest`.
    ///
    /// # Errors
    ///
    /// Propagates temp-file creation failures.
    pub fn create(dest: impl AsRef<Path>) -> io::Result<Self> {
        let dest = dest.as_ref().to_path_buf();
        if let Some(parent) = dest.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = temp_sibling(&dest);
        let file = File::create(&tmp)?;
        Ok(Self {
            inner: Some(BufWriter::new(file)),
            tmp,
            dest,
            promoted: false,
        })
    }

    /// Flushes buffered bytes, `fsync`s, and (on the first call) renames
    /// the temp file onto the destination. Later data written after a
    /// commit lands in the same inode, now at the destination path.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync/rename failures; the writer stays usable.
    pub fn commit(&mut self) -> io::Result<()> {
        let Some(inner) = self.inner.as_mut() else {
            return Ok(());
        };
        inner.flush()?;
        inner.get_ref().sync_all()?;
        if !self.promoted {
            fs::rename(&self.tmp, &self.dest)?;
            self.promoted = true;
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.inner.as_mut() {
            Some(inner) => inner.write(buf),
            None => Err(io::Error::other("atomic file already closed")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.commit()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        let _ = self.commit();
        self.inner = None;
        if !self.promoted {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm_atomic_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = temp_dir("write");
        let path = dir.join("a.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second, longer payload").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second, longer payload");
        // No temp droppings.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_creates_parents() {
        let dir = temp_dir("parents");
        let path = dir.join("sub/deeper/out.txt");
        atomic_write(&path, "x").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_file_promotes_on_flush_then_keeps_streaming() {
        let dir = temp_dir("stream");
        let path = dir.join("trace.jsonl");
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(b"line 1\n").unwrap();
        // Not yet committed: destination absent, temp sibling hidden.
        assert!(!path.exists());
        f.flush().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "line 1\n");
        // Post-commit writes land in the same file.
        f.write_all(b"line 2\n").unwrap();
        drop(f);
        assert_eq!(fs::read_to_string(&path).unwrap(), "line 1\nline 2\n");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_commits_buffered_data() {
        let dir = temp_dir("drop");
        let path = dir.join("never.json");
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"partial").unwrap();
            // Dropped without an explicit flush: commit runs, so the data
            // still lands atomically.
        }
        assert_eq!(fs::read_to_string(&path).unwrap(), "partial");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_names_are_recognizable() {
        assert!(is_temp_artifact(".entry.json.tmp-123-0"));
        assert!(!is_temp_artifact("entry.json"));
        assert!(!is_temp_artifact(".hidden"));
    }
}
