//! Live metrics: a lock-free registry of counters, gauges, and
//! fixed-bucket histograms with a Prometheus exposition-format renderer.
//!
//! # Design
//!
//! The event pipeline in this crate ([`crate::Telemetry`]) answers "what
//! happened, in order" — it is a *trace*. This module answers "where are
//! we now" — live totals an operator can scrape while a long UNSAT ladder
//! descends. The two are complementary: traces are complete and post-hoc,
//! metrics are aggregated and live.
//!
//! Updates must be cheap enough for the service's hot paths (the cache
//! hit path, the supervisor admission path), so a registered handle is an
//! `Arc` around plain atomics: `inc`/`add`/`set`/`observe` are wait-free
//! and never touch the registry lock. The registry's `RwLock` guards only
//! *registration* (cold: once per metric family/label set) and
//! *rendering* (a scrape). Readers therefore never tear a single metric —
//! each value is one atomic load — and counters observed across two
//! scrapes are monotonically non-decreasing.
//!
//! # Naming conventions
//!
//! Prometheus exposition rules, enforced by the renderer's callers and
//! linted in CI (`scripts/lint_metrics.py`):
//!
//! * families are `snake_case`, prefixed `mmsynth_` in the service;
//! * counters end in `_total`;
//! * histograms carry their unit as a suffix (`_us`) and use log-scaled
//!   buckets ([`latency_buckets`]);
//! * every family gets `# HELP` and `# TYPE` lines exactly once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use serde::Value;

/// A monotonic counter handle. Clones share the same cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (updates go nowhere
    /// visible). Lets instrumented types default to zero-cost handles and
    /// swap in registered ones when a registry is wired up.
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable, signed instantaneous value.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Self(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of one histogram series: fixed upper bounds plus
/// per-bucket, sum, and count atomics.
#[derive(Debug)]
pub struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// One cell per bound, plus the `+Inf` cell last.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A histogram handle over fixed buckets. `observe` is wait-free: one
/// linear scan of ≤ a dozen bounds plus three relaxed atomic adds.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached(bounds: &[u64]) -> Self {
        Self(Arc::new(HistogramCore::new(bounds)))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// `+Inf` bucket (`None` bound). Cumulative counts are assembled from
    /// one relaxed load per cell; a scrape racing `observe` may see a
    /// bucket updated before `count`, which keeps every reported number a
    /// true (if slightly stale) total.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let core = &self.0;
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(core.buckets.len());
        for (i, cell) in core.buckets.iter().enumerate() {
            cumulative += cell.load(Ordering::Relaxed);
            out.push((core.bounds.get(i).copied(), cumulative));
        }
        out
    }
}

/// Log-scaled latency buckets in microseconds: 100µs · 4ⁿ for n = 0..=9,
/// spanning 100µs (a warm cache hit) to ~26s (a deep UNSAT ladder).
pub fn latency_buckets() -> Vec<u64> {
    (0..10).map(|n| 100u64 << (2 * n)).collect()
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// One registered series within a family.
#[derive(Debug, Clone)]
enum Child {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named family: help text, kind, and one child per label set.
#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label block (`{k="v",…}`, empty for
    /// unlabeled), so iteration renders deterministically sorted.
    children: BTreeMap<String, Child>,
}

/// Renders a label set as the Prometheus label block. Empty for no
/// labels. Label values are escaped per the exposition format.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Splices an extra label (`le` for histogram buckets) into a rendered
/// label block.
fn with_extra_label(block: &str, key: &str, value: &str) -> String {
    if block.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &block[..block.len() - 1])
    }
}

/// A process-wide registry of metric families.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` labeled
/// variants) is idempotent: asking for an existing `(family, labels)`
/// pair returns a handle to the same cell, so independent subsystems can
/// share totals without coordination. Registering the same family name
/// under a different kind panics — that is a programming error, not a
/// runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry. Library code that has no registry
    /// wired through should prefer an explicit [`Arc<MetricsRegistry>`]
    /// (tests isolate better); the global exists for binaries that want
    /// exactly one.
    pub fn global() -> &'static Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, kind: MetricKind) -> Child {
        let block = label_block(labels);
        let mut families = self.families.write().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .children
            .entry(block)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Child::Counter(Counter::detached()),
                MetricKind::Gauge => Child::Gauge(Gauge::detached()),
                MetricKind::Histogram => Child::Histogram(Histogram::detached(&latency_buckets())),
            })
            .clone()
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled counter series.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, MetricKind::Counter) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.register(name, labels, help, MetricKind::Gauge) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) an unlabeled histogram over
    /// [`latency_buckets`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled histogram series over
    /// [`latency_buckets`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.register(name, labels, help, MetricKind::Histogram) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): families sorted by name, series sorted by label
    /// block, `# HELP`/`# TYPE` once per family.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.read().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (block, child) in &family.children {
                match child {
                    Child::Counter(c) => {
                        out.push_str(&format!("{name}{block} {}\n", c.get()));
                    }
                    Child::Gauge(g) => {
                        out.push_str(&format!("{name}{block} {}\n", g.get()));
                    }
                    Child::Histogram(h) => {
                        for (bound, cumulative) in h.cumulative_buckets() {
                            let le = bound
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "+Inf".to_string());
                            let labels = with_extra_label(block, "le", &le);
                            out.push_str(&format!("{name}_bucket{labels} {cumulative}\n"));
                        }
                        out.push_str(&format!("{name}_sum{block} {}\n", h.sum()));
                        out.push_str(&format!("{name}_count{block} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// Structured snapshot for the wire protocol: one object per family
    /// with `name`, `type`, `help`, and a `series` array.
    pub fn to_value(&self) -> Value {
        let families = self.families.read().expect("metrics registry poisoned");
        let rendered: Vec<Value> = families
            .iter()
            .map(|(name, family)| {
                let series: Vec<Value> = family
                    .children
                    .iter()
                    .map(|(block, child)| {
                        let mut fields = vec![("labels".to_string(), Value::Str(block.clone()))];
                        match child {
                            Child::Counter(c) => {
                                fields.push(("value".into(), Value::UInt(c.get())));
                            }
                            Child::Gauge(g) => {
                                let v = g.get();
                                fields.push((
                                    "value".into(),
                                    if v >= 0 {
                                        Value::UInt(v as u64)
                                    } else {
                                        Value::Int(v)
                                    },
                                ));
                            }
                            Child::Histogram(h) => {
                                let buckets: Vec<Value> = h
                                    .cumulative_buckets()
                                    .into_iter()
                                    .map(|(bound, cumulative)| {
                                        Value::Object(vec![
                                            (
                                                "le".into(),
                                                bound
                                                    .map(|b| Value::Str(b.to_string()))
                                                    .unwrap_or_else(|| Value::Str("+Inf".into())),
                                            ),
                                            ("count".into(), Value::UInt(cumulative)),
                                        ])
                                    })
                                    .collect();
                                fields.push(("count".into(), Value::UInt(h.count())));
                                fields.push(("sum".into(), Value::UInt(h.sum())));
                                fields.push(("buckets".into(), Value::Array(buckets)));
                            }
                        }
                        Value::Object(fields)
                    })
                    .collect();
                Value::Object(vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("type".into(), Value::Str(family.kind.as_str().into())),
                    ("help".into(), Value::Str(family.help.clone())),
                    ("series".into(), Value::Array(series)),
                ])
            })
            .collect();
        Value::Object(vec![("families".into(), Value::Array(rendered))])
    }

    /// Every counter series as `(family, rendered label block, total)`,
    /// the facet the service persists across restarts (`*_total_lifetime`
    /// gauges).
    pub fn counter_totals(&self) -> Vec<(String, String, u64)> {
        let families = self.families.read().expect("metrics registry poisoned");
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (block, child) in &family.children {
                if let Child::Counter(c) = child {
                    out.push((name.clone(), block.clone(), c.get()));
                }
            }
        }
        out
    }

    /// Registers a gauge series under `name` with a pre-rendered label
    /// block (used to rehydrate persisted counter totals whose label sets
    /// only exist as rendered strings).
    pub fn gauge_with_block(&self, name: &str, block: &str, help: &str) -> Gauge {
        let mut families = self.families.write().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Gauge,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == MetricKind::Gauge,
            "metric family {name:?} is not a gauge"
        );
        match family
            .children
            .entry(block.to_string())
            .or_insert_with(|| Child::Gauge(Gauge::detached()))
        {
            Child::Gauge(g) => g.clone(),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Current gauge value for `(name, block)` if such a series exists.
    pub fn gauge_value(&self, name: &str, block: &str) -> Option<i64> {
        let families = self.families.read().expect("metrics registry poisoned");
        match families.get(name)?.children.get(block)? {
            Child::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("mm_test_total", "A test counter.");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(
            registry.counter("mm_test_total", "A test counter.").get(),
            5
        );
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE mm_test_total counter"));
        assert!(text.contains("mm_test_total 5\n"));
    }

    #[test]
    fn labeled_series_are_independent_and_sorted() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("mm_jobs_total", &[("op", "b")], "Jobs.")
            .add(2);
        registry
            .counter_with("mm_jobs_total", &[("op", "a")], "Jobs.")
            .add(1);
        let text = registry.render_prometheus();
        let a = text.find(r#"mm_jobs_total{op="a"} 1"#).expect("series a");
        let b = text.find(r#"mm_jobs_total{op="b"} 2"#).expect("series b");
        assert!(a < b, "series render sorted by label block");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = Histogram::detached(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5_055);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(Some(10), 1), (Some(100), 2), (None, 3)]
        );
    }

    #[test]
    fn latency_buckets_are_log_scaled() {
        let buckets = latency_buckets();
        assert_eq!(buckets[0], 100);
        assert!(buckets.windows(2).all(|w| w[1] == w[0] * 4));
        assert_eq!(buckets.len(), 10);
    }

    #[test]
    fn gauges_go_negative() {
        let g = MetricsRegistry::new().gauge("mm_depth", "Depth.");
        g.set(3);
        g.sub(5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("mm_conflict", "x");
        let _ = registry.gauge("mm_conflict", "x");
    }

    #[test]
    fn counter_totals_round_trip_as_lifetime_gauges() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("mm_jobs_total", &[("op", "minimize")], "Jobs.")
            .add(7);
        let totals = registry.counter_totals();
        assert_eq!(
            totals,
            vec![(
                "mm_jobs_total".to_string(),
                r#"{op="minimize"}"#.to_string(),
                7
            )]
        );
        let fresh = MetricsRegistry::new();
        for (name, block, value) in totals {
            fresh
                .gauge_with_block(&format!("{name}_lifetime"), &block, "Lifetime total.")
                .set(value as i64);
        }
        assert_eq!(
            fresh.gauge_value("mm_jobs_total_lifetime", r#"{op="minimize"}"#),
            Some(7)
        );
    }
}
