//! Integration tests for the live-metrics registry: concurrent-update
//! correctness (totals match per-thread tallies, a racing render never
//! tears) and a golden test pinning the Prometheus exposition format.

use std::sync::Arc;

use mm_telemetry::metrics::MetricsRegistry;

/// Parses one rendered exposition document into `(series line → value)`,
/// panicking on any line that is neither a comment nor a well-formed
/// sample. This is the "never tears" oracle: a torn render would produce
/// an unparsable line or a non-numeric value.
fn parse_samples(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            let mut parts = line.splitn(4, ' ');
            assert_eq!(parts.next(), Some("#"));
            let kw = parts.next().expect("comment keyword");
            assert!(
                kw == "HELP" || kw == "TYPE",
                "unknown comment keyword in {line:?}"
            );
            assert!(parts.next().is_some(), "comment names a family: {line:?}");
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value separator: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("non-numeric sample value in {line:?}: {e}"));
        out.push((series.to_string(), value));
    }
    out
}

#[test]
fn eight_writers_one_renderer_totals_match_and_never_tear() {
    const WRITERS: usize = 8;
    const PER_THREAD: u64 = 20_000;

    let registry = Arc::new(MetricsRegistry::new());
    let shared = registry.counter("mm_hammer_shared_total", "Shared across writers.");
    let depth = registry.gauge("mm_hammer_depth", "Updated by every writer.");
    let latency = registry.histogram("mm_hammer_latency_us", "One observation per inc.");

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let registry = registry.clone();
            let shared = shared.clone();
            let depth = depth.clone();
            let latency = latency.clone();
            scope.spawn(move || {
                let mine = registry.counter_with(
                    "mm_hammer_per_thread_total",
                    &[("thread", &format!("t{t}"))],
                    "Per-writer tally.",
                );
                for i in 0..PER_THREAD {
                    shared.inc();
                    mine.inc();
                    depth.add(1);
                    depth.sub(1);
                    // Spread observations across several buckets.
                    latency.observe((i % 7) * 5_000);
                }
            });
        }
        // The reader renders while the writers hammer: every intermediate
        // document must parse cleanly and counters must be monotonic
        // across renders.
        let registry = registry.clone();
        scope.spawn(move || {
            let mut last_shared = 0.0f64;
            for _ in 0..200 {
                let samples = parse_samples(&registry.render_prometheus());
                let shared_now = samples
                    .iter()
                    .find(|(series, _)| series == "mm_hammer_shared_total")
                    .map(|(_, v)| *v)
                    .expect("shared counter always rendered");
                assert!(
                    shared_now >= last_shared,
                    "counter moved backwards: {last_shared} -> {shared_now}"
                );
                last_shared = shared_now;
                std::thread::yield_now();
            }
        });
    });

    assert_eq!(shared.get(), WRITERS as u64 * PER_THREAD);
    assert_eq!(depth.get(), 0, "every add is paired with a sub");
    assert_eq!(latency.count(), WRITERS as u64 * PER_THREAD);
    let samples = parse_samples(&registry.render_prometheus());
    for t in 0..WRITERS {
        let series = format!("mm_hammer_per_thread_total{{thread=\"t{t}\"}}");
        let value = samples
            .iter()
            .find(|(s, _)| *s == series)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing per-thread series {series}"));
        assert_eq!(value, PER_THREAD as f64, "thread t{t} tally");
    }
    // The +Inf bucket of the histogram equals its count.
    let inf = samples
        .iter()
        .find(|(s, _)| s == "mm_hammer_latency_us_bucket{le=\"+Inf\"}")
        .map(|(_, v)| *v)
        .expect("+Inf bucket rendered");
    assert_eq!(inf, (WRITERS as u64 * PER_THREAD) as f64);
}

#[test]
fn prometheus_rendering_matches_golden() {
    let registry = MetricsRegistry::new();
    registry
        .counter_with(
            "mmsynth_jobs_total",
            &[("op", "minimize"), ("status", "ok")],
            "Jobs resolved, by op and final status.",
        )
        .add(3);
    registry
        .counter_with(
            "mmsynth_jobs_total",
            &[("op", "minimize"), ("status", "degraded")],
            "Jobs resolved, by op and final status.",
        )
        .inc();
    registry
        .gauge("mmsynth_queue_depth", "Jobs waiting for a worker.")
        .set(2);
    let h = registry.histogram(
        "mmsynth_job_duration_us",
        "Per-attempt job latency in microseconds.",
    );
    h.observe(90);
    h.observe(250_000);

    let expected = "\
# HELP mmsynth_job_duration_us Per-attempt job latency in microseconds.
# TYPE mmsynth_job_duration_us histogram
mmsynth_job_duration_us_bucket{le=\"100\"} 1
mmsynth_job_duration_us_bucket{le=\"400\"} 1
mmsynth_job_duration_us_bucket{le=\"1600\"} 1
mmsynth_job_duration_us_bucket{le=\"6400\"} 1
mmsynth_job_duration_us_bucket{le=\"25600\"} 1
mmsynth_job_duration_us_bucket{le=\"102400\"} 1
mmsynth_job_duration_us_bucket{le=\"409600\"} 2
mmsynth_job_duration_us_bucket{le=\"1638400\"} 2
mmsynth_job_duration_us_bucket{le=\"6553600\"} 2
mmsynth_job_duration_us_bucket{le=\"26214400\"} 2
mmsynth_job_duration_us_bucket{le=\"+Inf\"} 2
mmsynth_job_duration_us_sum 250090
mmsynth_job_duration_us_count 2
# HELP mmsynth_jobs_total Jobs resolved, by op and final status.
# TYPE mmsynth_jobs_total counter
mmsynth_jobs_total{op=\"minimize\",status=\"degraded\"} 1
mmsynth_jobs_total{op=\"minimize\",status=\"ok\"} 3
# HELP mmsynth_queue_depth Jobs waiting for a worker.
# TYPE mmsynth_queue_depth gauge
mmsynth_queue_depth 2
";
    assert_eq!(registry.render_prometheus(), expected);
}

#[test]
fn label_values_are_escaped() {
    let registry = MetricsRegistry::new();
    registry
        .counter_with(
            "mm_escape_total",
            &[("reason", "say \"no\" to back\\slashes")],
            "Escaping.",
        )
        .inc();
    let text = registry.render_prometheus();
    assert!(
        text.contains(r#"mm_escape_total{reason="say \"no\" to back\\slashes"} 1"#),
        "rendered: {text}"
    );
}
