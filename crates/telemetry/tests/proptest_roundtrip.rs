//! Property-based checks of the telemetry wire format and aggregator: any
//! sequence of span open/close, counter, and point operations must serialize
//! to JSONL that parses back to the identical event stream, and the rebuilt
//! [`RunReport`] must be consistent (same report from file and memory, counter
//! totals exact, span counts exact, child time bounded by parent time).

use std::io::Write;
use std::sync::{Arc, Mutex};

use mm_telemetry::{
    kv, Event, JsonlSink, MemorySink, MultiSink, PhaseNode, RunReport, Span, Telemetry,
    TelemetrySink, REPORT_SCHEMA_VERSION,
};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["synth", "encode", "solve", "decode", "certify"];

/// Writer handing its bytes back to the test thread.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn child_times_bounded(node: &PhaseNode) -> bool {
    let child_sum: u64 = node.children.iter().map(|c| c.total_us).sum();
    child_sum <= node.total_us && node.children.iter().all(child_times_bounded)
}

fn count_spans(nodes: &[PhaseNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.count + count_spans(&n.children))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_op_sequence_roundtrips_and_aggregates_consistently(
        ops in prop::collection::vec((0u32..4, 0u64..1000, 0usize..NAMES.len()), 0..80)
    ) {
        let memory = Arc::new(MemorySink::new());
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let jsonl = Arc::new(JsonlSink::with_writer(Box::new(SharedBuf(buffer.clone()))));
        let telemetry = Telemetry::new(Arc::new(MultiSink::new(vec![
            memory.clone() as Arc<dyn TelemetrySink>,
            jsonl as Arc<dyn TelemetrySink>,
        ])));

        let mut open: Vec<Span> = Vec::new();
        let mut expected_opens = 0u64;
        let mut expected_counters: std::collections::BTreeMap<&str, u64> =
            std::collections::BTreeMap::new();

        for &(op, delta, name_idx) in &ops {
            let name = NAMES[name_idx];
            match op {
                0 => {
                    open.push(telemetry.span(name));
                    expected_opens += 1;
                }
                1 => {
                    open.pop(); // drop closes the span
                }
                2 => {
                    telemetry.counter(name, delta);
                    if delta > 0 {
                        *expected_counters.entry(name).or_default() += delta;
                    }
                }
                _ => {
                    telemetry.point("tick", vec![kv("i", delta)]);
                }
            }
        }
        drop(open);
        telemetry.flush();

        // 1. The JSONL stream parses back to the identical event multiset.
        let text = String::from_utf8(buffer.lock().expect("buffer").clone()).expect("utf8");
        let mut parsed: Vec<Event> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).expect("every trace line parses"))
            .collect();
        parsed.sort_by_key(|e| e.seq);
        let mut recorded = memory.snapshot();
        recorded.sort_by_key(|e| e.seq);
        prop_assert_eq!(&parsed, &recorded);

        // 2. File-derived and memory-derived reports agree exactly.
        let from_file = RunReport::from_jsonl(&text).expect("trace parses");
        let from_memory = RunReport::from_events(&recorded);
        prop_assert_eq!(&from_file, &from_memory);
        prop_assert_eq!(from_file.schema_version, REPORT_SCHEMA_VERSION);

        // 3. Counter totals are exact.
        for (name, total) in &expected_counters {
            prop_assert_eq!(from_memory.counter(name), *total);
        }
        prop_assert_eq!(from_memory.counters.len(), expected_counters.len());

        // 4. Every opened span lands in the tree exactly once (drop or
        //    end-of-trace closes it), and child time never exceeds parent time.
        prop_assert_eq!(count_spans(&from_memory.phases), expected_opens);
        prop_assert!(from_memory.phases.iter().all(child_times_bounded));
    }
}
