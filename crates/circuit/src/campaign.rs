//! Fault-injection campaigns: execute a schedule against faulty arrays and
//! attribute every divergence to cells.
//!
//! A campaign crosses a compiled [`Schedule`] with a set of
//! [`FaultPlan`]s, running every input assignment across `trials` seeded
//! arrays per plan. Each execution is compared in lockstep against a
//! healthy reference run (restricted to the cells the schedule actually
//! uses), yielding:
//!
//! * the **first-divergence cycle** — the earliest schedule cycle at which
//!   any used cell's state departs from the healthy run;
//! * **per-cell attribution** — how often each cell was among the first
//!   divergent cells, classified as [`FaultClass::Stuck`],
//!   [`FaultClass::Transient`] or [`FaultClass::Variability`];
//! * **error rates per fault class** over all executions.
//!
//! The resulting [`CampaignReport`] serializes to JSON, and its implicated
//! cells feed the self-repairing synthesis loop in `mm-synth`: diagnose →
//! avoid → resynthesize.
//!
//! # Example
//!
//! ```
//! use mm_circuit::campaign::{run_campaign, CampaignConfig};
//! use mm_circuit::{MmCircuit, ROp, Schedule, Signal, VLeg, VOp};
//! use mm_boolfn::Literal;
//! use mm_device::{DeviceState, FaultPlan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = MmCircuit::builder(2)
//!     .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
//!     .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
//!     .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
//!     .output(Signal::ROp(0))
//!     .build()?;
//! let schedule = Schedule::compile(&circuit)?;
//! let plans = vec![
//!     FaultPlan::named("control"),
//!     FaultPlan::named("stuck-out").with_stuck(2, DeviceState::Lrs),
//! ];
//! let report = run_campaign(&schedule, &plans, &CampaignConfig::default())?;
//! assert_eq!(report.plans[0].failures, 0);
//! assert!(report.plans[1].failures > 0);
//! assert_eq!(report.plans[1].implicated_cells(), vec![2]);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use mm_device::{ElectricalParams, FaultPlan, LineArray};
use mm_telemetry::{kv, Telemetry};

use crate::{CircuitError, Schedule};

/// Classification of a diagnosed divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// A permanently stuck cell from the plan was among the first divergent
    /// cells.
    Stuck,
    /// The first divergence coincides with an injected transient flip
    /// (same cell, same cycle).
    Transient,
    /// Neither of the above: D2D/C2C variation, or an analog misread with
    /// no logical state divergence at all.
    Variability,
}

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Seeded trials per plan.
    pub trials: u32,
    /// Base RNG seed; trial `t` reseeds the array with
    /// [`mm_device::seeds::trial_seed`] — `seed + (t << 16)` (wrapping), the
    /// same derivation the Monte-Carlo module uses — so campaign runs are
    /// reproducible from the report.
    pub seed: u64,
    /// Electrical parameters of the arrays (plans may override the
    /// variability corner).
    pub params: ElectricalParams,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 8,
            seed: 0xfa11,
            params: ElectricalParams::bfo(),
        }
    }
}

/// Failure attribution for one cell under one plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellAttribution {
    /// The cell index.
    pub cell: usize,
    /// The fault class the cell's divergences belong to.
    pub class: FaultClass,
    /// Number of executions in which this cell was among the *first*
    /// divergent cells.
    pub divergences: u32,
    /// The earliest cycle at which this cell was seen diverging.
    pub first_cycle: usize,
}

/// Campaign results for one fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The plan that was executed, verbatim.
    pub plan: FaultPlan,
    /// Total executions: `trials × 2^n` input evaluations.
    pub executions: u32,
    /// Executions whose outputs differed from the healthy reference.
    pub failures: u32,
    /// `failures / executions`.
    pub error_rate: f64,
    /// Executions whose internal state diverged but whose outputs were
    /// still correct (the fault was logically masked).
    pub masked_divergences: u32,
    /// Earliest divergence cycle across all executions, if any diverged.
    pub first_divergence_cycle: Option<usize>,
    /// Failing executions whose first divergence implicated a stuck cell.
    pub stuck_failures: u32,
    /// Failing executions whose first divergence coincided with an
    /// injected transient flip.
    pub transient_failures: u32,
    /// Remaining failures (variation or analog misreads).
    pub variability_failures: u32,
    /// Per-cell attribution, most-implicated cells first.
    pub attribution: Vec<CellAttribution>,
}

impl PlanReport {
    /// The implicated cells, most frequently divergent first — the input
    /// to the repair loop's avoidance constraints.
    pub fn implicated_cells(&self) -> Vec<usize> {
        self.attribution.iter().map(|a| a.cell).collect()
    }

    /// The error rate contributed by one fault class.
    pub fn class_error_rate(&self, class: FaultClass) -> f64 {
        let failures = match class {
            FaultClass::Stuck => self.stuck_failures,
            FaultClass::Transient => self.transient_failures,
            FaultClass::Variability => self.variability_failures,
        };
        f64::from(failures) / f64::from(self.executions.max(1))
    }
}

/// The structured result of a campaign: one [`PlanReport`] per plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Cell count of the schedule under test.
    pub n_cells: usize,
    /// Input count of the schedule under test.
    pub n_inputs: u8,
    /// Trials per plan.
    pub trials: u32,
    /// Base seed the trial seeds were derived from.
    pub seed: u64,
    /// One report per plan, in input order.
    pub plans: Vec<PlanReport>,
}

impl CampaignReport {
    /// Whether any plan produced at least one failing execution.
    pub fn any_failures(&self) -> bool {
        self.plans.iter().any(|p| p.failures > 0)
    }

    /// Pretty-printed JSON export of the full report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign reports always serialize")
    }
}

/// Runs a fault-injection campaign: every plan × every trial seed × every
/// input assignment, compared in lockstep against a healthy reference run.
///
/// # Errors
///
/// Returns [`CircuitError::FaultPlanOutOfRange`] when a plan references a
/// cell the schedule's array does not have.
pub fn run_campaign(
    schedule: &Schedule,
    plans: &[FaultPlan],
    config: &CampaignConfig,
) -> Result<CampaignReport, CircuitError> {
    run_campaign_traced(schedule, plans, config, &Telemetry::disabled())
}

/// [`run_campaign`] with telemetry: the whole campaign runs inside a
/// `campaign` span, and every finished plan emits a `campaign.plan` point
/// (name, executions, failures, masked divergences). A disabled handle
/// makes this identical to the plain entry point.
///
/// # Errors
///
/// Returns [`CircuitError::FaultPlanOutOfRange`] when a plan references a
/// cell the schedule's array does not have.
pub fn run_campaign_traced(
    schedule: &Schedule,
    plans: &[FaultPlan],
    config: &CampaignConfig,
    telemetry: &Telemetry,
) -> Result<CampaignReport, CircuitError> {
    let n = schedule.n_cells();
    for plan in plans {
        if let Some(cell) = plan.max_cell().filter(|&c| c >= n) {
            return Err(CircuitError::FaultPlanOutOfRange {
                plan: plan.name.clone(),
                cell,
                n_cells: n,
            });
        }
    }
    let _campaign_span = telemetry.span_with(
        "campaign",
        vec![
            kv("n_plans", plans.len()),
            kv("trials", config.trials),
            kv("n_cells", n),
        ],
    );
    let n_assignments = 1u32 << schedule.n_inputs();
    let used = schedule.used_cells();

    // Healthy reference: expected outputs and per-cycle state snapshots for
    // every input assignment, computed once on an ideal array.
    let mut ideal = LineArray::ideal(n);
    let mut expected = Vec::with_capacity(n_assignments as usize);
    let mut reference: Vec<Vec<Vec<bool>>> = Vec::with_capacity(n_assignments as usize);
    for x in 0..n_assignments {
        let mut states = Vec::with_capacity(schedule.cycles().len());
        let out = schedule.execute_with(x, &mut ideal, |_, a| states.push(a.states()));
        expected.push(out);
        reference.push(states);
    }

    let mut plan_reports = Vec::with_capacity(plans.len());
    for plan in plans {
        let stuck = plan.stuck_cells();
        // One array per plan, reseeded per trial (stuck cells survive the
        // reseed and keep the healthy cells' draws aligned).
        let mut array = plan.build_array(n, config.params, config.seed);
        let mut failures = 0u32;
        let mut masked = 0u32;
        let mut class_failures = [0u32; 3]; // Stuck, Transient, Variability
        let mut first_divergence: Option<usize> = None;
        // cell -> (divergence count, earliest cycle)
        let mut per_cell: std::collections::BTreeMap<usize, (u32, usize)> =
            std::collections::BTreeMap::new();

        for t in 0..config.trials {
            array.reseed(mm_device::seeds::trial_seed(config.seed, t));
            for x in 0..n_assignments {
                let mut divergence: Option<(usize, Vec<usize>)> = None;
                let outputs = schedule.execute_with(x, &mut array, |i, a| {
                    for cell in plan.flips_at(i) {
                        a.flip_state(cell);
                    }
                    if divergence.is_none() {
                        let diff: Vec<usize> = used
                            .iter()
                            .copied()
                            .filter(|&c| a.state(c).to_bool() != reference[x as usize][i][c])
                            .collect();
                        if !diff.is_empty() {
                            divergence = Some((i, diff));
                        }
                    }
                });
                let failed = outputs != expected[x as usize];
                if let Some((cycle, cells)) = &divergence {
                    if first_divergence.is_none_or(|f| *cycle < f) {
                        first_divergence = Some(*cycle);
                    }
                    for &c in cells {
                        let entry = per_cell.entry(c).or_insert((0, *cycle));
                        entry.0 += 1;
                        entry.1 = entry.1.min(*cycle);
                    }
                    if !failed {
                        masked += 1;
                    }
                }
                if failed {
                    failures += 1;
                    let class = classify(divergence.as_ref(), &stuck, plan);
                    class_failures[class as usize] += 1;
                }
            }
        }

        let mut attribution: Vec<CellAttribution> = per_cell
            .into_iter()
            .map(|(cell, (divergences, first_cycle))| CellAttribution {
                cell,
                class: cell_class(cell, &stuck, plan),
                divergences,
                first_cycle,
            })
            .collect();
        attribution.sort_by(|a, b| b.divergences.cmp(&a.divergences).then(a.cell.cmp(&b.cell)));

        let executions = config.trials * n_assignments;
        telemetry.point(
            "campaign.plan",
            vec![
                kv("plan", plan.name.clone()),
                kv("executions", executions),
                kv("failures", failures),
                kv("masked", masked),
            ],
        );
        plan_reports.push(PlanReport {
            plan: plan.clone(),
            executions,
            failures,
            error_rate: f64::from(failures) / f64::from(executions.max(1)),
            masked_divergences: masked,
            first_divergence_cycle: first_divergence,
            stuck_failures: class_failures[FaultClass::Stuck as usize],
            transient_failures: class_failures[FaultClass::Transient as usize],
            variability_failures: class_failures[FaultClass::Variability as usize],
            attribution,
        });
    }

    Ok(CampaignReport {
        n_cells: n,
        n_inputs: schedule.n_inputs(),
        trials: config.trials,
        seed: config.seed,
        plans: plan_reports,
    })
}

/// Classifies one failing execution from its first divergence.
fn classify(
    divergence: Option<&(usize, Vec<usize>)>,
    stuck: &[usize],
    plan: &FaultPlan,
) -> FaultClass {
    match divergence {
        Some((cycle, cells)) => {
            if cells.iter().any(|c| stuck.binary_search(c).is_ok()) {
                FaultClass::Stuck
            } else if cells.iter().any(|c| {
                plan.transients
                    .iter()
                    .any(|t| t.cell == *c && t.cycle == *cycle)
            }) {
                FaultClass::Transient
            } else {
                FaultClass::Variability
            }
        }
        // Outputs wrong with no logical divergence: an analog misread.
        None => FaultClass::Variability,
    }
}

/// The static class of a cell under a plan (for attribution rows).
fn cell_class(cell: usize, stuck: &[usize], plan: &FaultPlan) -> FaultClass {
    if stuck.binary_search(&cell).is_ok() {
        FaultClass::Stuck
    } else if plan.transients.iter().any(|t| t.cell == cell) {
        FaultClass::Transient
    } else {
        FaultClass::Variability
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::Literal;
    use mm_device::{DeviceState, Variability};

    use super::*;
    use crate::{MmCircuit, ROp, Signal, VLeg, VOp};

    fn nor_schedule() -> Schedule {
        let circuit = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        Schedule::compile(&circuit).unwrap()
    }

    #[test]
    fn healthy_control_has_no_failures() {
        let schedule = nor_schedule();
        let report = run_campaign(
            &schedule,
            &[FaultPlan::named("control")],
            &CampaignConfig::default(),
        )
        .unwrap();
        let p = &report.plans[0];
        assert_eq!(p.failures, 0);
        assert_eq!(p.masked_divergences, 0);
        assert_eq!(p.first_divergence_cycle, None);
        assert!(p.attribution.is_empty());
        assert!(!report.any_failures());
        assert_eq!(p.executions, CampaignConfig::default().trials * 4);
    }

    #[test]
    fn stuck_output_is_detected_and_attributed() {
        let schedule = nor_schedule();
        let plan = FaultPlan::named("stuck-out").with_stuck(2, DeviceState::Lrs);
        let report = run_campaign(&schedule, &[plan], &CampaignConfig::default()).unwrap();
        let p = &report.plans[0];
        // NOR is 0 for 3 of 4 assignments; the stuck-LRS output reads 1.
        assert_eq!(p.failures, 3 * report.trials);
        assert_eq!(p.stuck_failures, p.failures);
        assert_eq!(p.transient_failures, 0);
        assert_eq!(p.implicated_cells(), vec![2]);
        assert_eq!(p.attribution[0].class, FaultClass::Stuck);
        // The output cell is pre-set to 1 but stuck cells match that until
        // the R-op tries to RESET it — or diverge at cycle 0 if their init
        // differs. Either way a first cycle exists.
        assert!(p.first_divergence_cycle.is_some());
        assert!((p.error_rate - 0.75).abs() < 1e-9);
        assert!((p.class_error_rate(FaultClass::Stuck) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn transient_flip_is_classified_as_transient() {
        let schedule = nor_schedule();
        // Cycles: 0 = V-op, 1 = R-op, 2 = read. Flip the output right after
        // the R-op computes it: every assignment reads the wrong value.
        let plan = FaultPlan::named("upset").with_transient(2, 1);
        let report = run_campaign(&schedule, &[plan], &CampaignConfig::default()).unwrap();
        let p = &report.plans[0];
        assert_eq!(p.failures, 4 * report.trials);
        assert_eq!(p.transient_failures, p.failures);
        assert_eq!(p.first_divergence_cycle, Some(1));
        assert_eq!(p.attribution[0].cell, 2);
        assert_eq!(p.attribution[0].class, FaultClass::Transient);
    }

    #[test]
    fn variability_failures_fall_in_the_variability_class() {
        let schedule = nor_schedule();
        let plan = FaultPlan::named("harsh").with_variability(Variability {
            d2d_sigma: 0.6,
            c2c_sigma: 0.2,
        });
        let config = CampaignConfig {
            trials: 64,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&schedule, &[plan], &config).unwrap();
        let p = &report.plans[0];
        assert!(p.failures > 0, "harsh corner must break some executions");
        assert_eq!(p.stuck_failures, 0);
        assert_eq!(p.transient_failures, 0);
        assert_eq!(p.variability_failures, p.failures);
    }

    #[test]
    fn out_of_range_plan_is_rejected() {
        let schedule = nor_schedule();
        let plan = FaultPlan::named("oob").with_stuck(9, DeviceState::Hrs);
        let err = run_campaign(&schedule, &[plan], &CampaignConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::FaultPlanOutOfRange {
                cell: 9,
                n_cells: 3,
                ..
            }
        ));
    }

    #[test]
    fn reports_are_deterministic_and_round_trip_json() {
        let schedule = nor_schedule();
        let plans = vec![
            FaultPlan::named("control"),
            FaultPlan::named("stuck").with_stuck(0, DeviceState::Lrs),
            FaultPlan::named("corner").with_variability(Variability::HIGH),
        ];
        let config = CampaignConfig::default();
        let a = run_campaign(&schedule, &plans, &config).unwrap();
        let b = run_campaign(&schedule, &plans, &config).unwrap();
        assert_eq!(a, b, "same config must reproduce the same report");

        let json = a.to_json();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
