use std::error::Error;
use std::fmt;

use mm_boolfn::Literal;
use mm_device::ROpKind;

/// Errors produced when constructing or validating a mixed-mode circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A literal references a variable outside `1..=n`.
    LiteralOutOfRange {
        /// The 1-based variable index.
        var: u8,
        /// The circuit's input count.
        n_inputs: u8,
    },
    /// A signal references a V-leg that does not exist.
    UnknownLeg {
        /// The referenced leg index.
        leg: usize,
        /// The number of legs in the circuit.
        n_legs: usize,
    },
    /// A signal references an R-op that does not exist or (for R-op inputs)
    /// does not precede the consumer.
    InvalidROpReference {
        /// The referenced R-op index.
        referenced: usize,
        /// Index of the consuming R-op, or `None` for an output tap.
        consumer: Option<usize>,
    },
    /// The circuit has no outputs.
    NoOutputs,
    /// A V-leg is empty.
    EmptyLeg {
        /// Index of the offending leg.
        leg: usize,
    },
    /// Two legs demand different BE literals in the same V-op step, which
    /// a shared bottom electrode cannot provide.
    SharedBeConflict {
        /// The V-op step (0-based).
        step: usize,
        /// BE literal demanded by an earlier leg.
        left: Literal,
        /// Conflicting BE literal demanded by a later leg.
        right: Literal,
    },
    /// An R-op input taps an intermediate leg value, which is overwritten
    /// before any R-op executes (only circuit *outputs* may tap mid-leg
    /// values, via interleaved readout).
    MidLegROpInput {
        /// The tapped leg.
        leg: usize,
        /// The tapped step.
        step: usize,
    },
    /// Too few working cells remain on the target array to place the
    /// schedule.
    InsufficientWorkingCells {
        /// Cells the schedule needs.
        needed: usize,
        /// Working cells available.
        available: usize,
        /// Total array size.
        array_size: usize,
    },
    /// A fault plan references a cell outside the schedule's array.
    FaultPlanOutOfRange {
        /// Name of the offending plan.
        plan: String,
        /// The out-of-range cell index.
        cell: usize,
        /// The schedule's cell count.
        n_cells: usize,
    },
    /// The schedule backend does not implement this R-op family.
    UnsupportedROpKind {
        /// Index of the offending R-op.
        rop: usize,
        /// Its family.
        kind: ROpKind,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LiteralOutOfRange { var, n_inputs } => {
                write!(
                    f,
                    "literal x{var} out of range for a {n_inputs}-input circuit"
                )
            }
            Self::UnknownLeg { leg, n_legs } => {
                write!(
                    f,
                    "signal references leg {leg} but the circuit has {n_legs} legs"
                )
            }
            Self::InvalidROpReference {
                referenced,
                consumer: Some(c),
            } => {
                write!(
                    f,
                    "R-op {c} references R-op {referenced}, which does not precede it"
                )
            }
            Self::InvalidROpReference {
                referenced,
                consumer: None,
            } => {
                write!(
                    f,
                    "output references R-op {referenced}, which does not exist"
                )
            }
            Self::NoOutputs => write!(f, "circuit must have at least one output"),
            Self::EmptyLeg { leg } => write!(f, "V-leg {leg} has no operations"),
            Self::SharedBeConflict { step, left, right } => write!(
                f,
                "V-op step {step} demands both {left} and {right} on the shared bottom electrode"
            ),
            Self::MidLegROpInput { leg, step } => write!(
                f,
                "R-op input taps intermediate value V{}.{}, which is overwritten before R-ops run",
                leg + 1,
                step + 1
            ),
            Self::InsufficientWorkingCells {
                needed,
                available,
                array_size,
            } => write!(
                f,
                "schedule needs {needed} cells but only {available} of {array_size} work"
            ),
            Self::FaultPlanOutOfRange {
                plan,
                cell,
                n_cells,
            } => write!(
                f,
                "fault plan {plan:?} references cell {cell}, but the schedule has {n_cells} cells"
            ),
            Self::UnsupportedROpKind { rop, kind } => {
                write!(
                    f,
                    "R-op {rop} uses {kind}, which the line-array backend does not execute"
                )
            }
        }
    }
}

impl Error for CircuitError {}
