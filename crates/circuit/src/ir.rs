use serde::{Deserialize, Serialize};

use mm_boolfn::Literal;
use mm_device::ROpKind;

use crate::{CircuitError, Metrics};

/// A value source inside a mixed-mode circuit.
///
/// R-op inputs and circuit outputs can tap a literal, a V-leg's final
/// value, or a preceding R-op's output. Referencing a leg's *final* value
/// (rather than an arbitrary intermediate V-op) is the physically valid
/// choice: the leg's device holds only the last written state once the R-op
/// phase begins — the paper's own decoded example taps "the last V-op
/// V6.3" (§III-B). Shorter legs are realized by dummy-cycle padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// A literal from `L_n`, held on a dedicated preloaded device when it
    /// feeds an R-op.
    Literal(Literal),
    /// The final value of V-leg `t` (0-based).
    Leg(usize),
    /// The *intermediate* value of V-leg `leg` after step `step`
    /// (0-based).
    ///
    /// Only valid as a circuit *output*: the value is captured by an
    /// interleaved readout cycle before the leg's remaining steps overwrite
    /// it (the paper's measurement protocol interleaves readouts the same
    /// way — Fig. 2 reads output 1 in cycle 6, between R-ops). R-ops
    /// consume device *states*, which at R-op time hold the leg's final
    /// value, so mid-leg R-op inputs are rejected at build time. This tap
    /// is what makes the paper's adder leg convention
    /// `N_L = N_R + N_O − 1` work: the carry output shares a leg whose
    /// final value feeds an R-op.
    LegStep {
        /// The leg (0-based).
        leg: usize,
        /// The step within the leg (0-based, strictly before the last).
        step: usize,
    },
    /// The output of R-op `j` (0-based).
    ROp(usize),
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Literal(l) => write!(f, "{l}"),
            Self::Leg(t) => write!(f, "V{}", t + 1),
            Self::LegStep { leg, step } => write!(f, "V{}.{}", leg + 1, step + 1),
            Self::ROp(j) => write!(f, "R{}", j + 1),
        }
    }
}

/// A single voltage-input operation: the literals driven on the top
/// electrode and on the shared bottom electrode during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VOp {
    /// The top-electrode literal.
    pub te: Literal,
    /// The (shared) bottom-electrode literal.
    pub be: Literal,
}

impl VOp {
    /// Creates a V-op from its electrode literals.
    pub fn new(te: Literal, be: Literal) -> Self {
        Self { te, be }
    }
}

impl std::fmt::Display for VOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V(TE={}, BE={})", self.te, self.be)
    }
}

/// One V-leg: a sequence of V-ops executed on a single device, starting
/// from state 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VLeg {
    ops: Vec<VOp>,
}

impl VLeg {
    /// Creates a leg from its operation sequence.
    pub fn new(ops: Vec<VOp>) -> Self {
        Self { ops }
    }

    /// The operations, first cycle first.
    pub fn ops(&self) -> &[VOp] {
        &self.ops
    }

    /// Number of V-op steps in the leg.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the leg has no operations (invalid in a built circuit).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A stateful R-op: a MAGIC NOR (or NIMP) of two signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ROp {
    /// The operation family.
    pub kind: ROpKind,
    /// First input.
    pub in1: Signal,
    /// Second input.
    pub in2: Signal,
}

impl ROp {
    /// A MAGIC NOR R-op of two signals.
    pub fn nor(in1: Signal, in2: Signal) -> Self {
        Self {
            kind: ROpKind::MagicNor,
            in1,
            in2,
        }
    }

    /// A NIMP R-op (`in1 · ¬in2`) of two signals.
    pub fn nimp(in1: Signal, in2: Signal) -> Self {
        Self {
            kind: ROpKind::Nimp,
            in1,
            in2,
        }
    }
}

impl std::fmt::Display for ROp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({}, {})", self.kind, self.in1, self.in2)
    }
}

/// A validated mixed-mode circuit: V-legs followed by R-ops, with output
/// taps.
///
/// Construct via [`MmCircuit::builder`]; validation guarantees that all
/// literals fit the input count, R-op inputs only reference earlier R-ops,
/// and every referenced leg exists. See the crate-level example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmCircuit {
    n_inputs: u8,
    legs: Vec<VLeg>,
    rops: Vec<ROp>,
    outputs: Vec<Signal>,
}

impl MmCircuit {
    /// Starts building a circuit with `n` inputs.
    pub fn builder(n_inputs: u8) -> MmCircuitBuilder {
        MmCircuitBuilder {
            circuit: MmCircuit {
                n_inputs,
                legs: Vec::new(),
                rops: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// Number of inputs `n`.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// The V-legs, in device order.
    pub fn legs(&self) -> &[VLeg] {
        &self.legs
    }

    /// The R-ops, in execution order.
    pub fn rops(&self) -> &[ROp] {
        &self.rops
    }

    /// The output taps, in output order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// The paper's cost metrics for this circuit.
    pub fn metrics(&self) -> Metrics {
        Metrics::of(self)
    }

    /// Rebuilds the circuit with every literal (V-op electrodes, R-op
    /// literal feeds, literal output taps) passed through `map`.
    ///
    /// This is the de-canonicalization primitive of the NPN result cache:
    /// an input permutation or polarity flip is a bijection on the driver
    /// set `L_n`, so relabeling literals preserves every cost metric and
    /// the structural shape — only the *function computed* changes.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if `map` produces a literal outside the
    /// circuit's input range (the rebuilt circuit is re-validated).
    pub fn map_literals(&self, map: impl Fn(Literal) -> Literal) -> Result<Self, CircuitError> {
        let map_signal = |s: Signal| match s {
            Signal::Literal(l) => Signal::Literal(map(l)),
            other => other,
        };
        let mut b = Self::builder(self.n_inputs);
        for leg in &self.legs {
            b = b.leg(VLeg::new(
                leg.ops()
                    .iter()
                    .map(|op| VOp::new(map(op.te), map(op.be)))
                    .collect(),
            ));
        }
        for rop in &self.rops {
            b = b.rop(ROp {
                kind: rop.kind,
                in1: map_signal(rop.in1),
                in2: map_signal(rop.in2),
            });
        }
        for &o in &self.outputs {
            b = b.output(map_signal(o));
        }
        b.build()
    }

    /// Rebuilds the circuit with output tap `k` reading the current output
    /// `perm[k]` (the other half of NPN de-canonicalization).
    ///
    /// # Panics
    ///
    /// Panics when `perm` is not a permutation of `0..n_outputs` — callers
    /// pass the validated permutation of an
    /// [`NpnTransform`](mm_boolfn::npn::NpnTransform).
    pub fn reorder_outputs(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.outputs.len(), "output permutation length");
        let mut seen = vec![false; perm.len()];
        let outputs = perm
            .iter()
            .map(|&k| {
                assert!(
                    k < self.outputs.len() && !seen[k],
                    "output permutation is not a bijection"
                );
                seen[k] = true;
                self.outputs[k]
            })
            .collect();
        Self {
            n_inputs: self.n_inputs,
            legs: self.legs.clone(),
            rops: self.rops.clone(),
            outputs,
        }
    }

    /// The distinct literals that feed R-ops directly (each occupies one
    /// preloaded device in the schedule).
    pub fn literal_feeds(&self) -> Vec<Literal> {
        let mut lits: Vec<Literal> = self
            .rops
            .iter()
            .flat_map(|r| [r.in1, r.in2])
            .filter_map(|s| match s {
                Signal::Literal(l) => Some(l),
                _ => None,
            })
            .collect();
        lits.sort();
        lits.dedup();
        lits
    }

    fn validate(&self) -> Result<(), CircuitError> {
        let check_literal = |l: Literal| match l.variable() {
            Some(v) if v == 0 || v > self.n_inputs => Err(CircuitError::LiteralOutOfRange {
                var: v,
                n_inputs: self.n_inputs,
            }),
            _ => Ok(()),
        };
        let check_signal = |s: Signal, consumer: Option<usize>| match s {
            Signal::Literal(l) => check_literal(l),
            Signal::Leg(t) if t >= self.legs.len() => Err(CircuitError::UnknownLeg {
                leg: t,
                n_legs: self.legs.len(),
            }),
            Signal::Leg(_) => Ok(()),
            Signal::LegStep { leg, step } => {
                if consumer.is_some() {
                    return Err(CircuitError::MidLegROpInput { leg, step });
                }
                if leg >= self.legs.len() || step + 1 >= self.legs[leg].len() {
                    return Err(CircuitError::UnknownLeg {
                        leg,
                        n_legs: self.legs.len(),
                    });
                }
                Ok(())
            }
            Signal::ROp(j) => {
                let limit = consumer.unwrap_or(self.rops.len());
                if j >= limit {
                    Err(CircuitError::InvalidROpReference {
                        referenced: j,
                        consumer,
                    })
                } else {
                    Ok(())
                }
            }
        };
        if self.outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        for (t, leg) in self.legs.iter().enumerate() {
            if leg.is_empty() {
                return Err(CircuitError::EmptyLeg { leg: t });
            }
            for op in leg.ops() {
                check_literal(op.te)?;
                check_literal(op.be)?;
            }
        }
        for (j, rop) in self.rops.iter().enumerate() {
            check_signal(rop.in1, Some(j))?;
            check_signal(rop.in2, Some(j))?;
        }
        for &o in &self.outputs {
            check_signal(o, None)?;
        }
        Ok(())
    }
}

/// Builder for [`MmCircuit`]; see [`MmCircuit::builder`].
#[derive(Debug, Clone)]
pub struct MmCircuitBuilder {
    circuit: MmCircuit,
}

impl MmCircuitBuilder {
    /// Appends a V-leg.
    pub fn leg(mut self, leg: VLeg) -> Self {
        self.circuit.legs.push(leg);
        self
    }

    /// Appends an R-op (executed after all previously added ones).
    pub fn rop(mut self, rop: ROp) -> Self {
        self.circuit.rops.push(rop);
        self
    }

    /// Appends an output tap.
    pub fn output(mut self, signal: Signal) -> Self {
        self.circuit.outputs.push(signal);
        self
    }

    /// Validates and returns the circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] describing the first structural problem
    /// found (dangling reference, out-of-range literal, empty leg, missing
    /// outputs).
    pub fn build(self) -> Result<MmCircuit, CircuitError> {
        self.circuit.validate()?;
        Ok(self.circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xleg(var: u8) -> VLeg {
        VLeg::new(vec![VOp::new(Literal::Pos(var), Literal::Const0)])
    }

    #[test]
    fn builder_validates_structure() {
        let ok = MmCircuit::builder(2)
            .leg(xleg(1))
            .leg(xleg(2))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build();
        assert!(ok.is_ok());
        let circuit = ok.unwrap();
        assert_eq!(circuit.n_inputs(), 2);
        assert_eq!(circuit.legs().len(), 2);
        assert_eq!(circuit.rops().len(), 1);
        assert_eq!(circuit.outputs().len(), 1);
    }

    #[test]
    fn rejects_dangling_leg() {
        let err = MmCircuit::builder(2)
            .leg(xleg(1))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(5)))
            .output(Signal::ROp(0))
            .build()
            .unwrap_err();
        assert_eq!(err, CircuitError::UnknownLeg { leg: 5, n_legs: 1 });
    }

    #[test]
    fn rejects_forward_rop_reference() {
        let err = MmCircuit::builder(2)
            .leg(xleg(1))
            .rop(ROp::nor(Signal::Leg(0), Signal::ROp(1)))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(0)))
            .output(Signal::ROp(1))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InvalidROpReference { referenced: 1, .. }
        ));
    }

    #[test]
    fn rejects_self_reference() {
        let err = MmCircuit::builder(2)
            .leg(xleg(1))
            .rop(ROp::nor(Signal::ROp(0), Signal::Leg(0)))
            .output(Signal::ROp(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InvalidROpReference { referenced: 0, .. }
        ));
    }

    #[test]
    fn rejects_bad_literal_and_empty_pieces() {
        let err = MmCircuit::builder(2)
            .leg(xleg(3))
            .output(Signal::Leg(0))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::LiteralOutOfRange {
                var: 3,
                n_inputs: 2
            }
        );

        let err = MmCircuit::builder(2).leg(xleg(1)).build().unwrap_err();
        assert_eq!(err, CircuitError::NoOutputs);

        let err = MmCircuit::builder(2)
            .leg(VLeg::new(vec![]))
            .output(Signal::Leg(0))
            .build()
            .unwrap_err();
        assert_eq!(err, CircuitError::EmptyLeg { leg: 0 });
    }

    #[test]
    fn literal_feeds_are_deduplicated() {
        let c = MmCircuit::builder(2)
            .leg(xleg(1))
            .rop(ROp::nor(Signal::Literal(Literal::Pos(2)), Signal::Leg(0)))
            .rop(ROp::nor(Signal::Literal(Literal::Pos(2)), Signal::ROp(0)))
            .output(Signal::ROp(1))
            .build()
            .unwrap();
        assert_eq!(c.literal_feeds(), vec![Literal::Pos(2)]);
    }

    #[test]
    fn map_literals_relabels_every_site() {
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Neg(2))]))
            .rop(ROp::nor(Signal::Literal(Literal::Pos(2)), Signal::Leg(0)))
            .output(Signal::ROp(0))
            .output(Signal::Literal(Literal::Neg(1)))
            .build()
            .unwrap();
        let mapped = c.map_literals(Literal::complement).unwrap();
        assert_eq!(
            mapped.legs()[0].ops()[0],
            VOp::new(Literal::Neg(1), Literal::Pos(2))
        );
        assert_eq!(mapped.rops()[0].in1, Signal::Literal(Literal::Neg(2)));
        assert_eq!(mapped.outputs()[1], Signal::Literal(Literal::Pos(1)));
        // Structure and metrics untouched.
        assert_eq!(mapped.metrics(), c.metrics());
        // An out-of-range relabel is rejected by re-validation.
        assert!(c.map_literals(|_| Literal::Pos(9)).is_err());
    }

    #[test]
    fn reorder_outputs_permutes_taps() {
        let c = MmCircuit::builder(2)
            .leg(xleg(1))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(0)))
            .output(Signal::ROp(0))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let r = c.reorder_outputs(&[1, 0]);
        assert_eq!(r.outputs(), &[Signal::Leg(0), Signal::ROp(0)]);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn reorder_outputs_rejects_duplicates() {
        let c = MmCircuit::builder(2)
            .leg(xleg(1))
            .output(Signal::Leg(0))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let _ = c.reorder_outputs(&[0, 0]);
    }

    #[test]
    fn npn_transformed_circuit_implements_transformed_function() {
        use mm_boolfn::npn::NpnTransform;
        use mm_boolfn::{generators, MultiOutputFn, TruthTable};

        // NOR(x1, x2) as a circuit, plus a leg-computed second output so
        // both literal sites and output reordering are exercised.
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .rop(ROp::nor(
                Signal::Literal(Literal::Pos(1)),
                Signal::Literal(Literal::Pos(2)),
            ))
            .output(Signal::ROp(0))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let nor = generators::nor_gate(2).outputs()[0].clone();
        let x1 = TruthTable::var(2, 1).unwrap();
        let g = MultiOutputFn::new("g", vec![nor, x1]).unwrap();
        assert!(c.implements(&g));

        for (perm, flips, out_perm) in [
            (vec![2u8, 1], 0b00u32, vec![0usize, 1]),
            (vec![1, 2], 0b01, vec![1, 0]),
            (vec![2, 1], 0b11, vec![1, 0]),
        ] {
            let t = NpnTransform::new(2, perm, flips, out_perm).unwrap();
            let h = t.apply(&g);
            let ct = c
                .map_literals(|l| t.map_literal(l))
                .unwrap()
                .reorder_outputs(t.output_perm());
            assert!(ct.implements(&h), "transform {t:?}");
            assert_eq!(ct.metrics(), c.metrics());
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Signal::Leg(0).to_string(), "V1");
        assert_eq!(Signal::ROp(2).to_string(), "R3");
        assert_eq!(Signal::Literal(Literal::Neg(1)).to_string(), "~x1");
        assert_eq!(
            ROp::nor(Signal::Leg(0), Signal::Leg(1)).to_string(),
            "MAGIC-NOR(V1, V2)"
        );
        assert_eq!(
            VOp::new(Literal::Pos(1), Literal::Const0).to_string(),
            "V(TE=x1, BE=const-0)"
        );
    }
}
