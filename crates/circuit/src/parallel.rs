//! Crossbar parallelism analysis and execution — the paper's future-work
//! direction (§VI): "2D memristive crossbars offer new possibilities (e.g.
//! potentially parallel R-ops) but also new complexities".
//!
//! On a 1D line array R-ops serialize (`N_St = N_VS + N_R`). On a crossbar,
//! R-ops whose operands are independent can fire in the same cycle; the
//! *dependency depth* of the R-op DAG is therefore a lower bound on the
//! stateful phase's latency, and `N_VS + depth` the corresponding
//! best-case step count ([`crossbar_steps_bound`]). Realizing the bound
//! additionally needs operand routing (copies between rows/columns), which
//! is why it is reported as a bound rather than folded into
//! [`Metrics`](crate::Metrics).
//!
//! [`Schedule::execute_on_crossbar`] runs a compiled line-array schedule
//! inside one crossbar column (serial R-ops), validating the crossbar
//! device semantics against the line array.

use mm_device::{Crossbar, DeviceState};

use crate::{MmCircuit, Schedule, ScheduleCycle, Signal};

/// The dependency level of every R-op (1-based): R-ops fed only by legs
/// and literals are level 1; an R-op consuming another R-op sits one level
/// above its deepest producer.
pub fn rop_levels(circuit: &MmCircuit) -> Vec<usize> {
    let mut levels = Vec::with_capacity(circuit.rops().len());
    for rop in circuit.rops() {
        let dep = |s: Signal| -> usize {
            match s {
                Signal::ROp(j) => levels[j],
                _ => 0,
            }
        };
        levels.push(1 + dep(rop.in1).max(dep(rop.in2)));
    }
    levels
}

/// The depth of the R-op DAG — the minimum number of stateful cycles on a
/// platform with fully parallel independent R-ops.
pub fn crossbar_rop_depth(circuit: &MmCircuit) -> usize {
    rop_levels(circuit).into_iter().max().unwrap_or(0)
}

/// Best-case step count on a crossbar: `N_VS + depth(R-op DAG)`, versus the
/// line array's `N_VS + N_R`.
pub fn crossbar_steps_bound(circuit: &MmCircuit) -> usize {
    circuit.metrics().n_vsteps + crossbar_rop_depth(circuit)
}

impl Schedule {
    /// Executes this schedule inside column `col` of a crossbar (line-array
    /// mode: V-ops via [`Crossbar::v_op_column`], R-ops via column-wise
    /// MAGIC NOR, serialized exactly as on the 1D array).
    ///
    /// The crossbar must have at least [`n_cells`](Schedule::n_cells) rows.
    /// Returns the read-out output values.
    ///
    /// # Panics
    ///
    /// Panics if the crossbar is too small, `col` is out of range, or `x`
    /// exceeds `2^n`.
    pub fn execute_on_crossbar(&self, x: u32, xbar: &mut Crossbar, col: usize) -> Vec<bool> {
        assert!(
            xbar.rows() >= self.n_cells(),
            "crossbar needs one row per schedule cell"
        );
        assert!(
            u64::from(x) < (1u64 << self.n_inputs()),
            "input assignment out of range"
        );
        for (r, &s) in self.init_states().iter().enumerate() {
            xbar.force_state(r, col, DeviceState::from_bool(s));
        }
        let n = self.n_inputs();
        let mut outputs = vec![false; self.output_cells().len()];
        for cycle in self.cycles() {
            match cycle {
                ScheduleCycle::VOp { te, be } => {
                    let mut te_levels: Vec<Option<bool>> =
                        te.iter().map(|l| l.map(|l| l.eval(n, x))).collect();
                    te_levels.resize(xbar.rows(), None);
                    xbar.v_op_column(col, &te_levels, be.eval(n, x));
                }
                ScheduleCycle::ROp { inputs, output, .. } => {
                    xbar.col_nor(inputs, *output, &[col]);
                }
                ScheduleCycle::Read { output_index, cell } => {
                    outputs[*output_index] = xbar.read(*cell, col) == DeviceState::Lrs;
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, Literal};
    use mm_device::Crossbar;

    use super::*;
    use crate::{MmCircuit, ROp, VLeg, VOp};

    fn fig1_shaped() -> MmCircuit {
        // Two independent NOR cascades (like the paper's Fig. 1): R1->R2,
        // R3->R4.
        let mut b = MmCircuit::builder(4);
        for v in [1u8, 2, 3, 4, 1, 2] {
            b = b.leg(VLeg::new(vec![VOp::new(Literal::Pos(v), Literal::Const0)]));
        }
        b.rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .rop(ROp::nor(Signal::ROp(0), Signal::Leg(2)))
            .rop(ROp::nor(Signal::Leg(3), Signal::Leg(4)))
            .rop(ROp::nor(Signal::ROp(2), Signal::Leg(5)))
            .output(Signal::ROp(1))
            .output(Signal::ROp(3))
            .build()
            .expect("valid")
    }

    #[test]
    fn levels_and_depth() {
        let c = fig1_shaped();
        assert_eq!(rop_levels(&c), vec![1, 2, 1, 2]);
        assert_eq!(crossbar_rop_depth(&c), 2);
        // Line array: 1 + 4 = 5 steps; crossbar bound: 1 + 2 = 3.
        assert_eq!(c.metrics().n_steps, 5);
        assert_eq!(crossbar_steps_bound(&c), 3);
    }

    #[test]
    fn v_only_circuit_has_depth_zero() {
        let c = MmCircuit::builder(1)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .output(Signal::Leg(0))
            .build()
            .expect("valid");
        assert_eq!(crossbar_rop_depth(&c), 0);
        assert_eq!(crossbar_steps_bound(&c), 1);
    }

    #[test]
    fn crossbar_execution_matches_line_array() {
        let f = generators::xor_gate(2);
        let c = mm_boolfn_xor_circuit();
        let schedule = Schedule::compile(&c).expect("schedulable");
        for x in 0..4u32 {
            let ideal = schedule.run_ideal(x);
            let mut xbar = Crossbar::ideal(schedule.n_cells(), 3);
            let got = schedule.execute_on_crossbar(x, &mut xbar, 1);
            assert_eq!(ideal, got, "x = {x:02b}");
            assert_eq!(got[0], f.output(0).expect("one output").eval(x));
        }
    }

    /// XOR2 = NOR(x1·x2, ~x1·~x2) built by hand.
    fn mm_boolfn_xor_circuit() -> MmCircuit {
        MmCircuit::builder(2)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .leg(VLeg::new(vec![
                VOp::new(Literal::Neg(1), Literal::Const0),
                VOp::new(Literal::Neg(2), Literal::Const1),
            ]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .expect("valid")
    }
}
