//! Write-activity and endurance analysis of compiled schedules.
//!
//! The paper's design discussion (§III) notes that "for technologies with
//! low endurance, V-ops are problematic because, in the worst case, every
//! V-op switches the cell (in practice, many cells will retain their old
//! values)". This module quantifies that: executing a schedule symbolically
//! over all `2^n` inputs yields, per cell, the exact number of write pulses
//! applied and the expected number of actual state *switches* (the quantity
//! endurance budgets care about).
//!
//! # Example
//!
//! ```
//! use mm_boolfn::Literal;
//! use mm_circuit::{ActivityReport, MmCircuit, Schedule, Signal, VLeg, VOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = MmCircuit::builder(1)
//!     .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
//!     .output(Signal::Leg(0))
//!     .build()?;
//! let schedule = Schedule::compile(&c)?;
//! let report = ActivityReport::analyze(&schedule);
//! // The cell sees a pulse (and switches) only for x1 = 1: for x1 = 0 the
//! // electrodes agree and no write happens.
//! assert_eq!(report.total_write_pulses(), 1);
//! assert_eq!(report.total_switches(), 1);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use mm_device::vop;
use mm_device::DeviceState;

use crate::{Schedule, ScheduleCycle};

/// Per-cell write/switch statistics accumulated over all `2^n` inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellActivity {
    /// Number of cycles in which the cell saw a non-zero write voltage
    /// (TE ≠ BE during a V-op, or any MAGIC cycle it participated in),
    /// summed over all inputs.
    pub write_pulses: u64,
    /// Number of cycles in which the cell actually changed state, summed
    /// over all inputs.
    pub switches: u64,
}

/// Endurance analysis of one schedule; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityReport {
    cells: Vec<CellActivity>,
    n_inputs: u8,
}

impl ActivityReport {
    /// Symbolically executes `schedule` for every input assignment and
    /// tallies writes and switches per cell.
    pub fn analyze(schedule: &Schedule) -> Self {
        let n = schedule.n_inputs();
        let n_cells = schedule.n_cells();
        let mut cells = vec![
            CellActivity {
                write_pulses: 0,
                switches: 0
            };
            n_cells
        ];

        for x in 0..(1u32 << n) {
            // Ideal logical replay of the schedule (mirrors
            // LineArray::v_op_cycle / magic_nor semantics without the
            // electrical layer).
            let mut state: Vec<bool> = schedule.init_states().to_vec();
            for cycle in schedule.cycles() {
                match cycle {
                    ScheduleCycle::VOp { te, be } => {
                        let be_v = be.eval(n, x);
                        for (i, te_lit) in te.iter().enumerate() {
                            let te_v = match te_lit {
                                Some(l) => l.eval(n, x),
                                None => be_v, // dummy: TE follows BE
                            };
                            if te_v != be_v {
                                cells[i].write_pulses += 1;
                            }
                            let next =
                                vop::apply(DeviceState::from_bool(state[i]), te_v, be_v).to_bool();
                            if next != state[i] {
                                cells[i].switches += 1;
                            }
                            state[i] = next;
                        }
                    }
                    ScheduleCycle::ROp { inputs, output, .. } => {
                        // All involved cells see the divider voltage; only
                        // the output can switch (inputs are non-destructive
                        // in the ideal MAGIC model).
                        for &i in inputs {
                            cells[i].write_pulses += 1;
                        }
                        cells[*output].write_pulses += 1;
                        let any = inputs.iter().any(|&i| state[i]);
                        let next = !any;
                        if next != state[*output] {
                            cells[*output].switches += 1;
                        }
                        state[*output] = next;
                    }
                    ScheduleCycle::Read { .. } => {} // non-destructive
                }
            }
        }
        Self { cells, n_inputs: n }
    }

    /// Per-cell statistics, in cell order.
    pub fn cells(&self) -> &[CellActivity] {
        &self.cells
    }

    /// Total write pulses across all cells and inputs.
    pub fn total_write_pulses(&self) -> u64 {
        self.cells.iter().map(|c| c.write_pulses).sum()
    }

    /// Total state switches across all cells and inputs.
    pub fn total_switches(&self) -> u64 {
        self.cells.iter().map(|c| c.switches).sum()
    }

    /// Average switches per execution (total over `2^n` inputs divided by
    /// the input count) — the per-run wear figure.
    pub fn switches_per_run(&self) -> f64 {
        self.total_switches() as f64 / f64::from(1u32 << self.n_inputs)
    }

    /// The most-written cell: `(index, pulses)` — the endurance bottleneck.
    pub fn hottest_cell(&self) -> Option<(usize, u64)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.write_pulses))
            .max_by_key(|&(_, p)| p)
    }

    /// Fraction of write pulses that actually switched the device. The
    /// paper's observation "in practice, many cells will retain their old
    /// values" corresponds to this ratio being well below 1.
    pub fn switch_efficiency(&self) -> f64 {
        let pulses = self.total_write_pulses();
        if pulses == 0 {
            return 0.0;
        }
        self.total_switches() as f64 / pulses as f64
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, Literal};

    use super::*;
    use crate::{MmCircuit, ROp, Signal, VLeg, VOp};

    #[test]
    fn dummy_cycles_cost_no_writes() {
        // A single-op leg padded against a 2-op leg: the padded cycle is
        // TE = BE and must contribute no pulses.
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let report = ActivityReport::analyze(&schedule);
        // Cell 1 (short leg) must see pulses only in its own step:
        // step 1 drives TE = x2 vs BE = 0 (pulse iff x2), step 2 is a dummy.
        // Over 4 inputs that is 2 pulses.
        assert_eq!(
            report.cells()[1].write_pulses,
            2 + /* R-op participation */ 4
        );
    }

    #[test]
    fn switches_never_exceed_pulses_for_v_cells() {
        // A mixed circuit with cascade, literal feed and mid-leg tap.
        let _ = generators::gf22_multiplier();
        let c = MmCircuit::builder(3)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(3), Literal::Const0),
                VOp::new(Literal::Neg(1), Literal::Const1),
            ]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .rop(ROp::nor(Signal::ROp(0), Signal::Literal(Literal::Neg(3))))
            .output(Signal::ROp(1))
            .output(Signal::LegStep { leg: 0, step: 0 })
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let report = ActivityReport::analyze(&schedule);
        for (i, cell) in report.cells().iter().enumerate() {
            assert!(
                cell.switches <= cell.write_pulses,
                "cell {i}: switches {} > pulses {}",
                cell.switches,
                cell.write_pulses
            );
        }
        assert!(report.switch_efficiency() <= 1.0);
        assert!(report.switches_per_run() > 0.0);
        assert!(report.hottest_cell().is_some());
    }

    #[test]
    fn read_cycles_are_free() {
        let c = MmCircuit::builder(1)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let report = ActivityReport::analyze(&schedule);
        // 2 inputs; a pulse only when x1 = 1 (TE = 1, BE = 0); the read
        // adds nothing.
        assert_eq!(report.total_write_pulses(), 1);
        assert_eq!(report.total_switches(), 1);
    }
}
