//! Mixed-mode memristive circuit IR, scheduling, evaluation and export.
//!
//! A mixed-mode (MM) circuit in the sense of the paper consists of a V-op
//! part — parallel *V-legs*, each a sequence of voltage-input operations on
//! one device, driven by literals on the top electrode and a shared bottom
//! electrode — followed by an R-op part: a serialized sequence of stateful
//! MAGIC-NOR (or NIMP) gates whose inputs are V-leg results, literals, or
//! earlier R-op outputs.
//!
//! This crate provides:
//!
//! * [`MmCircuit`] with [`Signal`], [`VLeg`], [`VOp`] and [`ROp`] — the IR
//!   produced by the synthesizer and consumable by everything else;
//! * [`MmCircuit::eval_outputs`] — symbolic evaluation to truth tables;
//! * [`Metrics`] — the paper's cost figures (`N_R, N_L, N_VS, N_St,
//!   N_Dev`);
//! * [`Schedule`] — compilation to a cycle-accurate line-array program
//!   (dummy-cycle padding, shared-BE legality, literal preloading, output
//!   initialization, readout), executable on an
//!   [`mm_device::LineArray`] both ideally and electrically;
//! * [`campaign`] — fault-injection campaigns executing a schedule against
//!   faulty arrays ([`mm_device::FaultPlan`]) with per-cell failure
//!   attribution, feeding the self-repairing synthesis loop;
//! * text/DOT export for inspecting circuits like the paper's Fig. 1.
//!
//! # Example
//!
//! ```
//! use mm_boolfn::Literal;
//! use mm_circuit::{MmCircuit, ROp, ROpKind, Signal, VLeg, VOp};
//!
//! # fn main() -> Result<(), mm_circuit::CircuitError> {
//! // NOR(x1·x2, x3): one V-leg computing x1·x2, one R-op.
//! let circuit = MmCircuit::builder(3)
//!     .leg(VLeg::new(vec![
//!         VOp::new(Literal::Pos(1), Literal::Const0), // v = x1
//!         VOp::new(Literal::Pos(2), Literal::Const1), // v = x1·x2
//!     ]))
//!     .rop(ROp::nor(Signal::Leg(0), Signal::Literal(Literal::Pos(3))))
//!     .output(Signal::ROp(0))
//!     .build()?;
//! let tt = &circuit.eval_outputs()[0];
//! assert_eq!(tt.to_bitstring(), "10101000");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
pub mod campaign;
mod error;
mod eval;
mod export;
mod ir;
mod metrics;
pub mod parallel;
mod schedule;

pub use activity::{ActivityReport, CellActivity};
pub use campaign::{run_campaign, CampaignConfig, CampaignReport, FaultClass, PlanReport};
pub use error::CircuitError;
pub use ir::{MmCircuit, MmCircuitBuilder, ROp, Signal, VLeg, VOp};
pub use metrics::Metrics;
pub use schedule::{CellRole, Schedule, ScheduleCycle};

// Re-exported so downstream crates name the R-op family and assemble
// fault-injection campaigns without also depending on `mm-device`.
pub use mm_device::{DeviceState, ElectricalParams, FaultPlan, ROpKind};
