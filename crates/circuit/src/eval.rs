//! Symbolic evaluation of mixed-mode circuits to truth tables.

use mm_boolfn::{MultiOutputFn, TruthTable};

use crate::{MmCircuit, Signal};

impl MmCircuit {
    /// The truth table of a V-leg's final value.
    ///
    /// Every leg starts in state 0 and folds its V-ops in sequence.
    ///
    /// # Panics
    ///
    /// Panics if `leg` is out of range (the circuit is validated, so this
    /// only happens on caller errors).
    pub fn leg_value(&self, leg: usize) -> TruthTable {
        let n = self.n_inputs();
        let mut state = TruthTable::new_false(n).expect("n validated at build time");
        for op in self.legs()[leg].ops() {
            let te = op.te.truth_table(n);
            let be = op.be.truth_table(n);
            state = state.v_op(&te, &be);
        }
        state
    }

    /// The truth tables after every step of a leg (`result[k]` is the state
    /// after op `k`), useful for printing Table II-style state evolutions.
    pub fn leg_trajectory(&self, leg: usize) -> Vec<TruthTable> {
        let n = self.n_inputs();
        let mut state = TruthTable::new_false(n).expect("n validated at build time");
        let mut out = Vec::with_capacity(self.legs()[leg].len());
        for op in self.legs()[leg].ops() {
            let te = op.te.truth_table(n);
            let be = op.be.truth_table(n);
            state = state.v_op(&te, &be);
            out.push(state.clone());
        }
        out
    }

    /// The truth table carried by a signal.
    ///
    /// # Panics
    ///
    /// Panics on dangling references; built circuits never contain any.
    pub fn signal_value(&self, signal: Signal) -> TruthTable {
        let rops = self.rop_values();
        self.resolve(signal, &rops)
    }

    /// The truth tables of all R-op outputs, in execution order.
    pub fn rop_values(&self) -> Vec<TruthTable> {
        let mut values: Vec<TruthTable> = Vec::with_capacity(self.rops().len());
        for rop in self.rops() {
            let a = self.resolve(rop.in1, &values);
            let b = self.resolve(rop.in2, &values);
            let out =
                TruthTable::from_index_fn(self.n_inputs(), |q| rop.kind.eval(a.eval(q), b.eval(q)))
                    .expect("n validated at build time");
            values.push(out);
        }
        values
    }

    /// The truth tables of all outputs, in output order.
    pub fn eval_outputs(&self) -> Vec<TruthTable> {
        let rops = self.rop_values();
        self.outputs()
            .iter()
            .map(|&o| self.resolve(o, &rops))
            .collect()
    }

    /// Whether the circuit realizes the given specification exactly.
    pub fn implements(&self, spec: &MultiOutputFn) -> bool {
        spec.n_inputs() == self.n_inputs()
            && spec.n_outputs() == self.outputs().len()
            && self.eval_outputs() == spec.outputs()
    }

    fn resolve(&self, signal: Signal, rop_values: &[TruthTable]) -> TruthTable {
        match signal {
            Signal::Literal(l) => l.truth_table(self.n_inputs()),
            Signal::Leg(t) => self.leg_value(t),
            Signal::LegStep { leg, step } => self.leg_trajectory(leg)[step].clone(),
            Signal::ROp(j) => rop_values[j].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, Literal};

    use crate::{MmCircuit, ROp, Signal, VLeg, VOp};

    /// The paper's Table II, f1 = x1·x2·x3·x4: the 5-step V-op-only
    /// schedule (with the printed-pattern BE literals).
    fn table2_and_leg() -> VLeg {
        VLeg::new(vec![
            VOp::new(Literal::Pos(4), Literal::Const0),
            VOp::new(Literal::Pos(2), Literal::Pos(3)),
            VOp::new(Literal::Pos(3), Literal::Pos(1)),
            VOp::new(Literal::Const0, Literal::Const0),
            VOp::new(Literal::Pos(1), Literal::Const1),
        ])
    }

    #[test]
    fn table2_and_gate_evaluates_correctly() {
        let c = MmCircuit::builder(4)
            .leg(table2_and_leg())
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let and4 = generators::and_gate(4);
        assert!(c.implements(&and4));
        // Check the printed intermediate states too.
        let traj = c.leg_trajectory(0);
        assert_eq!(traj[0].to_bitstring(), "0101010101010101");
        assert_eq!(traj[1].to_bitstring(), "0100110101001101");
        assert_eq!(traj[2].to_bitstring(), "0111111100000001");
        assert_eq!(traj[3].to_bitstring(), "0111111100000001");
        assert_eq!(traj[4].to_bitstring(), "0000000000000001");
    }

    #[test]
    fn table2_or_gate_evaluates_correctly() {
        // Paper Table II, f3 = x1+x2+x3+x4 (4 steps, printed-pattern BE).
        let c = MmCircuit::builder(4)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(2), Literal::Const0),
                VOp::new(Literal::Pos(4), Literal::Pos(3)),
                VOp::new(Literal::Pos(3), Literal::Pos(1)),
                VOp::new(Literal::Pos(1), Literal::Const0),
            ]))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let traj = c.leg_trajectory(0);
        assert_eq!(traj[0].to_bitstring(), "0000111100001111");
        assert_eq!(traj[1].to_bitstring(), "0100110101001101");
        assert_eq!(traj[2].to_bitstring(), "0111111100000001");
        assert_eq!(traj[3].to_bitstring(), "0111111111111111");
        assert!(c.implements(&generators::or_gate(4)));
    }

    #[test]
    fn rop_cascade_evaluates() {
        // NOR(NOR(x1, x2), x3) = (x1 + x2) · ~x3
        let c = MmCircuit::builder(3)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .rop(ROp::nor(Signal::ROp(0), Signal::Literal(Literal::Pos(3))))
            .output(Signal::ROp(1))
            .build()
            .unwrap();
        let out = &c.eval_outputs()[0];
        for q in 0..8u32 {
            let x1 = (q >> 2) & 1 == 1;
            let x2 = (q >> 1) & 1 == 1;
            let x3 = q & 1 == 1;
            assert_eq!(out.eval(q), (x1 | x2) & !x3, "row {q}");
        }
    }

    #[test]
    fn nimp_rop_evaluates() {
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .rop(ROp::nimp(Signal::Leg(0), Signal::Literal(Literal::Pos(2))))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        assert_eq!(c.eval_outputs()[0].to_bitstring(), "0010"); // x1·~x2
    }

    #[test]
    fn implements_rejects_mismatches() {
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        assert!(!c.implements(&generators::and_gate(2)));
        assert!(!c.implements(&generators::and_gate(3)));
    }
}
