//! Human-readable and Graphviz export of mixed-mode circuits.

use std::fmt::Write as _;

use crate::{MmCircuit, Signal};

impl MmCircuit {
    /// Renders the circuit as an indented text diagram (the textual
    /// equivalent of the paper's Fig. 1).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mixed-mode circuit: {} inputs, {} legs, {} R-ops, {} outputs",
            self.n_inputs(),
            self.legs().len(),
            self.rops().len(),
            self.outputs().len()
        );
        for (t, leg) in self.legs().iter().enumerate() {
            let _ = writeln!(out, "  V-leg V{}:", t + 1);
            for (k, op) in leg.ops().iter().enumerate() {
                let _ = writeln!(out, "    V{}.{}: TE={}, BE={}", t + 1, k + 1, op.te, op.be);
            }
        }
        for (j, rop) in self.rops().iter().enumerate() {
            let _ = writeln!(out, "  R{}: {}({}, {})", j + 1, rop.kind, rop.in1, rop.in2);
        }
        for (i, o) in self.outputs().iter().enumerate() {
            let _ = writeln!(out, "  out{}: {}", i + 1, o);
        }
        out
    }

    /// Renders the circuit as a Graphviz DOT digraph.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph mm_circuit {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for (t, leg) in self.legs().iter().enumerate() {
            let ops: Vec<String> = leg
                .ops()
                .iter()
                .map(|op| format!("TE={}, BE={}", op.te, op.be))
                .collect();
            let _ = writeln!(
                out,
                "  leg{t} [shape=box, label=\"V{}\\n{}\"];",
                t + 1,
                ops.join("\\n")
            );
        }
        let name = |s: &Signal| match s {
            Signal::Leg(t) | Signal::LegStep { leg: t, .. } => format!("leg{t}"),
            Signal::ROp(j) => format!("rop{j}"),
            Signal::Literal(l) => format!("lit_{}", l.to_string().replace('~', "n")),
        };
        for (j, rop) in self.rops().iter().enumerate() {
            let _ = writeln!(
                out,
                "  rop{j} [shape=ellipse, label=\"R{}\\n{}\"];",
                j + 1,
                rop.kind
            );
            for input in [rop.in1, rop.in2] {
                if let Signal::Literal(l) = input {
                    let _ = writeln!(out, "  {} [shape=plaintext, label=\"{l}\"];", name(&input));
                }
                let _ = writeln!(out, "  {} -> rop{j};", name(&input));
            }
        }
        for (i, o) in self.outputs().iter().enumerate() {
            let _ = writeln!(
                out,
                "  out{i} [shape=doublecircle, label=\"out{}\"];",
                i + 1
            );
            let _ = writeln!(out, "  {} -> out{i};", name(o));
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::Literal;

    use crate::{MmCircuit, ROp, Signal, VLeg, VOp};

    fn sample() -> MmCircuit {
        MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Literal(Literal::Neg(2))))
            .output(Signal::ROp(0))
            .build()
            .unwrap()
    }

    #[test]
    fn text_contains_all_elements() {
        let text = sample().to_text();
        assert!(text.contains("V-leg V1"));
        assert!(text.contains("V1.1: TE=x1, BE=const-0"));
        assert!(text.contains("R1: MAGIC-NOR(V1, ~x2)"));
        assert!(text.contains("out1: R1"));
    }

    #[test]
    fn dot_is_well_formed() {
        let dot = sample().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("leg0 -> rop0;"));
        assert!(dot.contains("rop0 -> out0;"));
        assert!(dot.contains("lit_nx2"));
    }

    #[test]
    fn serde_round_trip() {
        let c = sample();
        let json = serde_json::to_string(&c).unwrap();
        let back: MmCircuit = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
