use serde::{Deserialize, Serialize};

use crate::{MmCircuit, Signal};

/// The paper's cost figures for a mixed-mode circuit (Table IV columns).
///
/// `n_steps` counts compute cycles only (`N_St = N_VS + N_R`): V-op steps
/// execute in parallel across legs, R-ops are serialized on a line array.
/// Initialization and readout cycles — which the paper reports separately
/// in its Fig. 2 walkthrough — are part of [`Schedule`](crate::Schedule),
/// not of these metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Metrics {
    /// Number of R-ops (`N_R`).
    pub n_rops: usize,
    /// Number of V-legs (`N_L`).
    pub n_legs: usize,
    /// Number of V-op steps per leg (`N_VS`, the longest leg).
    pub n_vsteps: usize,
    /// Total number of V-ops across legs (`N_V`).
    pub n_vops: usize,
    /// Total compute steps (`N_St = N_VS + N_R`).
    pub n_steps: usize,
    /// Devices by the paper's formula `N_Dev = 2·N_R + N_O` (for circuits
    /// whose outputs are all R-ops; see [`Metrics::n_devices_structural`]).
    pub n_devices_formula: usize,
    /// Devices actually occupied by the schedule: legs + literal-feed
    /// devices + one output device per R-op (cascade inputs share their
    /// producer's device).
    pub n_devices_structural: usize,
    /// Number of circuit outputs (`N_O`).
    pub n_outputs: usize,
}

impl Metrics {
    pub(crate) fn of(circuit: &MmCircuit) -> Self {
        let n_rops = circuit.rops().len();
        let n_legs = circuit.legs().len();
        let n_vsteps = circuit.legs().iter().map(|l| l.len()).max().unwrap_or(0);
        let n_vops = circuit.legs().iter().map(|l| l.len()).sum();
        let n_outputs = circuit.outputs().len();
        // Structural devices: each leg is one device; each distinct literal
        // feeding an R-op is one preloaded device; each R-op owns its output
        // device. Leg/R-op inputs of R-ops reuse those devices.
        let n_devices_structural = n_legs + circuit.literal_feeds().len() + n_rops;
        Self {
            n_rops,
            n_legs,
            n_vsteps,
            n_vops,
            n_steps: n_vsteps + n_rops,
            n_devices_formula: 2 * n_rops + n_outputs,
            n_devices_structural,
            n_outputs,
        }
    }

    /// Whether every output taps an R-op (the usual shape for the paper's
    /// `N_Dev` formula to be meaningful).
    pub fn formula_applicable(circuit: &MmCircuit) -> bool {
        circuit
            .outputs()
            .iter()
            .all(|o| matches!(o, Signal::ROp(_)))
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::Literal;

    use crate::{MmCircuit, ROp, Signal, VLeg, VOp};

    fn leg1(var: u8) -> VLeg {
        VLeg::new(vec![VOp::new(Literal::Pos(var), Literal::Const0)])
    }

    #[test]
    fn fig1_shaped_circuit_metrics() {
        // Shape of the paper's Fig. 1: 6 legs x 3 ops, 4 R-ops with two
        // cascades, outputs tapping R2 and R4.
        let mut b = MmCircuit::builder(4);
        for v in [1u8, 2, 3, 4, 1, 2] {
            b = b.leg(VLeg::new(vec![
                VOp::new(Literal::Pos(v), Literal::Const0),
                VOp::new(Literal::Pos(v), Literal::Pos(v)),
                VOp::new(Literal::Const0, Literal::Pos(v)),
            ]));
        }
        let c = b
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .rop(ROp::nor(Signal::ROp(0), Signal::Leg(2)))
            .rop(ROp::nor(Signal::Leg(3), Signal::Leg(4)))
            .rop(ROp::nor(Signal::ROp(2), Signal::Leg(5)))
            .output(Signal::ROp(1))
            .output(Signal::ROp(3))
            .build()
            .unwrap();
        let m = c.metrics();
        assert_eq!(m.n_rops, 4);
        assert_eq!(m.n_legs, 6);
        assert_eq!(m.n_vsteps, 3);
        assert_eq!(m.n_vops, 18);
        assert_eq!(m.n_steps, 7, "paper: 3 V-op cycles + 4 serialized R-ops");
        assert_eq!(m.n_devices_formula, 10, "paper: N_Dev = 2*4 + 2");
        assert_eq!(
            m.n_devices_structural, 10,
            "6 legs + 4 R-outputs, cascades share"
        );
        assert!(crate::Metrics::formula_applicable(&c));
    }

    #[test]
    fn literal_feeds_add_devices() {
        let c = MmCircuit::builder(2)
            .leg(leg1(1))
            .rop(ROp::nor(Signal::Leg(0), Signal::Literal(Literal::Pos(2))))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let m = c.metrics();
        assert_eq!(m.n_devices_structural, 3); // leg + literal device + R-out
        assert_eq!(m.n_devices_formula, 3); // 2*1 + 1
    }

    #[test]
    fn v_only_circuit() {
        let c = MmCircuit::builder(2)
            .leg(leg1(1))
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let m = c.metrics();
        assert_eq!(m.n_rops, 0);
        assert_eq!(m.n_steps, 1);
        assert_eq!(m.n_devices_structural, 1);
        assert!(!crate::Metrics::formula_applicable(&c));
    }
}
