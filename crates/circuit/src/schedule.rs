use serde::{Deserialize, Serialize};

use mm_boolfn::Literal;
use mm_device::{DeviceState, LineArray, ROpKind};

use crate::{CircuitError, MmCircuit, Signal};

/// What a line-array cell is used for in a compiled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellRole {
    /// Executes V-leg `t` (0-based).
    Leg(usize),
    /// Holds a preloaded literal feeding one or more R-ops.
    LiteralFeed(Literal),
    /// Output device of R-op `j` (0-based), pre-set per the R-op family.
    ROpOutput(usize),
}

/// One cycle of a compiled schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleCycle {
    /// A parallel V-op cycle: per-cell TE literals (`None` = dummy, TE
    /// follows BE) and the shared BE literal.
    VOp {
        /// TE literal per cell.
        te: Vec<Option<Literal>>,
        /// Shared BE literal.
        be: Literal,
    },
    /// A MAGIC R-op cycle on the given cells.
    ROp {
        /// Index of the R-op in the circuit.
        rop: usize,
        /// Input cell indices.
        inputs: Vec<usize>,
        /// Output cell index.
        output: usize,
    },
    /// A readout cycle for circuit output `output_index` from `cell`.
    Read {
        /// Which circuit output is read.
        output_index: usize,
        /// The cell holding it.
        cell: usize,
    },
}

/// A cycle-accurate line-array program compiled from an [`MmCircuit`].
///
/// Compilation performs the physical lowering the paper's PCB/LabVIEW setup
/// does by hand: assigns every circuit element to a cell, pads short legs
/// with dummy cycles, checks the shared-BE restriction, preloads
/// literal-feed devices, pre-sets MAGIC output cells to LRS, serializes the
/// R-ops and appends readout cycles.
///
/// # Example
///
/// ```
/// use mm_boolfn::Literal;
/// use mm_circuit::{MmCircuit, ROp, Schedule, Signal, VLeg, VOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = MmCircuit::builder(2)
///     .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
///     .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
///     .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
///     .output(Signal::ROp(0))
///     .build()?;
/// let schedule = Schedule::compile(&circuit)?;
/// assert_eq!(schedule.n_cells(), 3);
/// assert_eq!(schedule.run_ideal(0b10), vec![false]); // NOR(1, 0)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    n_inputs: u8,
    roles: Vec<CellRole>,
    /// Cell states established in the init phase (before cycle 0).
    init_states: Vec<bool>,
    cycles: Vec<ScheduleCycle>,
    /// Cell holding each circuit output.
    output_cells: Vec<usize>,
}

impl Schedule {
    /// Compiles a circuit into a line-array schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SharedBeConflict`] if two legs demand
    /// different BE literals in the same step (physically impossible on a
    /// shared bottom electrode) and [`CircuitError::UnsupportedROpKind`]
    /// for non-MAGIC R-ops, which the electrical line-array model does not
    /// implement (the paper's experiments are MAGIC-NOR on BFO only).
    pub fn compile(circuit: &MmCircuit) -> Result<Self, CircuitError> {
        for (j, rop) in circuit.rops().iter().enumerate() {
            if rop.kind != ROpKind::MagicNor {
                return Err(CircuitError::UnsupportedROpKind {
                    rop: j,
                    kind: rop.kind,
                });
            }
        }
        let n_legs = circuit.legs().len();
        let mut roles: Vec<CellRole> = (0..n_legs).map(CellRole::Leg).collect();

        // Literal-feed devices (including degenerate literal outputs).
        let mut feeds = circuit.literal_feeds();
        for &o in circuit.outputs() {
            if let Signal::Literal(l) = o {
                if !feeds.contains(&l) {
                    feeds.push(l);
                }
            }
        }
        let feed_base = roles.len();
        roles.extend(feeds.iter().map(|&l| CellRole::LiteralFeed(l)));
        let rout_base = roles.len();
        roles.extend((0..circuit.rops().len()).map(CellRole::ROpOutput));

        let cell_of = |signal: Signal| -> usize {
            match signal {
                Signal::Leg(t) | Signal::LegStep { leg: t, .. } => t,
                Signal::Literal(l) => {
                    feed_base
                        + feeds
                            .iter()
                            .position(|&f| f == l)
                            .expect("feed collected above")
                }
                Signal::ROp(j) => rout_base + j,
            }
        };

        // Init: everything 0, MAGIC output cells pre-set to 1.
        let mut init_states = vec![false; roles.len()];
        for j in 0..circuit.rops().len() {
            init_states[rout_base + j] = true;
        }

        let mut cycles = Vec::new();

        // Preload cycle for literal feeds (legs idle via dummy TE).
        if !feeds.is_empty() {
            let mut te = vec![None; roles.len()];
            for (k, &l) in feeds.iter().enumerate() {
                te[feed_base + k] = Some(l);
            }
            cycles.push(ScheduleCycle::VOp {
                te,
                be: Literal::Const0,
            });
        }

        let output_cells: Vec<usize> = circuit.outputs().iter().map(|&o| cell_of(o)).collect();

        // V-op steps with shared-BE checking and dummy padding. Mid-leg
        // output taps get an interleaved readout cycle right after the step
        // that produces their value (before the leg overwrites it).
        let n_vsteps = circuit.legs().iter().map(|l| l.len()).max().unwrap_or(0);
        for step in 0..n_vsteps {
            let mut be: Option<Literal> = None;
            let mut te = vec![None; roles.len()];
            for (t, leg) in circuit.legs().iter().enumerate() {
                if let Some(op) = leg.ops().get(step) {
                    te[t] = Some(op.te);
                    match be {
                        None => be = Some(op.be),
                        Some(existing) if existing != op.be => {
                            return Err(CircuitError::SharedBeConflict {
                                step,
                                left: existing,
                                right: op.be,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
            cycles.push(ScheduleCycle::VOp {
                te,
                be: be.expect("step < n_vsteps implies at least one active leg"),
            });
            for (i, &o) in circuit.outputs().iter().enumerate() {
                if let Signal::LegStep { leg, step: s } = o {
                    if s == step {
                        cycles.push(ScheduleCycle::Read {
                            output_index: i,
                            cell: leg,
                        });
                    }
                }
            }
        }

        // Serialized R-ops. NOR(a, a) = NOT a: a repeated operand is
        // electrically the same cell connected once, so the cycle lists it
        // once — the device model requires the involved cells be distinct.
        for (j, rop) in circuit.rops().iter().enumerate() {
            let mut inputs = vec![cell_of(rop.in1), cell_of(rop.in2)];
            inputs.dedup();
            cycles.push(ScheduleCycle::ROp {
                rop: j,
                inputs,
                output: rout_base + j,
            });
        }

        // Final readouts for everything not captured mid-sequence.
        for (i, (&cell, &o)) in output_cells.iter().zip(circuit.outputs()).enumerate() {
            if !matches!(o, Signal::LegStep { .. }) {
                cycles.push(ScheduleCycle::Read {
                    output_index: i,
                    cell,
                });
            }
        }

        Ok(Self {
            n_inputs: circuit.n_inputs(),
            roles,
            init_states,
            cycles,
            output_cells,
        })
    }

    /// Number of line-array cells the schedule occupies.
    pub fn n_cells(&self) -> usize {
        self.roles.len()
    }

    /// The role of every cell, in cell order.
    pub fn roles(&self) -> &[CellRole] {
        &self.roles
    }

    /// The compiled cycles, including preload and readout cycles.
    pub fn cycles(&self) -> &[ScheduleCycle] {
        &self.cycles
    }

    /// Number of inputs of the underlying circuit.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// The cells holding each circuit output.
    pub fn output_cells(&self) -> &[usize] {
        &self.output_cells
    }

    /// The cell states established before cycle 0 (MAGIC output cells are
    /// pre-set to 1, everything else cleared).
    pub fn init_states(&self) -> &[bool] {
        &self.init_states
    }

    /// Re-places the schedule onto a (possibly larger) array with known
    /// defective cells, assigning every logical cell to a working physical
    /// position — the repair flow enabled by the paper's discrete line
    /// arrays, whose devices "can be easily replaced after manufacturing or
    /// upon failure in operation" (§I).
    ///
    /// Unused working cells and all dead cells are left untouched (dead
    /// cells get dummy TE levels and never participate in R-ops or reads).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InsufficientWorkingCells`] when fewer than
    /// [`n_cells`](Self::n_cells) positions of the array are alive.
    pub fn place_avoiding(
        &self,
        array_size: usize,
        dead: &[usize],
    ) -> Result<Schedule, CircuitError> {
        let working: Vec<usize> = (0..array_size).filter(|i| !dead.contains(i)).collect();
        if working.len() < self.n_cells() {
            return Err(CircuitError::InsufficientWorkingCells {
                needed: self.n_cells(),
                available: working.len(),
                array_size,
            });
        }
        // Logical cell i -> physical position working[i].
        let map = |i: usize| working[i];
        let mut roles = vec![None; array_size];
        for (i, &r) in self.roles.iter().enumerate() {
            roles[map(i)] = Some(r);
        }
        let mut init_states = vec![false; array_size];
        for (i, &s) in self.init_states.iter().enumerate() {
            init_states[map(i)] = s;
        }
        let cycles = self
            .cycles
            .iter()
            .map(|c| match c {
                ScheduleCycle::VOp { te, be } => {
                    let mut new_te = vec![None; array_size];
                    for (i, &l) in te.iter().enumerate() {
                        new_te[map(i)] = l;
                    }
                    ScheduleCycle::VOp {
                        te: new_te,
                        be: *be,
                    }
                }
                ScheduleCycle::ROp {
                    rop,
                    inputs,
                    output,
                } => ScheduleCycle::ROp {
                    rop: *rop,
                    inputs: inputs.iter().map(|&i| map(i)).collect(),
                    output: map(*output),
                },
                ScheduleCycle::Read { output_index, cell } => ScheduleCycle::Read {
                    output_index: *output_index,
                    cell: map(*cell),
                },
            })
            .collect();
        Ok(Schedule {
            n_inputs: self.n_inputs,
            // Unused positions become spare legs-of-nothing; model them as
            // literal feeds of const-0 so the role vector stays total.
            roles: roles
                .into_iter()
                .map(|r| r.unwrap_or(CellRole::LiteralFeed(Literal::Const0)))
                .collect(),
            init_states,
            cycles,
            output_cells: self.output_cells.iter().map(|&c| map(c)).collect(),
        })
    }

    /// Executes the schedule for input assignment `x` on the given array.
    ///
    /// The array is reset to the schedule's init states first; afterwards
    /// its [`trace`](LineArray::trace) holds the full Fig. 2-style
    /// measurement record. Returns the read-out output values.
    ///
    /// # Panics
    ///
    /// Panics if the array has a different cell count or `x ≥ 2^n`.
    pub fn execute(&self, x: u32, array: &mut LineArray) -> Vec<bool> {
        self.execute_with(x, array, |_, _| {})
    }

    /// Executes the schedule like [`execute`](Self::execute), invoking
    /// `after_cycle(index, array)` after every cycle completes.
    ///
    /// This is the instrumentation hook of the fault-campaign engine: the
    /// callback can snapshot cell states for lockstep comparison against a
    /// healthy run, or inject transient upsets between driven cycles via
    /// [`LineArray::flip_state`].
    ///
    /// # Panics
    ///
    /// Panics if the array has a different cell count or `x ≥ 2^n`.
    pub fn execute_with(
        &self,
        x: u32,
        array: &mut LineArray,
        mut after_cycle: impl FnMut(usize, &mut LineArray),
    ) -> Vec<bool> {
        assert_eq!(
            array.n_cells(),
            self.n_cells(),
            "array size must match the schedule"
        );
        assert!(
            u64::from(x) < (1u64 << self.n_inputs),
            "input assignment out of range"
        );
        array.reset(&self.init_states);
        let mut outputs = vec![false; self.output_cells.len()];
        for (i, cycle) in self.cycles.iter().enumerate() {
            match cycle {
                ScheduleCycle::VOp { te, be } => {
                    let te_levels: Vec<Option<bool>> = te
                        .iter()
                        .map(|l| l.map(|l| l.eval(self.n_inputs, x)))
                        .collect();
                    array.v_op_cycle(&te_levels, be.eval(self.n_inputs, x));
                }
                ScheduleCycle::ROp { inputs, output, .. } => {
                    array.magic_nor(inputs, *output);
                }
                ScheduleCycle::Read { output_index, cell } => {
                    outputs[*output_index] = array.read(*cell) == DeviceState::Lrs;
                }
            }
            after_cycle(i, array);
        }
        outputs
    }

    /// The cells the schedule actually drives, senses or reads, sorted.
    ///
    /// Campaign diagnosis compares healthy and faulty runs on this set
    /// only: spare cells outside the schedule's footprint (e.g. stuck cells
    /// a repair placement routed around) would otherwise implicate
    /// themselves despite never influencing an output.
    pub fn used_cells(&self) -> Vec<usize> {
        let mut used: Vec<usize> = self
            .init_states
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| i)
            .collect();
        for cycle in &self.cycles {
            match cycle {
                ScheduleCycle::VOp { te, .. } => {
                    used.extend(
                        te.iter()
                            .enumerate()
                            .filter(|(_, l)| l.is_some())
                            .map(|(i, _)| i),
                    );
                }
                ScheduleCycle::ROp { inputs, output, .. } => {
                    used.extend(inputs.iter().copied());
                    used.push(*output);
                }
                ScheduleCycle::Read { cell, .. } => used.push(*cell),
            }
        }
        used.extend(self.output_cells.iter().copied());
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Executes the schedule on a fresh ideal array and returns the outputs.
    pub fn run_ideal(&self, x: u32) -> Vec<bool> {
        let mut array = LineArray::ideal(self.n_cells());
        self.execute(x, &mut array)
    }

    /// Verifies the schedule against a specification by executing all `2^n`
    /// input assignments on ideal arrays.
    pub fn verify(&self, spec: &mm_boolfn::MultiOutputFn) -> bool {
        if spec.n_inputs() != self.n_inputs || spec.n_outputs() != self.output_cells.len() {
            return false;
        }
        (0..(1u32 << self.n_inputs)).all(|x| {
            let got = self.run_ideal(x);
            let want: Vec<bool> = (0..spec.n_outputs())
                .map(|i| spec.output(i).expect("index in range").eval(x))
                .collect();
            got == want
        })
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, Literal};

    use super::*;
    use crate::{MmCircuit, ROp, VLeg, VOp};

    fn nor_circuit() -> MmCircuit {
        MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .unwrap()
    }

    #[test]
    fn compile_and_execute_nor() {
        let schedule = Schedule::compile(&nor_circuit()).unwrap();
        assert_eq!(schedule.n_cells(), 3);
        assert!(schedule.verify(&generators::nor_gate(2)));
        // 1 V-op step + 1 R-op + 1 readout.
        assert_eq!(schedule.cycles().len(), 3);
    }

    #[test]
    fn repeated_rop_operand_compiles_to_a_single_input_cell() {
        // NOR(a, a) = NOT a: the decoder may legitimately produce a
        // repeated operand, and the device model requires distinct cells,
        // so compilation must collapse the pair.
        let c = MmCircuit::builder(1)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(0)))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let rop_inputs = schedule
            .cycles()
            .iter()
            .find_map(|cy| match cy {
                ScheduleCycle::ROp { inputs, .. } => Some(inputs.clone()),
                _ => None,
            })
            .expect("schedule has the R-op cycle");
        assert_eq!(rop_inputs.len(), 1);
        let not_gate = mm_boolfn::MultiOutputFn::new(
            "not1",
            vec![mm_boolfn::TruthTable::from_packed(1, 0b01).unwrap()],
        )
        .unwrap();
        assert!(schedule.verify(&not_gate));
    }

    #[test]
    fn execution_matches_symbolic_eval_for_mixed_circuit() {
        // (x1+x2)·~x3 with a cascade and a literal feed.
        let c = MmCircuit::builder(3)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .rop(ROp::nor(Signal::ROp(0), Signal::Literal(Literal::Pos(3))))
            .output(Signal::ROp(1))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let symbolic = &c.eval_outputs()[0];
        for x in 0..8u32 {
            assert_eq!(schedule.run_ideal(x)[0], symbolic.eval(x), "x = {x:03b}");
        }
        // Preload + V-op + 2 R-ops + readout.
        assert_eq!(schedule.cycles().len(), 5);
        assert!(schedule
            .roles()
            .iter()
            .any(|r| matches!(r, CellRole::LiteralFeed(Literal::Pos(3)))));
    }

    #[test]
    fn dummy_padding_for_unequal_legs() {
        // Leg 0 has 2 ops, leg 1 has 1: step 2 must pad leg 1.
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const0)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        let symbolic = &c.eval_outputs()[0];
        for x in 0..4u32 {
            assert_eq!(schedule.run_ideal(x)[0], symbolic.eval(x), "x = {x:02b}");
        }
    }

    #[test]
    fn shared_be_conflict_is_rejected() {
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(2), Literal::Const1)]))
            .rop(ROp::nor(Signal::Leg(0), Signal::Leg(1)))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let err = Schedule::compile(&c).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::SharedBeConflict { step: 0, .. }
        ));
    }

    #[test]
    fn nimp_is_rejected_by_the_electrical_backend() {
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .rop(ROp::nimp(Signal::Leg(0), Signal::Literal(Literal::Pos(2))))
            .output(Signal::ROp(0))
            .build()
            .unwrap();
        let err = Schedule::compile(&c).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::UnsupportedROpKind { rop: 0, .. }
        ));
    }

    #[test]
    fn trace_is_recorded_during_execution() {
        let schedule = Schedule::compile(&nor_circuit()).unwrap();
        let mut array = LineArray::ideal(schedule.n_cells());
        let out = schedule.execute(0b11, &mut array);
        assert_eq!(out, vec![false]);
        // V-op cycle + R-op cycle + read cycle.
        assert_eq!(array.trace().len(), 3);
    }

    #[test]
    fn mid_leg_output_is_read_before_overwrite() {
        // Leg computes x1 at step 1, then transforms to x1·x2 at step 2;
        // output 1 taps the intermediate x1, output 2 the final value.
        let c = MmCircuit::builder(2)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .output(Signal::LegStep { leg: 0, step: 0 })
            .output(Signal::Leg(0))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        for x in 0..4u32 {
            let out = schedule.run_ideal(x);
            let x1 = (x >> 1) & 1 == 1;
            let x2 = x & 1 == 1;
            assert_eq!(out, vec![x1, x1 && x2], "x = {x:02b}");
        }
        // The mid-read cycle must sit between the two V-op cycles.
        let kinds: Vec<&ScheduleCycle> = schedule.cycles().iter().collect();
        assert!(matches!(kinds[0], ScheduleCycle::VOp { .. }));
        assert!(matches!(
            kinds[1],
            ScheduleCycle::Read {
                output_index: 0,
                ..
            }
        ));
        assert!(matches!(kinds[2], ScheduleCycle::VOp { .. }));
    }

    #[test]
    fn mid_leg_rop_input_is_rejected() {
        let err = MmCircuit::builder(2)
            .leg(VLeg::new(vec![
                VOp::new(Literal::Pos(1), Literal::Const0),
                VOp::new(Literal::Pos(2), Literal::Const1),
            ]))
            .rop(ROp::nor(
                Signal::LegStep { leg: 0, step: 0 },
                Signal::Leg(0),
            ))
            .output(Signal::ROp(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CircuitError::MidLegROpInput { leg: 0, step: 0 }
        ));
    }

    #[test]
    fn placement_avoids_dead_cells() {
        use mm_device::DeviceState;
        let schedule = Schedule::compile(&nor_circuit()).unwrap();
        // An 6-cell array with cells 0 and 2 dead (stuck).
        let dead = vec![0usize, 2];
        let placed = schedule.place_avoiding(6, &dead).unwrap();
        assert_eq!(placed.n_cells(), 6);
        for x in 0..4u32 {
            let mut array =
                LineArray::ideal_with_faults(6, &[(0, DeviceState::Lrs), (2, DeviceState::Hrs)]);
            let out = placed.execute(x, &mut array);
            assert_eq!(out[0], x == 0b00, "NOR(x1, x2) at x = {x:02b}");
        }
        // Naive execution on the same faulty array fails for some input.
        let mut naive_wrong = false;
        for x in 0..4u32 {
            let mut array = LineArray::ideal_with_faults(3, &[(0, DeviceState::Lrs)]);
            let out = schedule.execute(x, &mut array);
            if out[0] != (x == 0b00) {
                naive_wrong = true;
            }
        }
        assert!(
            naive_wrong,
            "a stuck input cell must corrupt the naive placement"
        );
    }

    #[test]
    fn placement_rejects_insufficient_cells() {
        let schedule = Schedule::compile(&nor_circuit()).unwrap();
        let err = schedule.place_avoiding(3, &[1]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InsufficientWorkingCells {
                needed: 3,
                available: 2,
                ..
            }
        ));
    }

    #[test]
    fn literal_output_gets_a_feed_cell() {
        let c = MmCircuit::builder(1)
            .leg(VLeg::new(vec![VOp::new(Literal::Pos(1), Literal::Const0)]))
            .output(Signal::Literal(Literal::Neg(1)))
            .build()
            .unwrap();
        let schedule = Schedule::compile(&c).unwrap();
        assert!(schedule.verify(
            &mm_boolfn::MultiOutputFn::new("n1", vec![Literal::Neg(1).truth_table(1)]).unwrap()
        ));
    }
}
