//! Long-running probe of the heavier Table IV rows (run in background).
use mm_boolfn::generators;
use mm_sat::Budget;
use mm_synth::{SynthResult, SynthSpec, Synthesizer};
use std::time::{Duration, Instant};

fn probe(
    name: &str,
    f: &mm_boolfn::MultiOutputFn,
    n_r: usize,
    n_l: usize,
    n_vs: usize,
    budget_s: u64,
) {
    let spec = match (n_l, n_vs) {
        (0, 0) => SynthSpec::r_only(f, n_r).unwrap(),
        _ => SynthSpec::mixed_mode(f, n_r, n_l, n_vs).unwrap(),
    };
    let synth =
        Synthesizer::new().with_budget(Budget::new().with_max_time(Duration::from_secs(budget_s)));
    let t = Instant::now();
    let out = synth.run(&spec).unwrap();
    let kind = match out.result {
        SynthResult::Realizable(_) => "SAT",
        SynthResult::Unrealizable => "UNSAT",
        SynthResult::Unknown => "UNKNOWN",
    };
    println!(
        "{name} (R={n_r}, L={n_l}, VS={n_vs}): {kind} vars={} clauses={} in {:.1?} ({} conflicts)",
        out.encode_stats.n_vars,
        out.encode_stats.n_clauses,
        t.elapsed(),
        out.solver_stats.conflicts
    );
}

fn main() {
    let add2 = generators::ripple_adder(2);
    probe("2-bit adder MM", &add2, 4, 6, 5, 3600); // paper: SAT 109s
    let gfinv = generators::gf16_inversion();
    probe("GF(2^4) inversion MM", &gfinv, 7, 11, 4, 3600); // paper: SAT 1539s
    probe("2-bit adder MM vs-1", &add2, 4, 6, 4, 3600); // optimality: expect UNSAT
    let gf = generators::gf22_multiplier();
    probe("GF(2^2) mult R-only", &gf, 14, 0, 0, 3600); // paper: <=14 SAT
}
