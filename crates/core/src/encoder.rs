//! Construction of the CNF formula `Φ(f, N_V, N_R)` (paper Eqs. 4–10).
//!
//! Variable families (paper §III-A):
//!
//! * `l_{j,q}` — literal truth tables (faithful mode only; folded mode
//!   substitutes the constants directly),
//! * `v_{i,q}` — V-op output values, leg-major order,
//! * `r_{i,q}` — R-op output values,
//! * `o_{i,q}` — specified outputs (faithful mode only),
//! * `g^TE_{i,j}`, `g^BE_{·,j}` — V-op electrode connectivity,
//! * `g^In1/In2_{i,j}` — R-op input connectivity over the producer space
//!   (literals, then V-leg results, then preceding R-ops),
//! * `g^O_{i,j}` — output connectivity over the full producer space.
//!
//! One deliberate deviation from the paper's letter: **R-op inputs**
//! connect to a V-*leg's final value* rather than to arbitrary intermediate
//! V-ops. Intermediate values are physically overwritten by the remainder
//! of the leg before any R-op executes, so arbitrary-V-op R-op taps would
//! admit unimplementable schedules; leg-final taps lose no generality
//! because legs can end early with dummy cycles (which the solver is free
//! to synthesize as TE = BE steps). The paper's own decoded example taps
//! "the last V-op V6.3" (§III-B). **Outputs**, by contrast, range over
//! every V-op exactly as in the paper: an intermediate value can be
//! captured by an interleaved readout cycle before the leg overwrites it —
//! this is what makes the adder leg convention `N_L = N_R + N_O − 1` work
//! (the carry output shares a leg with an R-op feed).

#![allow(clippy::needless_range_loop)] // index loops keep paired arrays in lockstep

use std::time::{Duration, Instant};

use mm_boolfn::{Literal, LiteralSet};
use mm_circuit::ROpKind;
use mm_sat::{CnfFormula, Lit};

use crate::{EncodeMode, SharedBe, SynthError, SynthSpec};

/// Size and timing of one encoded formula (the `Vars`/`Clauses` columns of
/// the paper's Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncodeStats {
    /// Number of CNF variables.
    pub n_vars: u32,
    /// Number of CNF clauses.
    pub n_clauses: usize,
    /// Wall-clock encoding time.
    pub encode_time: Duration,
}

/// A producer's value on one truth-table row: a folded constant or a CNF
/// variable.
#[derive(Debug, Clone, Copy)]
enum Val {
    Const(bool),
    Var(Lit),
}

/// The encoded formula together with the variable map needed for decoding.
#[derive(Debug)]
pub(crate) struct Encoded {
    pub cnf: CnfFormula,
    pub stats: EncodeStats,
    pub map: VarMap,
}

/// Variable handles for decoding a model back into a circuit.
#[derive(Debug)]
pub(crate) struct VarMap {
    /// The admissible literal list, in selector order.
    pub literals: Vec<Literal>,
    /// `g^TE[vop][lit]`.
    pub g_te: Vec<Vec<Lit>>,
    /// `g^BE[step or vop][lit]` (per-step when `SharedBe::PerStepVar`).
    pub g_be: Vec<Vec<Lit>>,
    /// Whether `g_be` is indexed by step (true) or by V-op (false).
    pub be_per_step: bool,
    /// `g^In1[rop][producer]`, `g^In2[rop][producer]`.
    pub g_in: [Vec<Vec<Lit>>; 2],
    /// `g^O[output][producer]`.
    pub g_o: Vec<Vec<Lit>>,
    /// `v[vop][row]` — V-op output values, leg-major. Not needed for
    /// decoding, but the shared-base incremental encoding guards them with
    /// passthrough clauses (empty in a projected map).
    pub v_vars: Vec<Vec<Lit>>,
}

/// Number of producers visible to R-op `i`: literals, legs, preceding
/// R-ops.
fn rop_producers(spec: &SynthSpec, n_lit: usize, i: usize) -> usize {
    n_lit + spec.n_legs() + i
}

pub(crate) fn encode(spec: &SynthSpec) -> Result<Encoded, SynthError> {
    let start = Instant::now();
    let f = spec.function();
    let n = f.n_inputs();
    let n_rows = f.n_rows();
    let options = spec.options();

    let literals: Vec<Literal> = match &options.allowed_literals {
        Some(list) => {
            for l in list {
                if let Some(v) = l.variable() {
                    if v == 0 || v > n {
                        return Err(SynthError::InvalidConstraint {
                            reason: format!("literal {l} out of range for {n} inputs"),
                        });
                    }
                }
            }
            list.clone()
        }
        None => LiteralSet::new(n).iter().collect(),
    };
    let n_lit = literals.len();
    if n_lit == 0 {
        return Err(SynthError::InvalidConstraint {
            reason: "allowed literal set must not be empty".into(),
        });
    }
    // Folded literal values: lit_vals[j][q].
    let lit_vals: Vec<Vec<bool>> = literals
        .iter()
        .map(|l| (0..n_rows as u32).map(|q| l.eval(n, q)).collect())
        .collect();

    let mut cnf = CnfFormula::new();
    let faithful = options.mode == EncodeMode::Faithful;

    // Eq. 4: literal variables with unit clauses (faithful mode only).
    let l_vars: Option<Vec<Vec<Lit>>> = faithful.then(|| {
        literals
            .iter()
            .enumerate()
            .map(|(j, _)| {
                (0..n_rows)
                    .map(|q| {
                        let x = cnf.new_lit();
                        cnf.add_unit(if lit_vals[j][q] { x } else { !x });
                        x
                    })
                    .collect()
            })
            .collect()
    });

    let n_vops = spec.n_vops();
    let n_vsteps = spec.n_vsteps();
    let v_vars: Vec<Vec<Lit>> = (0..n_vops)
        .map(|_| (0..n_rows).map(|_| cnf.new_lit()).collect())
        .collect();
    let r_vars: Vec<Vec<Lit>> = (0..spec.n_rops())
        .map(|_| (0..n_rows).map(|_| cnf.new_lit()).collect())
        .collect();

    let g_te: Vec<Vec<Lit>> = (0..n_vops)
        .map(|_| (0..n_lit).map(|_| cnf.new_lit()).collect())
        .collect();
    let be_per_step = options.shared_be == SharedBe::PerStepVar;
    let n_be_rows = if be_per_step { n_vsteps } else { n_vops };
    let g_be: Vec<Vec<Lit>> = (0..n_be_rows)
        .map(|_| (0..n_lit).map(|_| cnf.new_lit()).collect())
        .collect();
    let g_in: [Vec<Vec<Lit>>; 2] = [0, 1].map(|_| {
        (0..spec.n_rops())
            .map(|i| {
                (0..rop_producers(spec, n_lit, i))
                    .map(|_| cnf.new_lit())
                    .collect()
            })
            .collect()
    });
    // Output taps range over *every* V-op (paper-exact): intermediate leg
    // values are readable through interleaved readout cycles. R-op inputs
    // range over leg-final values only (see the module docs).
    let n_prod_out = n_lit + n_vops + spec.n_rops();
    let g_o: Vec<Vec<Lit>> = (0..f.n_outputs())
        .map(|_| (0..n_prod_out).map(|_| cnf.new_lit()).collect())
        .collect();

    // Producer value lookup for R-op inputs (literal / leg-final / R-op).
    let value_of = |j: usize, q: usize| -> Val {
        if j < n_lit {
            match &l_vars {
                Some(l) => Val::Var(l[j][q]),
                None => Val::Const(lit_vals[j][q]),
            }
        } else if j < n_lit + spec.n_legs() {
            let leg = j - n_lit;
            Val::Var(v_vars[leg * n_vsteps + n_vsteps - 1][q])
        } else {
            Val::Var(r_vars[j - n_lit - spec.n_legs()][q])
        }
    };

    // Producer value lookup for outputs (literal / any V-op / R-op).
    let out_value_of = |j: usize, q: usize| -> Val {
        if j < n_lit {
            match &l_vars {
                Some(l) => Val::Var(l[j][q]),
                None => Val::Const(lit_vals[j][q]),
            }
        } else if j < n_lit + n_vops {
            Val::Var(v_vars[j - n_lit][q])
        } else {
            Val::Var(r_vars[j - n_lit - n_vops][q])
        }
    };

    // Eq. 5: V-op semantics.
    for i in 0..n_vops {
        let step = i % n_vsteps;
        let be_row = if be_per_step { step } else { i };
        let prev = |q: usize| -> Val {
            if step == 0 {
                Val::Const(false)
            } else {
                Val::Var(v_vars[i - 1][q])
            }
        };
        for j in 0..n_lit {
            for k in 0..n_lit {
                let guard = [g_te[i][j], g_be[be_row][k]];
                for q in 0..n_rows {
                    let v = v_vars[i][q];
                    if faithful {
                        // V ≡ (A ∧ ¬B) ∨ (P ∧ (A ≡ B)) over the l-variables.
                        let l = l_vars.as_ref().expect("faithful mode allocates l");
                        let a = l[j][q];
                        let b = l[k][q];
                        match prev(q) {
                            Val::Var(p) => {
                                for bits in 0..8u8 {
                                    let (av, bv, pv) =
                                        (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
                                    let out = if av != bv { av } else { pv };
                                    cnf.add_clause([
                                        !guard[0],
                                        !guard[1],
                                        if av { !a } else { a },
                                        if bv { !b } else { b },
                                        if pv { !p } else { p },
                                        if out { v } else { !v },
                                    ]);
                                }
                            }
                            Val::Const(pc) => {
                                for bits in 0..4u8 {
                                    let (av, bv) = (bits & 1 != 0, bits & 2 != 0);
                                    let out = if av != bv { av } else { pc };
                                    cnf.add_clause([
                                        !guard[0],
                                        !guard[1],
                                        if av { !a } else { a },
                                        if bv { !b } else { b },
                                        if out { v } else { !v },
                                    ]);
                                }
                            }
                        }
                    } else {
                        let te = lit_vals[j][q];
                        let be = lit_vals[k][q];
                        if te != be {
                            cnf.add_clause([!guard[0], !guard[1], if te { v } else { !v }]);
                        } else {
                            match prev(q) {
                                Val::Const(pc) => {
                                    cnf.add_clause([!guard[0], !guard[1], if pc { v } else { !v }]);
                                }
                                Val::Var(p) => {
                                    cnf.add_guarded_iff(&guard, v, p);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Eq. 6: unique electrode drivers.
    for row in &g_te {
        cnf.exactly_one(row, options.mutex);
    }
    for row in &g_be {
        cnf.exactly_one(row, options.mutex);
    }
    // Paper-shaped shared BE: equality clauses between same-step V-ops of
    // adjacent legs.
    if options.shared_be == SharedBe::EqualityClauses {
        for leg in 0..spec.n_legs().saturating_sub(1) {
            for step in 0..n_vsteps {
                let i1 = leg * n_vsteps + step;
                let i2 = (leg + 1) * n_vsteps + step;
                for k in 0..n_lit {
                    cnf.add_clause([g_be[i1][k], !g_be[i2][k]]);
                    cnf.add_clause([!g_be[i1][k], g_be[i2][k]]);
                }
            }
        }
    }

    // Eq. 7: R-op semantics. With symmetry breaking, commutative R-ops only
    // admit ordered input pairs (in1 ≤ in2); the skipped combinations are
    // explicitly forbidden.
    let commutative = spec.rop_kind().is_commutative();
    let order_inputs = options.symmetry_breaking && commutative;
    for i in 0..spec.n_rops() {
        let n_prod = rop_producers(spec, n_lit, i);
        for j in 0..n_prod {
            for k in 0..n_prod {
                let guard = [g_in[0][i][j], g_in[1][i][k]];
                if order_inputs && j > k {
                    cnf.add_clause([!guard[0], !guard[1]]);
                    continue;
                }
                for q in 0..n_rows {
                    let r = r_vars[i][q];
                    let a = value_of(j, q);
                    let b = value_of(k, q);
                    encode_rop_row(&mut cnf, spec.rop_kind(), &guard, r, a, b);
                }
            }
        }
    }

    // Eq. 8: unique R-op inputs.
    for side in &g_in {
        for row in side {
            cnf.exactly_one(row, options.mutex);
        }
    }

    // No-cascade constraint: forbid R-op producers on R-op inputs.
    if options.forbid_rop_cascade {
        for i in 0..spec.n_rops() {
            for side in &g_in {
                for j in (n_lit + spec.n_legs())..rop_producers(spec, n_lit, i) {
                    cnf.add_unit(!side[i][j]);
                }
            }
        }
    }

    // Eqs. 9–10: outputs.
    let o_vars: Option<Vec<Vec<Lit>>> = faithful.then(|| {
        (0..f.n_outputs())
            .map(|i| {
                (0..n_rows)
                    .map(|q| {
                        let x = cnf.new_lit();
                        let target = f.output(i).expect("index in range").get(q);
                        cnf.add_unit(if target { x } else { !x });
                        x
                    })
                    .collect()
            })
            .collect()
    });
    for (i, row) in g_o.iter().enumerate() {
        let target = f.output(i).expect("index in range");
        for (j, &g) in row.iter().enumerate() {
            match &o_vars {
                Some(o) => {
                    for q in 0..n_rows {
                        match out_value_of(j, q) {
                            Val::Var(x) => cnf.add_guarded_iff(&[g], o[i][q], x),
                            Val::Const(c) => {
                                let ov = o[i][q];
                                cnf.add_clause([!g, if c { ov } else { !ov }]);
                            }
                        }
                    }
                }
                None => {
                    for q in 0..n_rows {
                        let t = target.get(q);
                        match out_value_of(j, q) {
                            Val::Const(c) => {
                                if c != t {
                                    cnf.add_unit(!g);
                                    break;
                                }
                            }
                            Val::Var(x) => {
                                cnf.add_clause([!g, if t { x } else { !x }]);
                            }
                        }
                    }
                }
            }
        }
        cnf.exactly_one(row, options.mutex);
    }

    // Cell-avoidance constraint: the compiled schedule occupies
    // N_L + N_R + (#distinct literal feeds) cells — one per leg, one per
    // R-op output, and one preloaded device per distinct literal consumed
    // by an R-op input or tapped by an output. Bounding the number of
    // distinct feed literals therefore guarantees the schedule fits into
    // the array's working cells, and `place_avoiding` can always route
    // around the dead ones.
    if let Some(avoidance) = spec.cell_avoidance() {
        let dead = avoidance.dead_cells();
        if let Some(&cell) = dead.iter().find(|&&c| c >= avoidance.array_size) {
            return Err(SynthError::InvalidConstraint {
                reason: format!(
                    "avoided cell {cell} is outside the {}-cell array",
                    avoidance.array_size
                ),
            });
        }
        let working = avoidance.array_size - dead.len();
        let fixed = spec.n_legs() + spec.n_rops();
        if working < fixed {
            return Err(SynthError::InvalidConstraint {
                reason: format!(
                    "schedule needs at least {fixed} cells ({} legs + {} R-ops) \
                     but only {working} of {} work",
                    spec.n_legs(),
                    spec.n_rops(),
                    avoidance.array_size
                ),
            });
        }
        let feed_budget = working - fixed;
        if feed_budget < n_lit {
            // feed_used[j] is implied true whenever any R-op input or
            // output selector picks literal j; at-most-k over them caps the
            // distinct feeds. (One-sided implications suffice: the solver
            // can only relax feed_used[j] when literal j is unused.)
            let feed_used: Vec<Lit> = (0..n_lit).map(|_| cnf.new_lit()).collect();
            for side in &g_in {
                for row in side {
                    for j in 0..n_lit {
                        cnf.add_implies(row[j], feed_used[j]);
                    }
                }
            }
            for row in &g_o {
                for j in 0..n_lit {
                    cnf.add_implies(row[j], feed_used[j]);
                }
            }
            cnf.at_most_k(&feed_used, feed_budget);
        }
    }

    // Designer constraints: forced TE literals.
    for &(leg, step, literal) in &options.forced_te {
        if leg >= spec.n_legs() || step >= n_vsteps {
            return Err(SynthError::InvalidConstraint {
                reason: format!("forced TE targets V-op ({leg}, {step}) outside the spec"),
            });
        }
        let j = literals.iter().position(|&l| l == literal).ok_or_else(|| {
            SynthError::InvalidConstraint {
                reason: format!("forced TE literal {literal} is not admissible"),
            }
        })?;
        cnf.add_unit(g_te[leg * n_vsteps + step][j]);
    }

    // Leg-permutation symmetry breaking: the first-step TE selector indices
    // must be non-decreasing across legs. Disabled when explicit TE
    // constraints distinguish legs.
    if options.symmetry_breaking && options.forced_te.is_empty() && spec.n_legs() > 1 {
        for leg in 0..spec.n_legs() - 1 {
            let i1 = leg * n_vsteps;
            let i2 = (leg + 1) * n_vsteps;
            for j in 0..n_lit {
                // te_idx(leg+1) = j -> te_idx(leg) <= j.
                let mut clause: Vec<Lit> = vec![!g_te[i2][j]];
                clause.extend((0..=j).map(|j2| g_te[i1][j2]));
                cnf.add_clause(clause);
            }
        }
    }

    let stats = EncodeStats {
        n_vars: cnf.n_vars(),
        n_clauses: cnf.n_clauses(),
        encode_time: start.elapsed(),
    };
    Ok(Encoded {
        cnf,
        stats,
        map: VarMap {
            literals,
            g_te,
            g_be,
            be_per_step,
            g_in,
            g_o,
            v_vars,
        },
    })
}

/// Whether a spec's ladder may run on the shared-base incremental engine.
///
/// Cell avoidance is excluded because its feed-literal budget counts the
/// selector columns of *disabled* R-ops too, breaking the equisatisfiability
/// argument below. Forced-TE constraints are excluded because their
/// positions are rung-relative (a forced V-op may not exist on smaller
/// rungs).
pub(crate) fn incremental_compatible(spec: &SynthSpec) -> bool {
    spec.cell_avoidance().is_none() && spec.options().forced_te.is_empty()
}

/// A shared base encoding of `Φ(f)` at maximal budgets, with *disable*
/// assumption literals guarding every rung-varying constraint.
///
/// Three families of fresh literals are appended to the maximal encoding:
/// `d_step[s]`, `d_leg[l]`, `d_rop[p]`. Asserting one removes the
/// corresponding resource from the circuit:
///
/// * `d_step[s]` forces step `s` of **every** leg to be a passthrough
///   (`v_i ≡ v_{i−1}`, or `¬v_i` at `s = 0`) and forbids output taps of
///   that step. The passthrough is what keeps the base layout's leg-final
///   column — which R-op inputs read — equal to the last *enabled* step's
///   value.
/// * `d_leg[l]` forbids R-op inputs and output taps of leg `l`.
/// * `d_rop[p]` forbids later R-ops' inputs and output taps of R-op `p`.
///
/// A rung `(n_rops, n_legs, n_vsteps)` is then solved under the assumption
/// set that disables the suffix of each family (see
/// [`SharedBase::assumptions_for`]). The disable literals appear only in
/// guard position (`¬d ∨ …`), so with all of them free the base encoding
/// is exactly `encode(base_spec)` plus vacuously satisfiable guards — and
/// under a rung's assumptions it is equisatisfiable with the rung's cold
/// encoding: a cold model extends to the base (disabled steps become
/// TE = BE passthrough cycles, disabled legs/R-ops pick arbitrary
/// untapped configurations), and a base model restricted to the enabled
/// selector columns ([`SharedBase::project_map`]) decodes as a rung
/// circuit, which `Synthesizer` verifies against `f` as usual.
#[derive(Debug)]
pub(crate) struct SharedBase {
    /// The maximal-budget spec this base was built from.
    pub base_spec: SynthSpec,
    pub cnf: CnfFormula,
    pub stats: EncodeStats,
    map: VarMap,
    d_rop: Vec<Lit>,
    d_leg: Vec<Lit>,
    d_step: Vec<Lit>,
}

pub(crate) fn encode_shared_base(base_spec: &SynthSpec) -> Result<SharedBase, SynthError> {
    debug_assert!(incremental_compatible(base_spec));
    let start = Instant::now();
    let Encoded { mut cnf, map, .. } = encode(base_spec)?;
    let n_lit = map.literals.len();
    let n_rows = base_spec.function().n_rows();
    let (max_rops, max_legs, max_vsteps) =
        (base_spec.n_rops(), base_spec.n_legs(), base_spec.n_vsteps());

    let d_step = cnf.new_lits(max_vsteps);
    let d_leg = cnf.new_lits(max_legs);
    let d_rop = cnf.new_lits(max_rops);

    for (st, &d) in d_step.iter().enumerate() {
        for leg in 0..max_legs {
            let i = leg * max_vsteps + st;
            // No output may tap a disabled step …
            for out_row in &map.g_o {
                cnf.add_clause([!d, !out_row[n_lit + i]]);
            }
            // … and the step passes its predecessor's value through, so
            // the leg-final column (read by R-op inputs) carries the last
            // enabled step's value.
            for q in 0..n_rows {
                let v = map.v_vars[i][q];
                if st == 0 {
                    cnf.add_clause([!d, !v]);
                } else {
                    cnf.add_guarded_iff(&[d], v, map.v_vars[i - 1][q]);
                }
            }
        }
    }

    for (leg, &d) in d_leg.iter().enumerate() {
        // No R-op may read a disabled leg's final value …
        for side in &map.g_in {
            for row in side {
                cnf.add_clause([!d, !row[n_lit + leg]]);
            }
        }
        // … and no output may tap any of its V-ops.
        for st in 0..max_vsteps {
            let col = n_lit + leg * max_vsteps + st;
            for out_row in &map.g_o {
                cnf.add_clause([!d, !out_row[col]]);
            }
        }
    }

    for (p, &d) in d_rop.iter().enumerate() {
        // No later R-op may read a disabled R-op …
        for side in &map.g_in {
            for (i, row) in side.iter().enumerate() {
                if i > p {
                    cnf.add_clause([!d, !row[n_lit + max_legs + p]]);
                }
            }
        }
        // … and no output may tap it.
        let col = n_lit + max_legs * max_vsteps + p;
        for out_row in &map.g_o {
            cnf.add_clause([!d, !out_row[col]]);
        }
    }

    let stats = EncodeStats {
        n_vars: cnf.n_vars(),
        n_clauses: cnf.n_clauses(),
        encode_time: start.elapsed(),
    };
    Ok(SharedBase {
        base_spec: base_spec.clone(),
        cnf,
        stats,
        map,
        d_rop,
        d_leg,
        d_step,
    })
}

impl SharedBase {
    /// The assumption set selecting rung `spec`: disable the suffix of
    /// every resource family beyond the rung's budgets.
    pub fn assumptions_for(&self, spec: &SynthSpec) -> Vec<Lit> {
        debug_assert!(spec.n_rops() <= self.base_spec.n_rops());
        debug_assert!(spec.n_legs() <= self.base_spec.n_legs());
        debug_assert!(spec.n_vsteps() <= self.base_spec.n_vsteps());
        let mut assumptions =
            Vec::with_capacity(self.d_rop.len() + self.d_leg.len() + self.d_step.len());
        assumptions.extend_from_slice(&self.d_rop[spec.n_rops()..]);
        assumptions.extend_from_slice(&self.d_leg[spec.n_legs()..]);
        assumptions.extend_from_slice(&self.d_step[spec.n_vsteps()..]);
        assumptions
    }

    /// Every guard variable of the base encoding, across all three
    /// resource families.
    ///
    /// A warm ladder descends by *growing* its assumption set rung by
    /// rung, so the solver must be told up front that all of these
    /// variables can become assumptions: callers freeze them before the
    /// first solve to keep inprocessing's variable elimination away from
    /// the whole family, not just the current rung's suffix.
    pub fn guard_vars(&self) -> impl Iterator<Item = mm_sat::Var> + '_ {
        self.d_rop
            .iter()
            .chain(self.d_leg.iter())
            .chain(self.d_step.iter())
            .map(|l| l.var())
    }

    /// Restricts the base variable map to rung `spec`'s selector columns,
    /// yielding a map the ordinary decoder accepts for that rung.
    ///
    /// The guard clauses guarantee that in a model under the rung's
    /// assumptions, every selector row places its single `true` inside the
    /// projected columns (disabled columns are all forced false), so
    /// `decoder::decode`'s exactly-one check carries over.
    pub fn project_map(&self, spec: &SynthSpec) -> VarMap {
        let n_lit = self.map.literals.len();
        let (max_legs, max_vsteps) = (self.base_spec.n_legs(), self.base_spec.n_vsteps());
        let (n_rops, n_legs, n_vsteps) = (spec.n_rops(), spec.n_legs(), spec.n_vsteps());
        let vop_rows = |rows: &[Vec<Lit>]| -> Vec<Vec<Lit>> {
            (0..n_legs)
                .flat_map(|leg| (0..n_vsteps).map(move |st| rows[leg * max_vsteps + st].clone()))
                .collect()
        };
        let g_te = vop_rows(&self.map.g_te);
        let g_be = if self.map.be_per_step {
            self.map.g_be[..n_vsteps].to_vec()
        } else {
            vop_rows(&self.map.g_be)
        };
        let g_in = [0, 1].map(|side: usize| {
            (0..n_rops)
                .map(|i| {
                    let row = &self.map.g_in[side][i];
                    let mut projected = Vec::with_capacity(n_lit + n_legs + i);
                    projected.extend_from_slice(&row[..n_lit + n_legs]);
                    projected.extend((0..i).map(|p| row[n_lit + max_legs + p]));
                    projected
                })
                .collect()
        });
        let g_o = self
            .map
            .g_o
            .iter()
            .map(|row| {
                let mut projected = Vec::with_capacity(n_lit + n_legs * n_vsteps + n_rops);
                projected.extend_from_slice(&row[..n_lit]);
                for leg in 0..n_legs {
                    for st in 0..n_vsteps {
                        projected.push(row[n_lit + leg * max_vsteps + st]);
                    }
                }
                projected.extend((0..n_rops).map(|p| row[n_lit + max_legs * max_vsteps + p]));
                projected
            })
            .collect();
        VarMap {
            literals: self.map.literals.clone(),
            g_te,
            g_be,
            be_per_step: self.map.be_per_step,
            g_in,
            g_o,
            v_vars: Vec::new(),
        }
    }
}

/// Emits `guard → (r ≡ kind(a, b))` for one row, folding constants.
fn encode_rop_row(cnf: &mut CnfFormula, kind: ROpKind, guard: &[Lit; 2], r: Lit, a: Val, b: Val) {
    let (g0, g1) = (!guard[0], !guard[1]);
    match kind {
        ROpKind::MagicNor => match (a, b) {
            (Val::Const(a), Val::Const(b)) => {
                let out = !(a | b);
                cnf.add_clause([g0, g1, if out { r } else { !r }]);
            }
            (Val::Const(true), Val::Var(_)) | (Val::Var(_), Val::Const(true)) => {
                cnf.add_clause([g0, g1, !r]);
            }
            (Val::Const(false), Val::Var(x)) | (Val::Var(x), Val::Const(false)) => {
                // r ≡ ¬x
                cnf.add_clause([g0, g1, !x, !r]);
                cnf.add_clause([g0, g1, x, r]);
            }
            (Val::Var(x), Val::Var(y)) => {
                cnf.add_guarded_nor(guard, r, x, y);
            }
        },
        ROpKind::Nimp => match (a, b) {
            (Val::Const(a), Val::Const(b)) => {
                let out = a & !b;
                cnf.add_clause([g0, g1, if out { r } else { !r }]);
            }
            (Val::Const(false), Val::Var(_)) => cnf.add_clause([g0, g1, !r]),
            (Val::Const(true), Val::Var(y)) => {
                // r ≡ ¬y
                cnf.add_clause([g0, g1, !y, !r]);
                cnf.add_clause([g0, g1, y, r]);
            }
            (Val::Var(_), Val::Const(true)) => cnf.add_clause([g0, g1, !r]),
            (Val::Var(x), Val::Const(false)) => {
                // r ≡ x
                cnf.add_clause([g0, g1, !x, r]);
                cnf.add_clause([g0, g1, x, !r]);
            }
            (Val::Var(x), Val::Var(y)) => {
                cnf.add_guarded_nimp(guard, r, x, y);
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::*;
    use crate::EncodeOptions;

    #[test]
    fn encoding_produces_nonempty_formula() {
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 2).unwrap();
        let enc = encode(&spec).unwrap();
        assert!(enc.stats.n_vars > 0);
        assert!(enc.stats.n_clauses > 0);
        assert_eq!(enc.map.g_te.len(), 2);
        assert!(enc.map.be_per_step);
    }

    #[test]
    fn faithful_mode_is_larger_than_folded() {
        let f = generators::gf22_multiplier();
        let spec = SynthSpec::mixed_mode(&f, 2, 4, 2).unwrap();
        let folded = encode(&spec).unwrap();
        let faithful_spec = spec.clone().with_options(EncodeOptions {
            mode: EncodeMode::Faithful,
            shared_be: SharedBe::EqualityClauses,
            ..EncodeOptions::recommended()
        });
        let faithful = encode(&faithful_spec).unwrap();
        assert!(faithful.stats.n_vars > folded.stats.n_vars);
        assert!(faithful.stats.n_clauses > folded.stats.n_clauses);
        assert!(!faithful.map.be_per_step);
    }

    #[test]
    fn invalid_constraints_are_rejected() {
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1)
            .unwrap()
            .with_options(EncodeOptions {
                forced_te: vec![(3, 0, mm_boolfn::Literal::Pos(1))],
                ..EncodeOptions::default()
            });
        assert!(matches!(
            encode(&spec),
            Err(SynthError::InvalidConstraint { .. })
        ));

        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1)
            .unwrap()
            .with_options(EncodeOptions {
                allowed_literals: Some(vec![mm_boolfn::Literal::Pos(5)]),
                ..EncodeOptions::default()
            });
        assert!(matches!(
            encode(&spec),
            Err(SynthError::InvalidConstraint { .. })
        ));
    }
}
