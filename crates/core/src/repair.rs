//! Self-repairing synthesis: diagnose → avoid → resynthesize.
//!
//! The paper motivates discrete line arrays with repairability: devices
//! "can be easily replaced after manufacturing or upon failure in
//! operation" (§I). This module automates the software half of that story.
//! Given a synthesized schedule that misbehaves on faulty hardware (as
//! witnessed by a fault-injection campaign,
//! [`mm_circuit::campaign`]), the repair loop:
//!
//! 1. runs the campaign and reads the per-cell failure attribution,
//! 2. adds the implicated cells (stuck or transiently upset — the
//!    avoidable fault classes) to the spec's
//!    [cell-avoidance constraint](crate::SynthSpec::with_cell_avoidance),
//! 3. resynthesizes with an escalating budget — the avoidance is enforced
//!    *inside the CNF formula*, so the new schedule provably never touches
//!    the diagnosed cells — and repeats, up to a retry bound.
//!
//! Certification ([`Synthesizer::with_certification`]) applies to every
//! retry: each resynthesis re-verifies its circuit on the device model and
//! re-checks any UNSAT sub-answers, so a repaired circuit is exactly as
//! trustworthy as a first-try one.
//!
//! Variability-class failures are *not* repairable by placement (every cell
//! varies); the loop reports them as unrepairable instead of looping
//! forever.

use mm_circuit::campaign::{run_campaign_traced, CampaignConfig, CampaignReport, FaultClass};
use mm_circuit::{FaultPlan, MmCircuit, ROpKind, Schedule};
use mm_sat::Budget;
use mm_telemetry::kv;

use crate::{SynthError, SynthResult, SynthSpec, Synthesizer};

/// Configuration of a repair loop.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Total cells of the physical array the schedule must fit on.
    pub array_size: usize,
    /// Maximum number of *re*-synthesis rounds after the initial one.
    pub max_retries: usize,
    /// Conflict-budget multiplier applied per retry (resynthesis under
    /// fresh constraints may be harder than the original problem). Only
    /// affects budgets with a conflict limit; unlimited budgets stay
    /// unlimited and deadlines are shared, not scaled.
    pub budget_escalation: u32,
    /// The fault campaign each candidate schedule is validated against.
    pub campaign: CampaignConfig,
}

impl RepairConfig {
    /// A repair loop on an `array_size`-cell array with 4 retries, 2×
    /// budget escalation and the default campaign configuration.
    pub fn new(array_size: usize) -> Self {
        Self {
            array_size,
            max_retries: 4,
            budget_escalation: 2,
            campaign: CampaignConfig::default(),
        }
    }
}

/// One diagnose-and-avoid round of a repair loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairAttempt {
    /// Cells avoided when this round's circuit was synthesized.
    pub avoided: Vec<usize>,
    /// Failing campaign executions of this round's schedule.
    pub failures: u32,
    /// Cells the campaign newly implicated (stuck or transient class).
    pub newly_implicated: Vec<usize>,
}

/// How a repair loop ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairStatus {
    /// The first synthesized schedule already survived the campaign; no
    /// repair was needed.
    Clean,
    /// At least one diagnose-and-avoid round ran, and the final schedule
    /// survives the campaign on the faulty array.
    Repaired,
    /// The loop stopped without a fault-free schedule (budgets exhausted,
    /// avoidance made the spec infeasible, unattributable failures, or the
    /// retry bound). The outcome still carries the best-known circuit when
    /// one exists — graceful degradation, not an error.
    Unrepairable {
        /// Why the loop gave up.
        reason: String,
    },
}

/// The result of [`synthesize_with_repair`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The last synthesized circuit, if any round produced one.
    pub circuit: Option<MmCircuit>,
    /// Its schedule placed on the physical array, routing around every
    /// avoided cell.
    pub placement: Option<Schedule>,
    /// The last campaign report (absent only when no circuit was found).
    pub report: Option<CampaignReport>,
    /// All cells avoided by the final placement.
    pub avoided: Vec<usize>,
    /// Every diagnose-and-avoid round, in order.
    pub attempts: Vec<RepairAttempt>,
    /// How the loop ended.
    pub status: RepairStatus,
}

impl RepairOutcome {
    /// Whether the final schedule survives the campaign fault-free.
    pub fn succeeded(&self) -> bool {
        matches!(self.status, RepairStatus::Clean | RepairStatus::Repaired)
    }
}

/// Synthesizes a circuit for `spec`, validates it against the fault
/// campaign, and iteratively repairs it by avoiding implicated cells.
///
/// The spec's own cell-avoidance constraint (if any) seeds the avoid set;
/// the configured `array_size` takes precedence over the spec's.
///
/// # Errors
///
/// Returns [`SynthError::InvalidConstraint`] when the R-op family has no
/// line-array schedule (repair needs one to run campaigns against) or a
/// fault plan references a cell outside the array; propagates synthesis
/// errors from any round. Failure to *repair* is reported in
/// [`RepairOutcome::status`], not as an error.
pub fn synthesize_with_repair(
    synth: &Synthesizer,
    spec: &SynthSpec,
    plans: &[FaultPlan],
    config: &RepairConfig,
) -> Result<RepairOutcome, SynthError> {
    if spec.rop_kind() != ROpKind::MagicNor {
        return Err(SynthError::InvalidConstraint {
            reason: format!(
                "repair requires a MAGIC-NOR line-array schedule, got {:?}",
                spec.rop_kind()
            ),
        });
    }
    for plan in plans {
        if let Some(cell) = plan.max_cell().filter(|&c| c >= config.array_size) {
            return Err(SynthError::InvalidConstraint {
                reason: format!(
                    "fault plan {:?} references cell {cell} outside the {}-cell array",
                    plan.name, config.array_size
                ),
            });
        }
    }

    let telemetry = synth.telemetry().clone();
    let _repair_span = telemetry.span_with(
        "repair",
        vec![
            kv("array_size", config.array_size),
            kv("max_retries", config.max_retries),
        ],
    );

    let mut avoided: Vec<usize> = spec
        .cell_avoidance()
        .map(|a| a.dead_cells())
        .unwrap_or_default();
    let mut attempts: Vec<RepairAttempt> = Vec::new();
    // Best-known (faulty) result from the previous round, reported when a
    // later round cannot improve on it: degradation, not data loss.
    let mut last: Option<(MmCircuit, Schedule, CampaignReport)> = None;

    for round in 0..=config.max_retries {
        let round_synth =
            synth
                .clone()
                .with_budget(escalate(synth.budget(), round, config.budget_escalation));
        let round_spec = spec
            .clone()
            .with_cell_avoidance(config.array_size, avoided.clone());
        let give_up = |reason: String,
                       last: Option<(MmCircuit, Schedule, CampaignReport)>,
                       attempts: Vec<RepairAttempt>,
                       avoided: Vec<usize>| {
            telemetry.point(
                "repair.round",
                vec![
                    kv("round", round),
                    kv("avoided", avoided.len()),
                    kv("outcome", "gave-up"),
                    kv("reason", reason.clone()),
                ],
            );
            let (circuit, placement, report) = match last {
                Some((c, s, r)) => (Some(c), Some(s), Some(r)),
                None => (None, None, None),
            };
            Ok(RepairOutcome {
                circuit,
                placement,
                report,
                avoided,
                attempts,
                status: RepairStatus::Unrepairable { reason },
            })
        };
        let outcome = match round_synth.run(&round_spec) {
            Ok(o) => o,
            // Avoidance added by *diagnosis* can shrink the working array
            // below the schedule's footprint; that is a repair dead end,
            // not a caller error. Round-0 failures (no diagnosis yet)
            // still propagate.
            Err(e @ SynthError::InvalidConstraint { .. }) if !attempts.is_empty() => {
                return give_up(
                    format!("avoidance became infeasible: {e}"),
                    last,
                    attempts,
                    avoided,
                );
            }
            Err(e) => return Err(e),
        };
        let (circuit, placement) = match outcome.result {
            SynthResult::Realizable(c) => {
                let placement = outcome
                    .placement
                    .expect("MAGIC-NOR specs with avoidance always carry a placement");
                (c, placement)
            }
            SynthResult::Unrealizable => {
                return give_up(
                    format!(
                        "no circuit exists that avoids cells {avoided:?} on a {}-cell array",
                        config.array_size
                    ),
                    last,
                    attempts,
                    avoided,
                );
            }
            SynthResult::Unknown => {
                return give_up(
                    format!(
                        "budget exhausted before a circuit avoiding cells {avoided:?} was found"
                    ),
                    last,
                    attempts,
                    avoided,
                );
            }
        };

        let report = run_campaign_traced(&placement, plans, &config.campaign, &telemetry)?;
        let failures: u32 = report.plans.iter().map(|p| p.failures).sum();
        if failures == 0 {
            let status = if attempts.is_empty() {
                RepairStatus::Clean
            } else {
                RepairStatus::Repaired
            };
            telemetry.point(
                "repair.round",
                vec![
                    kv("round", round),
                    kv("failures", failures),
                    kv("newly_implicated", 0usize),
                    kv("avoided", avoided.len()),
                    kv(
                        "outcome",
                        if attempts.is_empty() {
                            "clean"
                        } else {
                            "repaired"
                        },
                    ),
                ],
            );
            return Ok(RepairOutcome {
                circuit: Some(circuit),
                placement: Some(placement),
                report: Some(report),
                avoided,
                attempts,
                status,
            });
        }

        // Diagnose: cells whose divergences are stuck- or transient-class
        // are avoidable; variability-class cells are not (every cell
        // varies — moving the schedule would implicate different ones).
        let mut newly: Vec<usize> = report
            .plans
            .iter()
            .flat_map(|p| p.attribution.iter())
            .filter(|a| matches!(a.class, FaultClass::Stuck | FaultClass::Transient))
            .map(|a| a.cell)
            .filter(|c| !avoided.contains(c))
            .collect();
        newly.sort_unstable();
        newly.dedup();
        attempts.push(RepairAttempt {
            avoided: avoided.clone(),
            failures,
            newly_implicated: newly.clone(),
        });
        telemetry.point(
            "repair.round",
            vec![
                kv("round", round),
                kv("failures", failures),
                kv("newly_implicated", newly.len()),
                kv("avoided", avoided.len()),
                kv(
                    "outcome",
                    if newly.is_empty() {
                        "unrepairable"
                    } else if round == config.max_retries {
                        "retry-limit"
                    } else {
                        "diagnosed"
                    },
                ),
            ],
        );

        if newly.is_empty() {
            return Ok(RepairOutcome {
                circuit: Some(circuit),
                placement: Some(placement),
                report: Some(report),
                avoided,
                attempts,
                status: RepairStatus::Unrepairable {
                    reason: "remaining campaign failures are not attributable to \
                             avoidable cells (variability-class)"
                        .to_string(),
                },
            });
        }
        if round == config.max_retries {
            return Ok(RepairOutcome {
                circuit: Some(circuit),
                placement: Some(placement),
                report: Some(report),
                avoided,
                attempts,
                status: RepairStatus::Unrepairable {
                    reason: format!("retry limit ({}) reached", config.max_retries),
                },
            });
        }
        avoided.extend(newly);
        avoided.sort_unstable();
        last = Some((circuit, placement, report));
    }
    unreachable!("the loop always returns from its final round");
}

/// Scales a conflict-limited budget by `factor^round`; other limits (and
/// the deadline, which is deliberately shared across rounds) pass through.
fn escalate(budget: Budget, round: usize, factor: u32) -> Budget {
    match (budget.max_conflicts(), round) {
        (Some(c), r) if r > 0 => {
            let scale = u64::from(factor.max(1)).saturating_pow(r as u32);
            budget.with_max_conflicts(c.saturating_mul(scale))
        }
        _ => budget,
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;
    use mm_circuit::DeviceState;

    use super::*;

    #[test]
    fn healthy_array_needs_no_repair() {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let outcome = synthesize_with_repair(
            &Synthesizer::new(),
            &spec,
            &[FaultPlan::named("control")],
            &RepairConfig::new(8),
        )
        .unwrap();
        assert_eq!(outcome.status, RepairStatus::Clean);
        assert!(outcome.succeeded());
        assert!(outcome.attempts.is_empty());
        let placement = outcome.placement.as_ref().unwrap();
        assert_eq!(placement.n_cells(), 8);
        assert!(placement.verify(&f));
    }

    #[test]
    fn stuck_cell_is_diagnosed_and_avoided() {
        // XOR2 mixed-mode occupies cells 0..3 of the placed schedule; stick
        // one of them. The campaign must implicate it, and the repaired
        // placement must route around it and pass the same campaign.
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let plans = vec![FaultPlan::named("stuck-0").with_stuck(0, DeviceState::Lrs)];
        let outcome =
            synthesize_with_repair(&Synthesizer::new(), &spec, &plans, &RepairConfig::new(8))
                .unwrap();
        assert_eq!(outcome.status, RepairStatus::Repaired);
        assert!(outcome.avoided.contains(&0), "cell 0 must be avoided");
        assert_eq!(outcome.attempts.len(), 1);
        assert!(outcome.attempts[0].failures > 0);
        assert_eq!(outcome.attempts[0].newly_implicated, vec![0]);
        let placement = outcome.placement.as_ref().unwrap();
        assert!(!placement.used_cells().contains(&0));
        assert!(placement.verify(&f));
        assert!(!outcome.report.as_ref().unwrap().any_failures());
    }

    #[test]
    fn infeasible_avoidance_degrades_gracefully() {
        // A 4-cell array with 2 dead cells cannot host XOR2's 4-cell
        // schedule: the loop must report Unrepairable, not error or panic.
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let plans = vec![FaultPlan::named("two-stuck")
            .with_stuck(0, DeviceState::Lrs)
            .with_stuck(1, DeviceState::Lrs)];
        let outcome =
            synthesize_with_repair(&Synthesizer::new(), &spec, &plans, &RepairConfig::new(4))
                .unwrap();
        assert!(!outcome.succeeded());
        assert!(matches!(outcome.status, RepairStatus::Unrepairable { .. }));
    }

    #[test]
    fn nimp_specs_are_rejected() {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 2, 2, 2)
            .unwrap()
            .with_rop_kind(ROpKind::Nimp);
        let err = synthesize_with_repair(&Synthesizer::new(), &spec, &[], &RepairConfig::new(8))
            .unwrap_err();
        assert!(matches!(err, SynthError::InvalidConstraint { .. }));
    }

    #[test]
    fn out_of_range_plans_are_rejected() {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let plans = vec![FaultPlan::named("oob").with_stuck(99, DeviceState::Hrs)];
        let err = synthesize_with_repair(&Synthesizer::new(), &spec, &plans, &RepairConfig::new(8))
            .unwrap_err();
        assert!(matches!(err, SynthError::InvalidConstraint { .. }));
    }

    #[test]
    fn escalate_scales_conflict_budgets_only() {
        let b = Budget::new().with_max_conflicts(100);
        assert_eq!(escalate(b.clone(), 0, 2).max_conflicts(), Some(100));
        assert_eq!(escalate(b.clone(), 1, 2).max_conflicts(), Some(200));
        assert_eq!(escalate(b, 3, 2).max_conflicts(), Some(800));
        assert!(escalate(Budget::new(), 3, 2).is_unlimited());
    }
}
