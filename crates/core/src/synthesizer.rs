use std::time::Duration;

use mm_circuit::{MmCircuit, Schedule};
use mm_sat::drat::{self, CheckStats};
use mm_sat::{Budget, DratProof, SatResult, Solver, SolverStats};
use mm_telemetry::{kv, AttrValue, Telemetry};

use crate::{decoder, encoder, EncodeStats, SynthError, SynthSpec};

/// The answer of one synthesis call.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthResult {
    /// A valid circuit realizing the function was found (and verified).
    Realizable(MmCircuit),
    /// `Φ(f, N_V, N_R)` is unsatisfiable: *no* circuit with these budgets
    /// exists. This is the optimality certificate of the paper.
    Unrealizable,
    /// The solver exhausted its budget — corresponds to the paper's "≤"
    /// rows where the optimality proof timed out.
    Unknown,
}

/// A checker-accepted DRAT refutation backing one
/// [`SynthResult::Unrealizable`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsatCertificate {
    /// The solver's derivation, ending in the empty clause.
    pub proof: DratProof,
    /// Work counters of the successful check.
    pub check: CheckStats,
}

/// Outcome of [`Synthesizer::run`]: the result plus encode/solve
/// statistics (the paper's `Vars`, `Clauses` and `T[s]` columns).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthOutcome {
    /// The synthesis answer.
    pub result: SynthResult,
    /// Size and timing of the CNF encoding.
    pub encode_stats: EncodeStats,
    /// Search statistics of the SAT solver.
    pub solver_stats: SolverStats,
    /// The verified refutation, when the synthesizer ran with
    /// [certification](Synthesizer::with_certification) and the answer was
    /// [`SynthResult::Unrealizable`]; `None` otherwise.
    pub certificate: Option<UnsatCertificate>,
    /// The circuit's schedule placed onto the constrained physical array,
    /// when the spec carried a [cell-avoidance
    /// constraint](crate::SynthSpec::with_cell_avoidance) and the answer was
    /// [`SynthResult::Realizable`] with a MAGIC-NOR schedule; `None`
    /// otherwise. The placement provably touches no avoided cell.
    pub placement: Option<Schedule>,
}

impl SynthOutcome {
    /// The synthesized circuit, if one was found.
    pub fn circuit(&self) -> Option<&MmCircuit> {
        match &self.result {
            SynthResult::Realizable(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the call proved unrealizability.
    pub fn is_unrealizable(&self) -> bool {
        matches!(self.result, SynthResult::Unrealizable)
    }

    /// Total wall-clock time (encoding + solving).
    pub fn total_time(&self) -> Duration {
        self.encode_stats.encode_time + self.solver_stats.solve_time
    }
}

/// Encode → solve → decode → verify driver for one `Φ(f, N_V, N_R)`
/// instance.
///
/// Every decoded circuit is *functionally verified* against the
/// specification (all `2^n` rows of every output) before being returned;
/// an encoder bug can therefore never produce a silently wrong circuit.
///
/// # Example
///
/// ```
/// use mm_boolfn::generators;
/// use mm_synth::{SynthSpec, Synthesizer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // AND2 needs no R-ops: one V-leg with two steps suffices (Eq. 1).
/// let f = generators::and_gate(2);
/// let outcome = Synthesizer::new().run(&SynthSpec::mixed_mode(&f, 0, 1, 2)?)?;
/// assert!(outcome.circuit().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    budget: Budget,
    certify: bool,
    incremental: bool,
    telemetry: Telemetry,
}

impl Synthesizer {
    /// A synthesizer with an unlimited solver budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the per-call solver budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Turns certification on or off (default: off).
    ///
    /// With certification on, every UNSAT answer is solved with DRAT
    /// logging and the proof is run through the in-tree checker
    /// ([`mm_sat::drat::check`]) before `Unrealizable` is returned — a
    /// rejected proof surfaces as [`SynthError::CertificationFailed`]
    /// instead of a silently untrustworthy optimality claim. SAT answers
    /// are additionally re-verified by exhaustive simulation of the
    /// compiled schedule on the device line-array model, closing the
    /// encoder → decoder → device loop.
    pub fn with_certification(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Whether certification is on.
    pub fn is_certifying(&self) -> bool {
        self.certify
    }

    /// Turns incremental ladder solving on or off (default: off; the
    /// `mmsynth` CLI flips it on).
    ///
    /// With incrementality on, the minimality ladders in [`crate::optimize`]
    /// encode `Φ(f)` once at the top rung's budgets with *disable*
    /// assumption literals guarding every rung-varying constraint, and
    /// descend on one long-lived solver per worker so learned clauses carry
    /// from rung to rung (see [`encoder` docs][crate::encoder]). The flag is
    /// a pure engine selector: verdicts and decoded circuits are unaffected
    /// (locked down by `tests/incremental_differential.rs`).
    ///
    /// Ladders fall back to cold per-rung solves — regardless of this flag —
    /// when certification is on (a DRAT proof must refute the *rung's*
    /// formula, not the base under assumptions) or when the spec carries
    /// constraints the shared base cannot express (cell avoidance,
    /// forced-TE positions).
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Whether incremental ladder solving is requested.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Whether a ladder over `spec`'s function should actually run on the
    /// incremental engine: requested, certification off, and the spec's
    /// constraints are expressible in the shared base.
    pub(crate) fn incremental_for(&self, spec: &SynthSpec) -> bool {
        self.incremental && !self.certify && encoder::incremental_compatible(spec)
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget.clone()
    }

    /// Installs a telemetry handle; every [`run`](Self::run) then emits a
    /// `synth` span with `encode` / `solve` / `decode` (and, under
    /// certification, `certify` / `device-verify`) child spans, an
    /// `encoder.cnf` size event, and the solver's sampled counters. The
    /// handle is cloned into the SAT solver for each call.
    ///
    /// Disabled handles (the default) keep all instrumentation to one branch
    /// per site — see the `telemetry_overhead` bench.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The installed telemetry handle (disabled unless
    /// [`with_telemetry`](Self::with_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Builds `Φ(f, N_V, N_R)` and returns it as DIMACS CNF text, for
    /// archiving or cross-checking with an external solver.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] for invalid specs or constraints.
    pub fn export_dimacs(&self, spec: &SynthSpec) -> Result<String, SynthError> {
        let encoded = encoder::encode(spec)?;
        Ok(mm_sat::dimacs::to_string(&encoded.cnf))
    }

    /// Builds and solves `Φ(f, N_V, N_R)` for one spec.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] for invalid specs/constraints, or for
    /// decode/verification failures (which indicate an internal bug, not a
    /// property of the function).
    pub fn run(&self, spec: &SynthSpec) -> Result<SynthOutcome, SynthError> {
        let _synth_span = self.telemetry.span_with("synth", span_attrs(spec));
        let encoded = self.encode_traced(spec)?;
        if self.certify {
            return self.run_certified(spec, encoded);
        }
        let (result, solver_stats) = {
            let _solve_span = self.telemetry.span("solve");
            Solver::new(encoded.cnf)
                .with_telemetry(self.telemetry.clone())
                .solve_with_budget(self.budget.clone())
        };
        let mut placement = None;
        let result = match result {
            SatResult::Sat(model) => {
                let _decode_span = self.telemetry.span("decode");
                let circuit = decoder::decode(spec, &encoded.map, &model)?;
                verify(&circuit, spec)?;
                placement = place(&circuit, spec)?;
                SynthResult::Realizable(circuit)
            }
            SatResult::Unsat => SynthResult::Unrealizable,
            SatResult::Unknown => SynthResult::Unknown,
        };
        Ok(SynthOutcome {
            result,
            encode_stats: encoded.stats,
            solver_stats,
            certificate: None,
            placement,
        })
    }

    /// Solves one rung of a ladder on a long-lived `solver` holding `base`'s
    /// shared encoding, activating the rung via assumptions instead of
    /// re-encoding.
    ///
    /// The reported `solver_stats` are the *per-call delta* (the solver's
    /// counters accumulate across rungs); `encode_stats` are the shared
    /// base's, identical for every rung. Decoded circuits are verified
    /// against the spec exactly as in [`run`](Self::run), so an unsound
    /// projection can never produce a silently wrong circuit.
    pub(crate) fn run_on_base(
        &self,
        solver: &mut Solver,
        base: &encoder::SharedBase,
        spec: &SynthSpec,
        budget: Budget,
    ) -> Result<SynthOutcome, SynthError> {
        let _synth_span = self.telemetry.span_with("synth", span_attrs(spec));
        let before = solver.stats();
        if self.telemetry.is_enabled() {
            let reused = before.learnt_clauses - before.deleted_clauses;
            if reused > 0 {
                self.telemetry.counter("solver.reused_clauses", reused);
            }
        }
        let assumptions = base.assumptions_for(spec);
        let result = {
            let _solve_span = self.telemetry.span("solve");
            solver.solve_under_assumptions(&assumptions, budget)
        };
        let solver_stats = solver.stats().delta_since(&before);
        let result = match result {
            SatResult::Sat(model) => {
                let _decode_span = self.telemetry.span("decode");
                let circuit = decoder::decode(spec, &base.project_map(spec), &model)?;
                verify(&circuit, spec)?;
                SynthResult::Realizable(circuit)
            }
            SatResult::Unsat => SynthResult::Unrealizable,
            SatResult::Unknown => SynthResult::Unknown,
        };
        Ok(SynthOutcome {
            result,
            encode_stats: base.stats,
            solver_stats,
            certificate: None,
            placement: None,
        })
    }

    /// Certified variant of [`run`](Self::run): the formula is kept for the
    /// checker, the solve logs a DRAT proof, and neither answer is returned
    /// unverified.
    fn run_certified(
        &self,
        spec: &SynthSpec,
        encoded: encoder::Encoded,
    ) -> Result<SynthOutcome, SynthError> {
        let cnf = encoded.cnf.clone();
        let (result, mut solver_stats, proof) = {
            let _solve_span = self.telemetry.span("solve");
            Solver::new(encoded.cnf)
                .with_telemetry(self.telemetry.clone())
                .solve_certified(self.budget.clone())
        };
        let mut certificate = None;
        let mut placement = None;
        let result = match result {
            SatResult::Sat(model) => {
                let circuit = {
                    let _decode_span = self.telemetry.span("decode");
                    let circuit = decoder::decode(spec, &encoded.map, &model)?;
                    verify(&circuit, spec)?;
                    circuit
                };
                {
                    let _device_span = self.telemetry.span("device-verify");
                    verify_on_device(&circuit, spec)?;
                }
                placement = place(&circuit, spec)?;
                SynthResult::Realizable(circuit)
            }
            SatResult::Unsat => {
                let proof = proof.expect("certified solve always returns the log");
                let _certify_span = self.telemetry.span("certify");
                match drat::check(&cnf, &proof) {
                    Ok(check) => {
                        solver_stats.proof_checked = true;
                        solver_stats.proof_check_time = check.check_time;
                        certificate = Some(UnsatCertificate { proof, check });
                        SynthResult::Unrealizable
                    }
                    Err(e) => {
                        return Err(SynthError::CertificationFailed {
                            reason: e.to_string(),
                        })
                    }
                }
            }
            SatResult::Unknown => SynthResult::Unknown,
        };
        Ok(SynthOutcome {
            result,
            encode_stats: encoded.stats,
            solver_stats,
            certificate,
            placement,
        })
    }

    /// Encodes under an `encode` span and emits the CNF-size event.
    fn encode_traced(&self, spec: &SynthSpec) -> Result<encoder::Encoded, SynthError> {
        let encoded = {
            let _encode_span = self.telemetry.span("encode");
            encoder::encode(spec)?
        };
        self.telemetry.point(
            "encoder.cnf",
            vec![
                kv("n_rops", spec.n_rops()),
                kv("n_legs", spec.n_legs()),
                kv("n_vsteps", spec.n_vsteps()),
                kv("vars", encoded.stats.n_vars),
                kv("clauses", encoded.stats.n_clauses),
            ],
        );
        Ok(encoded)
    }
}

/// Budget attributes stamped on every `synth` span.
fn span_attrs(spec: &SynthSpec) -> Vec<(String, AttrValue)> {
    vec![
        kv("n_rops", spec.n_rops()),
        kv("n_legs", spec.n_legs()),
        kv("n_vsteps", spec.n_vsteps()),
    ]
}

/// Places the circuit's schedule onto the spec's constrained array, routing
/// around the avoided cells.
///
/// Returns `Ok(None)` when the spec has no avoidance constraint or the R-op
/// family has no line-array schedule (NIMP). A placement failure is an
/// internal bug: the encoder's feed-cardinality constraint guarantees the
/// schedule fits into the working cells.
fn place(circuit: &MmCircuit, spec: &SynthSpec) -> Result<Option<Schedule>, SynthError> {
    let Some(avoidance) = spec.cell_avoidance() else {
        return Ok(None);
    };
    let schedule = match Schedule::compile(circuit) {
        Ok(s) => s,
        Err(mm_circuit::CircuitError::UnsupportedROpKind { .. }) => return Ok(None),
        Err(e) => return Err(SynthError::from(e)),
    };
    let placed = schedule.place_avoiding(avoidance.array_size, &avoidance.dead_cells())?;
    Ok(Some(placed))
}

/// Compiles the circuit to a line-array schedule and replays all `2^n`
/// input rows on the ideal device model.
///
/// R-op families without a MAGIC-NOR schedule (e.g. NIMP) are skipped — the
/// truth-table check in [`verify`] remains their functional verification.
fn verify_on_device(circuit: &MmCircuit, spec: &SynthSpec) -> Result<(), SynthError> {
    let schedule = match mm_circuit::Schedule::compile(circuit) {
        Ok(s) => s,
        Err(mm_circuit::CircuitError::UnsupportedROpKind { .. }) => return Ok(()),
        Err(e) => return Err(SynthError::from(e)),
    };
    if !schedule.verify(spec.function()) {
        return Err(SynthError::DeviceVerificationFailed);
    }
    Ok(())
}

fn verify(circuit: &MmCircuit, spec: &SynthSpec) -> Result<(), SynthError> {
    let outputs = circuit.eval_outputs();
    for (i, tt) in outputs.iter().enumerate() {
        if tt
            != spec
                .function()
                .output(i)
                .expect("arity checked by construction")
        {
            return Err(SynthError::VerificationFailed { output: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, Literal};
    use mm_sat::Budget;

    use super::*;
    use crate::{EncodeMode, EncodeOptions, SharedBe};

    #[test]
    fn and2_with_v_ops_only() {
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 2).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let c = outcome
            .circuit()
            .expect("AND2 is V-op realizable in 2 steps");
        assert!(c.implements(&f));
        assert_eq!(c.metrics().n_steps, 2);
    }

    #[test]
    fn and2_is_realizable_in_one_v_op() {
        // From the cleared state, V(0, te, be) = te·¬be — a single V-op
        // already computes two-literal products like x1·x2 = V(0, x1, ~x2).
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome
            .circuit()
            .expect("AND2 = V(0, x1, ~x2)")
            .implements(&f));
    }

    #[test]
    fn and3_is_not_realizable_in_one_v_op() {
        // Three-literal products exceed what one V-op can express.
        let f = generators::and_gate(3);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome.is_unrealizable());
    }

    #[test]
    fn xor2_is_never_v_op_realizable() {
        // The paper's non-universality witness (§II-C): no amount of V-op
        // steps realizes XOR.
        let f = generators::xor_gate(2);
        for steps in 1..=4 {
            let spec = SynthSpec::mixed_mode(&f, 0, 1, steps).unwrap();
            let outcome = Synthesizer::new().run(&spec).unwrap();
            assert!(outcome.is_unrealizable(), "XOR with {steps} V-op steps");
        }
    }

    #[test]
    fn xor2_with_one_rop_and_legs() {
        // x1 ⊕ x2 = NOR(x1·x2, ~x1·~x2)? NOR gives ~(a+b): with a = x1·x2,
        // b = ~x1·~x2: ~(x1x2 + ~x1~x2) = XOR ✓ — needs 2 legs, 2 steps, 1 R-op.
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let c = outcome.circuit().expect("XOR2 = NOR of two product legs");
        assert!(c.implements(&f));
    }

    #[test]
    fn nor2_r_only() {
        let f = generators::nor_gate(2);
        let spec = SynthSpec::r_only(&f, 1).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let c = outcome.circuit().expect("NOR2 is one R-op over literals");
        assert!(c.implements(&f));
        assert_eq!(c.metrics().n_rops, 1);
    }

    #[test]
    fn xor2_r_only_needs_more_gates() {
        let f = generators::xor_gate(2);
        // NOR-only realization of XOR needs 4 gates in general (with
        // literals free the solver may find fewer; assert monotonicity).
        assert!(Synthesizer::new()
            .run(&SynthSpec::r_only(&f, 1).unwrap())
            .unwrap()
            .is_unrealizable());
        assert!(Synthesizer::new()
            .run(&SynthSpec::r_only(&f, 2).unwrap())
            .unwrap()
            .is_unrealizable());
        let three = Synthesizer::new()
            .run(&SynthSpec::r_only(&f, 3).unwrap())
            .unwrap();
        let c = three.circuit().expect("XOR2 from 3 NORs over L_2");
        assert!(c.implements(&f));
    }

    #[test]
    fn multi_output_synthesis() {
        // Both AND and OR of two inputs from one leg pair + R-ops.
        let f = mm_boolfn::MultiOutputFn::new(
            "andor",
            vec![
                generators::and_gate(2).output(0).unwrap().clone(),
                generators::or_gate(2).output(0).unwrap().clone(),
            ],
        )
        .unwrap();
        let spec = SynthSpec::mixed_mode(&f, 0, 2, 2).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome
            .circuit()
            .expect("both outputs are AND/OR chains")
            .implements(&f));
    }

    #[test]
    fn faithful_and_folded_agree_on_satisfiability() {
        let f = generators::xor_gate(2);
        for (n_r, n_l, n_vs, expect_sat) in [(1usize, 2usize, 2usize, true), (0, 2, 2, false)] {
            let base = SynthSpec::mixed_mode(&f, n_r, n_l, n_vs).unwrap();
            let folded = Synthesizer::new().run(&base).unwrap();
            let faithful = Synthesizer::new()
                .run(&base.clone().with_options(EncodeOptions {
                    mode: EncodeMode::Faithful,
                    shared_be: SharedBe::EqualityClauses,
                    ..EncodeOptions::recommended()
                }))
                .unwrap();
            assert_eq!(folded.circuit().is_some(), expect_sat);
            assert_eq!(faithful.circuit().is_some(), expect_sat);
        }
    }

    #[test]
    fn shared_be_is_actually_enforced() {
        // A function needing different BE literals per leg in the same step
        // under a 1-step budget: leg1 must produce x1·x2 — impossible in
        // one step anyway; instead check schedules compile (shared BE holds).
        let f = generators::gf22_multiplier();
        let spec = SynthSpec::mixed_mode(&f, 4, 6, 3).unwrap();
        let outcome = Synthesizer::new()
            .with_budget(Budget::new().with_max_conflicts(2_000_000))
            .run(&spec)
            .unwrap();
        if let Some(c) = outcome.circuit() {
            // The schedule compiler re-checks the shared-BE property.
            mm_circuit::Schedule::compile(c).expect("decoded circuits obey shared BE");
        }
    }

    #[test]
    fn forced_te_constraint_is_respected() {
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 2)
            .unwrap()
            .with_options(EncodeOptions {
                forced_te: vec![(0, 0, Literal::Pos(2))],
                ..EncodeOptions::default()
            });
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let c = outcome
            .circuit()
            .expect("AND2 still realizable with forced first TE");
        assert_eq!(c.legs()[0].ops()[0].te, Literal::Pos(2));
    }

    #[test]
    fn no_cascade_constraint() {
        // XOR needs 3 NORs with cascading; forbidding cascades makes the
        // R-only 3-gate budget insufficient (outputs must still combine).
        let f = generators::xor_gate(2);
        let spec = SynthSpec::r_only(&f, 3)
            .unwrap()
            .with_options(EncodeOptions {
                forbid_rop_cascade: true,
                ..EncodeOptions::recommended()
            });
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(
            outcome.is_unrealizable(),
            "XOR from non-cascaded NORs of literals"
        );
    }

    #[test]
    fn nimp_technology_synthesis() {
        // Ta2O5-class devices exhibit NIMP (IMPLY family) instead of NOR
        // (paper §II-A). NIMP + const literals is universal, so XOR must
        // be realizable; NIMP is non-commutative, so input-order symmetry
        // breaking must NOT be applied (covered by is_commutative()).
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 2, 2, 2)
            .unwrap()
            .with_rop_kind(mm_circuit::ROpKind::Nimp);
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let c = outcome.circuit().expect("XOR2 from two NIMPs over legs");
        assert!(c.implements(&f));
        assert!(c.rops().iter().all(|r| r.kind == mm_circuit::ROpKind::Nimp));
    }

    #[test]
    fn nimp_single_gate() {
        // NIMP(x1, x2) = x1·~x2 directly as one R-op over literals.
        let f = mm_boolfn::MultiOutputFn::new(
            "nimp",
            vec![
                mm_boolfn::TruthTable::var(2, 1).unwrap()
                    & !mm_boolfn::TruthTable::var(2, 2).unwrap(),
            ],
        )
        .unwrap();
        let spec = SynthSpec::r_only(&f, 1)
            .unwrap()
            .with_rop_kind(mm_circuit::ROpKind::Nimp);
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome.circuit().expect("one NIMP suffices").implements(&f));
    }

    #[test]
    fn dimacs_export_is_solvable_and_equisatisfiable() {
        let f = generators::xor_gate(2);
        let sat_spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let unsat_spec = SynthSpec::mixed_mode(&f, 0, 2, 2).unwrap();
        let synth = Synthesizer::new();
        for (spec, expect_sat) in [(&sat_spec, true), (&unsat_spec, false)] {
            let text = synth.export_dimacs(spec).unwrap();
            assert!(text.starts_with("p cnf "));
            let cnf = mm_sat::dimacs::parse(&text).unwrap();
            let result = mm_sat::Solver::new(cnf).solve();
            assert_eq!(result.is_sat(), expect_sat);
        }
    }

    #[test]
    fn certified_unrealizable_carries_checked_proof() {
        let f = generators::and_gate(3);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1).unwrap();
        let outcome = Synthesizer::new()
            .with_certification(true)
            .run(&spec)
            .unwrap();
        assert!(outcome.is_unrealizable());
        let cert = outcome
            .certificate
            .as_ref()
            .expect("certified UNSAT carries its certificate");
        assert!(cert.proof.is_concluded());
        assert!(outcome.solver_stats.proof_checked);
        assert_eq!(outcome.solver_stats.proof_check_time, cert.check.check_time);
        // The proof really refutes the exported formula, re-checked from
        // the DIMACS round trip (independent of the in-process CNF object).
        let text = Synthesizer::new().export_dimacs(&spec).unwrap();
        let cnf = mm_sat::dimacs::parse(&text).unwrap();
        mm_sat::drat::check(&cnf, &cert.proof).expect("proof checks against exported CNF");
    }

    #[test]
    fn certified_sat_passes_device_model_and_has_no_certificate() {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).unwrap();
        let outcome = Synthesizer::new()
            .with_certification(true)
            .run(&spec)
            .unwrap();
        let c = outcome.circuit().expect("XOR2 is MM-realizable");
        assert!(c.implements(&f));
        assert!(outcome.certificate.is_none());
        assert!(!outcome.solver_stats.proof_checked);
    }

    #[test]
    fn certified_nimp_sat_skips_schedule_but_still_verifies() {
        // NIMP circuits have no MAGIC-NOR schedule; certification must not
        // reject them (truth-table verification still applies).
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 2, 2, 2)
            .unwrap()
            .with_rop_kind(mm_circuit::ROpKind::Nimp);
        let outcome = Synthesizer::new()
            .with_certification(true)
            .run(&spec)
            .unwrap();
        assert!(outcome.circuit().expect("XOR2 from NIMPs").implements(&f));
    }

    #[test]
    fn uncertified_run_logs_no_proof() {
        let f = generators::and_gate(3);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 1).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome.is_unrealizable());
        assert!(outcome.certificate.is_none());
        assert_eq!(outcome.solver_stats.proof_steps, 0);
        assert_eq!(outcome.solver_stats.proof_literals, 0);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let f = generators::gf22_multiplier();
        let spec = SynthSpec::mixed_mode(&f, 4, 6, 3).unwrap();
        let outcome = Synthesizer::new()
            .with_budget(Budget::new().with_max_conflicts(1))
            .run(&spec)
            .unwrap();
        assert_eq!(outcome.result, SynthResult::Unknown);
    }

    #[test]
    fn avoidance_placement_routes_around_dead_cells() {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2)
            .unwrap()
            .with_cell_avoidance(8, vec![0, 2]);
        let outcome = Synthesizer::new().run(&spec).unwrap();
        let circuit = outcome.circuit().expect("XOR2 fits on 6 working cells");
        assert!(circuit.implements(&f));
        let placement = outcome
            .placement
            .expect("avoidance spec yields a placement");
        let used = placement.used_cells();
        assert!(!used.contains(&0) && !used.contains(&2));
        assert!(placement.verify(&f));
    }

    #[test]
    fn avoidance_without_room_for_the_schedule_is_rejected() {
        // 2 legs + 1 R-op need 3 cells; a 4-cell array with 2 dead has 2.
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2)
            .unwrap()
            .with_cell_avoidance(4, vec![1, 3]);
        let err = Synthesizer::new().run(&spec).unwrap_err();
        assert!(matches!(err, SynthError::InvalidConstraint { .. }));
    }

    #[test]
    fn tight_feed_budget_still_synthesizes_when_feasible() {
        // 4 working cells leave exactly one literal-feed cell beyond the
        // 2 legs + 1 R-op footprint; the encoder must cap distinct feeds
        // at 1 and the solver must still find a schedule (or prove none).
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2)
            .unwrap()
            .with_cell_avoidance(4, vec![]);
        let outcome = Synthesizer::new().run(&spec).unwrap();
        match outcome.result {
            SynthResult::Realizable(_) => {
                let placement = outcome.placement.expect("placement accompanies SAT");
                assert!(placement.n_cells() <= 4);
                assert!(placement.verify(&f));
            }
            SynthResult::Unrealizable => {} // a proof is an acceptable answer
            SynthResult::Unknown => panic!("unlimited budget cannot be Unknown"),
        }
    }

    #[test]
    fn specs_without_avoidance_carry_no_placement() {
        let f = generators::and_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 0, 1, 2).unwrap();
        let outcome = Synthesizer::new().run(&spec).unwrap();
        assert!(outcome.circuit().is_some());
        assert!(outcome.placement.is_none());
    }
}
