//! End-to-end scenario fuzzing of the synthesis pipeline.
//!
//! A [`FuzzScenario`] is a small, serializable description of one complete
//! exercise of the stack: a randomized target function, ladder budgets,
//! solver budget (conflict-limited, unlimited, or an already-expired
//! deadline), certification, job counts, cell-avoidance masks, an electrical
//! sweep corner, an optional [`FaultPlan`] with campaign trials, and an
//! optional repair pass. [`run_scenario`] drives the scenario through
//! synthesize (warm and cold) → certify → device-verify → fault campaign →
//! repair, checking cross-cutting invariants at every stage:
//!
//! * **Jobs invariance** — the cold portfolio reports the same best circuit
//!   and `proven_optimal` for every job count (the lattice argument in
//!   `optimize::parallel`).
//! * **Warm/cold verdict equality** — under an unlimited budget the
//!   incremental engine must agree with the cold one rung for rung.
//! * **Inprocessing invariance** — disabling solver inprocessing (the
//!   `--no-inprocess` regime) never changes a verdict or `proven_optimal`.
//! * **Degraded honesty** — `proven_optimal` is never claimed on a degraded
//!   run, and cancelled solves never carry proofs or certification.
//! * **Certified proofs re-check** — every archived DRAT proof refutes its
//!   rung's own cold DIMACS export.
//! * **Device ground truth** — decoded circuits re-execute correctly on the
//!   device model, placements avoid dead cells, healthy campaign controls
//!   never fail, campaigns are bit-for-bit reproducible, and successful
//!   repairs end with a clean report.
//!
//! Every random draw derives from the scenario's root seed through
//! [`mm_device::seeds`], so a scenario (and a whole [`run_fuzz`] sweep) is
//! bit-for-bit reproducible from `--seed`. Failing scenarios are shrunk with
//! the vendored [`proptest::shrink`] primitives and archived as replayable
//! JSON under `tests/corpus/` (see [`Corpus`]).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use mm_boolfn::{MultiOutputFn, TruthTable};
use mm_circuit::campaign::{run_campaign, CampaignConfig};
use mm_circuit::{FaultPlan, Schedule};
use mm_device::seeds;
use mm_sat::{Budget, Deadline};
use proptest::shrink::Shrink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::optimize::parallel;
use crate::optimize::{OptimizeReport, OptimizeStatus, SynthResultKind};
use crate::repair::{synthesize_with_repair, RepairConfig};
use crate::{EncodeOptions, SynthResult, SynthSpec, Synthesizer};

/// Version stamp of the corpus JSON layout.
pub const CORPUS_SCHEMA_VERSION: u64 = 1;

/// Substream tag for per-scenario campaign seeds.
const STREAM_CAMPAIGN: u64 = 0x5eed_ca30;

/// One complete randomized exercise of the synthesis pipeline.
///
/// Scenarios are plain data: serializable (the corpus format), comparable,
/// and shrinkable. All behavior lives in [`run_scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzScenario {
    /// Human-readable identifier (also the corpus file stem).
    pub name: String,
    /// Root seed; every RNG stream in the scenario derives from it.
    pub seed: u64,
    /// Target function outputs as truth-table bitstrings (MSB-first, the
    /// `TruthTable::from_bitstring` format). All outputs share an input
    /// count.
    pub outputs: Vec<String>,
    /// Top of the R-op ladder.
    pub max_rops: usize,
    /// Top of the V-step ladder; `0` selects the R-only ladder.
    pub max_vsteps: usize,
    /// Per-call conflict limit; `None` is unlimited.
    pub max_conflicts: Option<u64>,
    /// Run every solve under an already-expired deadline (the deterministic
    /// way to exercise the degraded path: every call reports `Unknown`).
    pub zero_deadline: bool,
    /// Run a certified (cold, DRAT-checked) ladder as well.
    pub certify: bool,
    /// Portfolio widths the cold ladder must agree across.
    pub jobs: Vec<usize>,
    /// Physical array size used for placement, campaigns, and repair.
    pub array_size: usize,
    /// Dead cells the placement must avoid (mixed-mode scenarios only).
    pub avoid_cells: Vec<usize>,
    /// Electrical sweep corner index (see
    /// [`mm_device::arbitrary::params_corner`]).
    pub params_corner: u8,
    /// Optional fault environment for the campaign/repair stages.
    pub fault_plan: Option<FaultPlan>,
    /// Campaign trials per plan.
    pub campaign_trials: u32,
    /// Run the diagnose → avoid → resynthesize repair loop.
    pub repair: bool,
    /// Run solves with solver inprocessing (variable elimination,
    /// subsumption, vivification) enabled. Mirrors the `--no-inprocess`
    /// CLI knob; verdicts must be identical either way, which unlimited
    /// scenarios check differentially.
    pub inprocess: bool,
}

impl FuzzScenario {
    /// Generates scenario `index` of the sweep rooted at `root_seed`.
    ///
    /// Pure function of its arguments: the scenario draws everything from
    /// [`seeds::split`]`(root_seed, index)`.
    pub fn generate(root_seed: u64, index: u64) -> Self {
        let scenario_seed = seeds::split(root_seed, index);
        let mut rng = SmallRng::seed_from_u64(scenario_seed);

        let n_inputs: u8 = if rng.gen_range(0u8..10) < 6 { 2 } else { 3 };
        let n_outputs: usize = if rng.gen_range(0u8..10) < 7 { 1 } else { 2 };
        let f = mm_boolfn::arbitrary::multi_output(&mut rng, "fuzz", n_inputs, n_outputs);
        let outputs = f.outputs().iter().map(TruthTable::to_bitstring).collect();

        let (max_rops, max_vsteps) = if rng.gen_range(0u8..10) < 3 {
            (rng.gen_range(2usize..=4), 0)
        } else {
            (rng.gen_range(1usize..=2), rng.gen_range(2usize..=3))
        };

        let (max_conflicts, zero_deadline) = match rng.gen_range(0u8..10) {
            0..=5 => (None, false),
            6..=8 => (Some(rng.gen_range(200u64..=5_000)), false),
            _ => (None, true),
        };

        let jobs = match rng.gen_range(0u8..4) {
            0 => vec![1],
            1 => vec![2],
            2 => vec![4],
            _ => vec![1, 2, 8],
        };

        let array_size = if rng.gen::<bool>() { 16 } else { 24 };
        let avoid_cells = if max_vsteps > 0 && rng.gen_range(0u8..4) == 0 {
            let n = rng.gen_range(1usize..=2);
            let mut cells: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..4)).collect();
            cells.sort_unstable();
            cells.dedup();
            cells
        } else {
            Vec::new()
        };

        let params_corner = rng.gen_range(0u8..4);
        let fault_plan = if rng.gen_range(0u8..10) < 4 {
            Some(mm_device::arbitrary::fault_plan(&mut rng, array_size, 16))
        } else {
            None
        };
        let campaign_trials = rng.gen_range(2u32..=4);
        let unlimited = max_conflicts.is_none() && !zero_deadline;
        let repair =
            fault_plan.is_some() && unlimited && max_vsteps > 0 && rng.gen_range(0u8..10) < 3;

        Self {
            name: format!("fuzz-{root_seed:x}-{index}"),
            seed: scenario_seed,
            outputs,
            max_rops,
            max_vsteps,
            max_conflicts,
            zero_deadline,
            certify: rng.gen_range(0u8..10) < 3,
            jobs,
            array_size,
            avoid_cells,
            params_corner,
            fault_plan,
            campaign_trials,
            repair,
            inprocess: rng.gen_range(0u8..10) < 7,
        }
    }

    /// Reconstructs the target function from the stored bitstrings.
    pub fn function(&self) -> Result<MultiOutputFn, String> {
        let tables = self
            .outputs
            .iter()
            .map(|s| TruthTable::from_bitstring(s).map_err(|e| format!("bad bitstring {s:?}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        MultiOutputFn::new(self.name.clone(), tables).map_err(|e| format!("bad outputs: {e}"))
    }

    /// The per-call solver budget this scenario runs under, if any.
    pub fn budget(&self) -> Option<Budget> {
        let mut budget = self
            .max_conflicts
            .map(|c| Budget::new().with_max_conflicts(c));
        if self.zero_deadline {
            let deadline = Deadline::after(Duration::ZERO);
            budget = Some(budget.unwrap_or_default().with_deadline(deadline));
        }
        if !self.inprocess {
            budget = Some(budget.unwrap_or_default().with_inprocess(false));
        }
        budget
    }

    /// True when every solve runs to completion (no conflict cap, no
    /// deadline) — the regime where warm/cold and cross-jobs verdicts are
    /// all forced to agree.
    pub fn unlimited(&self) -> bool {
        self.max_conflicts.is_none() && !self.zero_deadline
    }
}

impl Shrink for FuzzScenario {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let push = |out: &mut Vec<Self>, f: &dyn Fn(&mut Self)| {
            let mut s = self.clone();
            f(&mut s);
            out.push(s);
        };
        // Cheapest structural simplifications first.
        if self.fault_plan.is_some() {
            push(&mut out, &|s| {
                s.fault_plan = None;
                s.repair = false;
            });
        }
        if self.repair {
            push(&mut out, &|s| s.repair = false);
        }
        if self.certify {
            push(&mut out, &|s| s.certify = false);
        }
        if !self.inprocess {
            // Toward the default: a reproducer that needs inprocessing
            // *off* is the unusual one worth keeping flagged.
            push(&mut out, &|s| s.inprocess = true);
        }
        if !self.avoid_cells.is_empty() {
            push(&mut out, &|s| s.avoid_cells.clear());
        }
        if self.jobs.len() > 1 {
            push(&mut out, &|s| s.jobs.truncate(1));
        }
        if let Some(plan) = &self.fault_plan {
            for cand in plan.shrink_candidates() {
                let mut s = self.clone();
                s.fault_plan = Some(cand);
                out.push(s);
            }
        }
        // Function shrinks: drop an output, then clear minterms.
        if self.outputs.len() > 1 {
            for i in 0..self.outputs.len() {
                let mut s = self.clone();
                s.outputs.remove(i);
                out.push(s);
            }
        }
        for (i, bits) in self.outputs.iter().enumerate() {
            let Ok(table) = TruthTable::from_bitstring(bits) else {
                continue;
            };
            for cand in table.shrink_candidates() {
                let mut s = self.clone();
                s.outputs[i] = cand.to_bitstring();
                out.push(s);
            }
        }
        out
    }
}

/// A failed cross-cutting invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the scenario that failed.
    pub scenario: String,
    /// Stable invariant identifier (e.g. `warm-cold-equality`).
    pub invariant: String,
    /// Human-readable failure description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.scenario, self.invariant, self.detail)
    }
}

/// Outcome of running one scenario through the pipeline.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Name of the scenario.
    pub name: String,
    /// Verdict-level digest of the run; equal across replays of the same
    /// scenario (the replay-determinism contract).
    pub fingerprint: String,
    /// Whether the cold ladder degraded (deadline/budget).
    pub degraded: bool,
    /// Invariant violations found, empty on a healthy run.
    pub violations: Vec<Violation>,
}

/// Knobs for [`run_scenario`]/[`run_fuzz`].
#[derive(Debug, Clone, Default)]
pub struct FuzzConfig {
    /// Deliberately violate an (artificial) invariant on scenarios whose
    /// target function has at least two minterms set, to prove the
    /// catch → shrink → archive path end to end.
    pub inject_violation: bool,
}

/// Verdict-level fingerprint of an optimize report.
fn fingerprint_of(report: &OptimizeReport) -> String {
    let best = report
        .best
        .as_ref()
        .map(|c| {
            let m = c.metrics();
            format!("R{}L{}S{}", m.n_rops, m.n_legs, m.n_vsteps)
        })
        .unwrap_or_else(|| "none".to_string());
    let status = match &report.status {
        OptimizeStatus::Complete => "complete".to_string(),
        OptimizeStatus::Degraded { reason } => format!("degraded({reason})"),
    };
    format!("best={best};proven={};{status}", report.proven_optimal)
}

/// Runs one scenario end to end, collecting invariant violations.
///
/// `Err` means the scenario could not be executed at all (a malformed
/// hand-written corpus case, or a pipeline error that generated scenarios
/// can never trigger); [`run_fuzz`] treats that as a violation too.
pub fn run_scenario(sc: &FuzzScenario, cfg: &FuzzConfig) -> Result<ScenarioReport, String> {
    let f = sc.function()?;
    let mut violations: Vec<Violation> = Vec::new();

    // The injected violation short-circuits the pipeline: the shrink loop
    // re-runs the scenario per candidate, and the artificial failure is
    // about the harness, not the solver.
    if cfg.inject_violation {
        let ones: usize = f.outputs().iter().map(TruthTable::count_ones).sum();
        if ones >= 2 {
            return Ok(ScenarioReport {
                name: sc.name.clone(),
                fingerprint: format!("injected;ones={ones}"),
                degraded: false,
                violations: vec![Violation {
                    scenario: sc.name.clone(),
                    invariant: "injected".to_string(),
                    detail: format!("deliberate violation: {ones} minterms set (threshold 2)"),
                }],
            });
        }
    }

    let options = EncodeOptions::recommended();
    let make_synth = |certify: bool, incremental: bool| {
        let mut synth = Synthesizer::new()
            .with_certification(certify)
            .with_incremental(incremental);
        if let Some(budget) = sc.budget() {
            synth = synth.with_budget(budget);
        }
        synth
    };
    let run_ladder = |synth: &Synthesizer, jobs: usize| -> Result<OptimizeReport, String> {
        let report = if sc.max_vsteps == 0 {
            parallel::minimize_r_only(synth, &f, sc.max_rops, &options, jobs)
        } else {
            parallel::minimize_mixed_mode(
                synth,
                &f,
                sc.max_rops,
                sc.max_vsteps,
                false,
                &options,
                jobs,
            )
        };
        report.map_err(|e| format!("ladder failed: {e}"))
    };
    let fail = |violations: &mut Vec<Violation>, invariant: &str, detail: String| {
        violations.push(Violation {
            scenario: sc.name.clone(),
            invariant: invariant.to_string(),
            detail,
        });
    };

    // Per-report invariants that hold in every regime.
    let check_internal = |report: &OptimizeReport, label: &str, violations: &mut Vec<Violation>| {
        if report.status.is_degraded() && report.proven_optimal {
            violations.push(Violation {
                scenario: sc.name.clone(),
                invariant: "no-proven-optimal-when-degraded".to_string(),
                detail: format!("{label}: degraded run claims proven_optimal"),
            });
        }
        for call in &report.calls {
            let rung = format!(
                "{label} rung (R{},L{},VS{})",
                call.n_rops, call.n_legs, call.n_vsteps
            );
            match call.result {
                SynthResultKind::Unknown => {
                    if call.certified || call.proof.is_some() {
                        violations.push(Violation {
                            scenario: sc.name.clone(),
                            invariant: "no-proof-on-cancelled-solve".to_string(),
                            detail: format!("{rung}: unknown verdict carries proof/certification"),
                        });
                    }
                }
                SynthResultKind::Realizable => {
                    if call.proof.is_some() {
                        violations.push(Violation {
                            scenario: sc.name.clone(),
                            invariant: "no-proof-on-sat".to_string(),
                            detail: format!("{rung}: SAT verdict carries a refutation proof"),
                        });
                    }
                }
                SynthResultKind::Unrealizable => {}
            }
        }
    };

    // ── Stage 1: cold portfolio, jobs invariance ─────────────────────────
    let mut cold_report: Option<OptimizeReport> = None;
    let mut cold_fp = String::new();
    for &jobs in &sc.jobs {
        let report = run_ladder(&make_synth(false, false), jobs.max(1))?;
        check_internal(&report, &format!("cold j{jobs}"), &mut violations);
        let fp = fingerprint_of(&report);
        if cold_report.is_none() {
            cold_fp = fp;
            cold_report = Some(report);
        } else if fp != cold_fp {
            fail(
                &mut violations,
                "jobs-invariance",
                format!("cold j{jobs} reported {fp}, expected {cold_fp}"),
            );
        }
    }
    let cold_report = cold_report.ok_or("scenario has an empty jobs list")?;

    // ── Stage 2: warm engine ─────────────────────────────────────────────
    // Conflict-limited warm solves with several workers share learned
    // clauses, which legitimately perturbs which rungs finish inside the
    // cap — only jobs=1 is deterministic there. Unlimited and zero-deadline
    // regimes force every verdict, so any width must agree.
    let warm_jobs: Vec<usize> = if sc.max_conflicts.is_some() && !sc.zero_deadline {
        vec![1]
    } else {
        sc.jobs.clone()
    };
    for &jobs in &warm_jobs {
        let report = run_ladder(&make_synth(false, true), jobs.max(1))?;
        check_internal(&report, &format!("warm j{jobs}"), &mut violations);
        if sc.unlimited() || sc.zero_deadline {
            let fp = fingerprint_of(&report);
            if fp != cold_fp {
                fail(
                    &mut violations,
                    "warm-cold-equality",
                    format!("warm j{jobs} reported {fp}, cold reported {cold_fp}"),
                );
            }
        }
    }

    // ── Stage 2b: inprocessing invariance ────────────────────────────────
    // Inprocessing rewrites the clause database, never the verdicts: in
    // the unlimited regime, a warm single-worker ladder with the pass
    // disabled must land on the cold fingerprint too.
    if sc.inprocess && sc.unlimited() {
        let budget = sc.budget().unwrap_or_default().with_inprocess(false);
        let synth = Synthesizer::new()
            .with_incremental(true)
            .with_budget(budget);
        let report = run_ladder(&synth, 1)?;
        check_internal(&report, "no-inprocess", &mut violations);
        let fp = fingerprint_of(&report);
        if fp != cold_fp {
            fail(
                &mut violations,
                "inprocess-invariance",
                format!("no-inprocess warm ladder reported {fp}, cold reported {cold_fp}"),
            );
        }
    }

    // ── Stage 3: certified ladder, proofs re-check ───────────────────────
    if sc.certify {
        let report = run_ladder(&make_synth(true, false), *sc.jobs.first().unwrap_or(&1))?;
        check_internal(&report, "certified", &mut violations);
        let fp = fingerprint_of(&report);
        if fp != cold_fp {
            fail(
                &mut violations,
                "certified-cold-equality",
                format!("certified ladder reported {fp}, cold reported {cold_fp}"),
            );
        }
        for call in &report.calls {
            if call.result != SynthResultKind::Unrealizable {
                continue;
            }
            let rung = format!(
                "rung (R{},L{},VS{})",
                call.n_rops, call.n_legs, call.n_vsteps
            );
            if !call.certified || call.proof.is_none() {
                fail(
                    &mut violations,
                    "unsat-must-be-certified",
                    format!("{rung}: certified run left an unchecked UNSAT"),
                );
                continue;
            }
            let spec = if call.n_vsteps == 0 && call.n_legs == 0 {
                SynthSpec::r_only(&f, call.n_rops)
            } else {
                SynthSpec::mixed_mode(&f, call.n_rops, call.n_legs, call.n_vsteps)
            };
            let spec = match spec {
                Ok(s) => s.with_options(options.clone()),
                Err(e) => {
                    fail(
                        &mut violations,
                        "proof-recheck",
                        format!("{rung}: cannot rebuild spec: {e}"),
                    );
                    continue;
                }
            };
            let recheck = Synthesizer::new()
                .export_dimacs(&spec)
                .map_err(|e| e.to_string())
                .and_then(|text| mm_sat::dimacs::parse(&text).map_err(|e| e.to_string()))
                .and_then(|cnf| {
                    mm_sat::drat::check(&cnf, call.proof.as_ref().expect("checked above"))
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                });
            if let Err(e) = recheck {
                fail(
                    &mut violations,
                    "proof-recheck",
                    format!("{rung}: archived proof rejected against cold export: {e}"),
                );
            }
        }
    }

    // ── Stage 4: device ground truth for the best circuit ────────────────
    let schedule = match &cold_report.best {
        Some(best) => match Schedule::compile(best) {
            Ok(s) => {
                if !s.verify(&f) {
                    fail(
                        &mut violations,
                        "device-verify",
                        "best circuit's schedule does not implement the target".to_string(),
                    );
                }
                Some(s)
            }
            Err(e) => {
                fail(
                    &mut violations,
                    "device-verify",
                    format!("best circuit does not compile to a schedule: {e}"),
                );
                None
            }
        },
        None => None,
    };

    // ── Stage 5: cell avoidance placement ────────────────────────────────
    if !sc.avoid_cells.is_empty() && sc.max_vsteps > 0 && !sc.zero_deadline {
        let legs = SynthSpec::paper_legs(&f, sc.max_rops, false);
        let spec = SynthSpec::mixed_mode(&f, sc.max_rops, legs, sc.max_vsteps)
            .map_err(|e| format!("avoidance spec: {e}"))?
            .with_options(options.clone())
            .with_cell_avoidance(sc.array_size, sc.avoid_cells.clone());
        let outcome = make_synth(false, false)
            .run(&spec)
            .map_err(|e| format!("avoidance run: {e}"))?;
        if matches!(outcome.result, SynthResult::Realizable(_)) {
            match &outcome.placement {
                Some(placement) => {
                    let used = placement.used_cells();
                    if let Some(cell) = sc.avoid_cells.iter().find(|c| used.contains(c)) {
                        fail(
                            &mut violations,
                            "avoided-cell-placement",
                            format!("placement uses avoided cell {cell} (used: {used:?})"),
                        );
                    }
                    if !placement.verify(&f) {
                        fail(
                            &mut violations,
                            "avoided-placement-verify",
                            "avoiding placement no longer implements the target".to_string(),
                        );
                    }
                }
                None => fail(
                    &mut violations,
                    "avoided-cell-placement",
                    "realizable avoidance run produced no placement".to_string(),
                ),
            }
        }
    }

    // ── Stage 6: fault campaign (determinism + healthy control) ──────────
    let mut campaign_digest = String::new();
    if let (Some(schedule), Some(plan)) = (&schedule, &sc.fault_plan) {
        let placed = schedule
            .place_avoiding(sc.array_size, &[])
            .map_err(|e| format!("campaign placement: {e}"))?;
        let plans = vec![FaultPlan::named("control"), plan.clone()];
        let config = CampaignConfig {
            trials: sc.campaign_trials.max(1),
            seed: seeds::substream(sc.seed, STREAM_CAMPAIGN),
            params: mm_device::arbitrary::params_corner(sc.params_corner),
        };
        let first = run_campaign(&placed, &plans, &config).map_err(|e| format!("campaign: {e}"))?;
        let second =
            run_campaign(&placed, &plans, &config).map_err(|e| format!("campaign: {e}"))?;
        if first != second {
            fail(
                &mut violations,
                "campaign-determinism",
                "two campaign runs with one seed diverged".to_string(),
            );
        }
        if first.plans[0].failures != 0 {
            fail(
                &mut violations,
                "healthy-control-clean",
                format!(
                    "healthy control plan failed {}/{} executions",
                    first.plans[0].failures, first.plans[0].executions
                ),
            );
        }
        campaign_digest = first
            .plans
            .iter()
            .map(|p| format!("{}:{}/{}", p.plan.name, p.failures, p.executions))
            .collect::<Vec<_>>()
            .join(",");

        // ── Stage 7: repair loop ─────────────────────────────────────────
        if sc.repair && sc.unlimited() && sc.max_vsteps > 0 {
            let legs = SynthSpec::paper_legs(&f, sc.max_rops, false);
            let spec = SynthSpec::mixed_mode(&f, sc.max_rops, legs, sc.max_vsteps)
                .map_err(|e| format!("repair spec: {e}"))?
                .with_options(options.clone());
            let mut repair_cfg = RepairConfig::new(sc.array_size);
            repair_cfg.campaign = config;
            let repair_plans = [plan.clone()];
            let outcome = synthesize_with_repair(
                &make_synth(false, false),
                &spec,
                &repair_plans,
                &repair_cfg,
            )
            .map_err(|e| format!("repair: {e}"))?;
            if outcome.succeeded() {
                if let Some(report) = &outcome.report {
                    if report.any_failures() {
                        fail(
                            &mut violations,
                            "repair-clean-report",
                            "repair claims success but the final campaign has failures".to_string(),
                        );
                    }
                }
                match &outcome.placement {
                    Some(placement) => {
                        if !placement.verify(&f) {
                            fail(
                                &mut violations,
                                "repair-placement-verify",
                                "repaired placement does not implement the target".to_string(),
                            );
                        }
                    }
                    None => fail(
                        &mut violations,
                        "repair-placement-verify",
                        "successful repair produced no placement".to_string(),
                    ),
                }
            }
        }
    }

    Ok(ScenarioReport {
        name: sc.name.clone(),
        fingerprint: format!("{cold_fp};campaign[{campaign_digest}]"),
        degraded: cold_report.status.is_degraded(),
        violations,
    })
}

/// One archived regression case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusCase {
    /// Corpus layout version ([`CORPUS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Why this case is in the corpus.
    pub description: String,
    /// The (possibly shrunk) scenario to replay.
    pub scenario: FuzzScenario,
}

/// A directory of replayable JSON regression cases.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if needed) the corpus directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Archives a case as `<scenario name>.json`, returning the path.
    pub fn archive(&self, case: &CorpusCase) -> std::io::Result<PathBuf> {
        let stem: String = case
            .scenario
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        let path = self.dir.join(format!("{stem}.json"));
        let text = serde_json::to_string_pretty(case).map_err(std::io::Error::other)?;
        // Atomic: a crash mid-archive must not leave a torn corpus case
        // that poisons every later replay run.
        mm_telemetry::atomic_write(&path, text)?;
        Ok(path)
    }

    /// Loads every `*.json` case, sorted by file name.
    pub fn load(&self) -> std::io::Result<Vec<(PathBuf, CorpusCase)>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut cases = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let case: CorpusCase = serde_json::from_str(&text)
                .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
            cases.push((path, case));
        }
        Ok(cases)
    }
}

/// The hand-picked seed corpus: one case per historically interesting
/// regime of the pipeline (dedup'd NOR fan-in, cancelled certification,
/// zero-deadline degradation, cell avoidance, jobs invariance, fault
/// campaigns under variability, repair, transients, R-only certification,
/// multi-output functions, constant functions, warm/cold agreement,
/// inprocessing with certification, inprocessing under cancellation, and
/// the `--no-inprocess` regime).
///
/// `tests/corpus/` holds these cases as committed JSON
/// (`mmsynth fuzz --emit-seed-corpus --corpus tests/corpus` regenerates
/// them after a schema change) and `tests/fuzz_corpus.rs` replays every
/// file in tier-1 CI.
pub fn seed_corpus() -> Vec<CorpusCase> {
    use mm_boolfn::generators;

    let base = |name: &str, seed: u64, outputs: Vec<String>| FuzzScenario {
        name: name.to_string(),
        seed,
        outputs,
        max_rops: 2,
        max_vsteps: 3,
        max_conflicts: None,
        zero_deadline: false,
        certify: false,
        jobs: vec![1],
        array_size: 16,
        avoid_cells: Vec::new(),
        params_corner: 0,
        fault_plan: None,
        campaign_trials: 2,
        repair: false,
        inprocess: true,
    };
    let bits = |f: &MultiOutputFn| -> Vec<String> {
        f.outputs().iter().map(TruthTable::to_bitstring).collect()
    };
    let case = |description: &str, scenario: FuzzScenario| CorpusCase {
        schema_version: CORPUS_SCHEMA_VERSION,
        description: description.to_string(),
        scenario,
    };

    // NOR(a, a) — a NOT through duplicated fan-in, the literal-dedup case.
    let a = TruthTable::var(2, 1).expect("2-input var x_1");
    let not_a = a.nor(&a);

    vec![
        case("NOR(a,a) literal dedup on the R-only certified ladder", {
            let mut s = base("seed-nor-dedup", 1, vec![not_a.to_bitstring()]);
            s.max_rops = 2;
            s.max_vsteps = 0;
            s.certify = true;
            s.jobs = vec![1, 2];
            s
        }),
        case(
            "cancelled (conflict-capped) solves must never carry proofs",
            {
                let mut s = base("seed-cancelled-no-proof", 2, bits(&generators::xor_gate(2)));
                s.max_conflicts = Some(1);
                s.certify = true;
                s
            },
        ),
        case(
            "zero deadline: deterministic degraded run, no optimality claims",
            {
                let mut s = base("seed-zero-deadline", 3, bits(&generators::xor_gate(2)));
                s.zero_deadline = true;
                s.jobs = vec![1, 2];
                s
            },
        ),
        case("placement must route around avoided (dead) cells", {
            let mut s = base("seed-avoided-cells", 4, bits(&generators::xor_gate(2)));
            s.avoid_cells = vec![0, 2];
            s.params_corner = 1;
            s
        }),
        case("cold portfolio verdicts agree across jobs = 1, 2, 8", {
            let mut s = base(
                "seed-jobs-invariance",
                5,
                bits(&generators::majority_gate(3)),
            );
            s.jobs = vec![1, 2, 8];
            s
        }),
        case(
            "campaign under HIGH variability stays reproducible, control clean",
            {
                let mut s = base(
                    "seed-variability-campaign",
                    6,
                    bits(&generators::and_gate(2)),
                );
                s.fault_plan = Some(
                    FaultPlan::named("high-variability")
                        .with_variability(mm_device::Variability::HIGH),
                );
                s.campaign_trials = 3;
                s.params_corner = 2;
                s
            },
        ),
        case(
            "stuck-at-LRS cell: diagnose, avoid, resynthesize, verify",
            {
                let mut s = base("seed-stuck-repair", 7, bits(&generators::xor_gate(2)));
                s.fault_plan =
                    Some(FaultPlan::named("stuck-lrs").with_stuck(3, mm_device::DeviceState::Lrs));
                s.repair = true;
                s
            },
        ),
        case(
            "transient bit flip mid-schedule exercises the campaign path",
            {
                let mut s = base("seed-transient-flip", 8, bits(&generators::or_gate(2)));
                s.fault_plan = Some(FaultPlan::named("transient").with_transient(2, 4));
                s.params_corner = 3;
                s
            },
        ),
        case(
            "R-only certified ladder: every UNSAT rung's DRAT proof re-checks",
            {
                let mut s = base("seed-ronly-certified", 9, bits(&generators::nor_gate(2)));
                s.max_rops = 3;
                s.max_vsteps = 0;
                s.certify = true;
                s
            },
        ),
        case(
            "multi-output function (half adder) through the full pipeline",
            {
                let f = MultiOutputFn::new(
                    "half-adder",
                    vec![
                        generators::xor_gate(2).outputs()[0].clone(),
                        generators::and_gate(2).outputs()[0].clone(),
                    ],
                )
                .expect("matching input counts");
                let mut s = base("seed-multi-output", 10, bits(&f));
                s.jobs = vec![1, 2];
                s
            },
        ),
        case(
            "constant-false target: trivial SAT at every rung, certified",
            {
                let mut s = base("seed-const-false", 11, vec!["0000".to_string()]);
                s.max_rops = 2;
                s.max_vsteps = 0;
                s.certify = true;
                s
            },
        ),
        case("warm and cold ladders agree rung for rung on maj3", {
            let mut s = base(
                "seed-maj3-warm-cold",
                12,
                bits(&generators::majority_gate(3)),
            );
            s.certify = true;
            s
        }),
        case(
            "inprocessing + certification: every UNSAT proof re-checks with \
             the pass enabled, and the on/off fingerprints agree",
            {
                let mut s = base(
                    "seed-inprocess-certified",
                    13,
                    bits(&generators::majority_gate(3)),
                );
                s.certify = true;
                s.jobs = vec![1, 2];
                s.inprocess = true;
                s
            },
        ),
        case(
            "inprocessing + cancellation: a conflict-capped solve may abort \
             mid-pass and must still carry no proof or certification",
            {
                let mut s = base("seed-inprocess-cancel", 14, bits(&generators::xor_gate(2)));
                s.max_conflicts = Some(2);
                s.certify = true;
                s.inprocess = true;
                s
            },
        ),
        case(
            "--no-inprocess regime: the legacy solver path stays exercised",
            {
                let mut s = base("seed-no-inprocess", 15, bits(&generators::xor_gate(2)));
                s.jobs = vec![1, 2];
                s.inprocess = false;
                s
            },
        ),
    ]
}

/// Summary of a [`run_fuzz`] sweep.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Scenarios whose cold ladder degraded (expected under zero
    /// deadlines / tight conflict caps — not a failure).
    pub degraded: usize,
    /// All invariant violations found.
    pub violations: Vec<Violation>,
    /// Corpus files written for (shrunk) failing scenarios.
    pub archived: Vec<PathBuf>,
    /// FNV-1a digest over every scenario fingerprint, in order — two sweeps
    /// with the same seed and budget must produce the same digest.
    pub fingerprint: u64,
}

/// Folds a scenario fingerprint into the sweep digest.
fn fold_fingerprint(digest: u64, fp: &str) -> u64 {
    let mut h = digest;
    for b in fp.bytes().chain([b'\n']) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `budget` generated scenarios rooted at `root_seed`.
///
/// Failing scenarios are shrunk with [`proptest::shrink::minimize`] (the
/// shrunk scenario must reproduce the *same invariant*) and archived to
/// `corpus` when one is given.
pub fn run_fuzz(
    root_seed: u64,
    budget: usize,
    corpus: Option<&Corpus>,
    cfg: &FuzzConfig,
    mut progress: impl FnMut(usize, &ScenarioReport),
) -> FuzzSummary {
    let mut summary = FuzzSummary {
        scenarios: 0,
        degraded: 0,
        violations: Vec::new(),
        archived: Vec::new(),
        fingerprint: 0xcbf2_9ce4_8422_2325,
    };
    for index in 0..budget {
        let scenario = FuzzScenario::generate(root_seed, index as u64);
        let (fingerprint, degraded, violations) = match run_scenario(&scenario, cfg) {
            Ok(report) => {
                progress(index, &report);
                (report.fingerprint, report.degraded, report.violations)
            }
            Err(e) => (
                "error".to_string(),
                false,
                vec![Violation {
                    scenario: scenario.name.clone(),
                    invariant: "scenario-error".to_string(),
                    detail: e,
                }],
            ),
        };
        summary.scenarios += 1;
        summary.degraded += usize::from(degraded);
        summary.fingerprint = fold_fingerprint(summary.fingerprint, &fingerprint);
        if violations.is_empty() {
            continue;
        }
        let shrunk = shrink_failing(scenario, &violations[0].invariant, cfg);
        if let Some(corpus) = corpus {
            let case = CorpusCase {
                schema_version: CORPUS_SCHEMA_VERSION,
                description: format!(
                    "shrunk reproducer for invariant `{}`: {}",
                    violations[0].invariant, violations[0].detail
                ),
                scenario: shrunk,
            };
            match corpus.archive(&case) {
                Ok(path) => summary.archived.push(path),
                Err(e) => summary.violations.push(Violation {
                    scenario: case.scenario.name.clone(),
                    invariant: "corpus-archive-error".to_string(),
                    detail: e.to_string(),
                }),
            }
        }
        summary.violations.extend(violations);
    }
    summary
}

/// Shrinks a failing scenario to a local minimum that still reproduces the
/// given invariant violation.
pub fn shrink_failing(scenario: FuzzScenario, invariant: &str, cfg: &FuzzConfig) -> FuzzScenario {
    proptest::shrink::minimize(scenario, |candidate| match run_scenario(candidate, cfg) {
        Ok(report) => report.violations.iter().any(|v| v.invariant == invariant),
        Err(_) => invariant == "scenario-error",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for index in 0..24 {
            let a = FuzzScenario::generate(42, index);
            let b = FuzzScenario::generate(42, index);
            assert_eq!(a, b);
            assert!(!a.jobs.is_empty());
            assert!(!a.outputs.is_empty());
            a.function().expect("generated scenarios parse");
            if let Some(plan) = &a.fault_plan {
                assert!(plan.max_cell().is_none_or(|c| c < a.array_size));
            }
        }
        assert_ne!(FuzzScenario::generate(42, 0), FuzzScenario::generate(43, 0));
    }

    #[test]
    fn scenario_roundtrips_through_corpus_json() {
        for index in 0..16 {
            let scenario = FuzzScenario::generate(7, index);
            let case = CorpusCase {
                schema_version: CORPUS_SCHEMA_VERSION,
                description: "roundtrip".to_string(),
                scenario,
            };
            let text = serde_json::to_string_pretty(&case).expect("serialize");
            let back: CorpusCase = serde_json::from_str(&text).expect("parse");
            assert_eq!(back, case);
        }
    }

    #[test]
    fn injected_violation_is_caught_and_shrinks_to_two_minterms() {
        let cfg = FuzzConfig {
            inject_violation: true,
        };
        // Find a generated scenario whose function has >= 2 minterms.
        let scenario = (0..32)
            .map(|i| FuzzScenario::generate(1, i))
            .find(|s| {
                let f = s.function().unwrap();
                f.outputs()
                    .iter()
                    .map(TruthTable::count_ones)
                    .sum::<usize>()
                    >= 2
            })
            .expect("some scenario trips the injection");
        let report = run_scenario(&scenario, &cfg).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "injected");

        let shrunk = shrink_failing(scenario, "injected", &cfg);
        let f = shrunk.function().unwrap();
        let ones: usize = f.outputs().iter().map(TruthTable::count_ones).sum();
        assert_eq!(ones, 2, "shrinking must reach the minimal reproducer");
        assert!(shrunk.fault_plan.is_none(), "irrelevant knobs are cleared");
        assert!(!shrunk.repair && !shrunk.certify);
        assert!(shrunk.avoid_cells.is_empty());
    }
}
