//! Serializable minimization jobs: the shared entry point behind the
//! `mmsynth minimize` CLI, the `mmsynthd` service, and the result cache.
//!
//! A [`MinimizeRequest`] captures *everything that determines a
//! minimization verdict* — the ladder shape and the per-call solver budget
//! — in a serde-able value, so the CLI and the daemon dispatch through one
//! code path and a cache key can be derived from the request alone.
//!
//! # Canonical solving
//!
//! [`minimize_canonical`] is the cache-aware entry point: it canonicalizes
//! the function under the cost-preserving NPN subgroup
//! ([`mm_boolfn::npn::canonicalize`]), minimizes the *canonical
//! representative*, and returns the transform alongside the report. Callers
//! serve the original function by mapping the canonical circuit back
//! through [`decanonicalize_circuit`] — a literal relabeling plus an output
//! reorder, which preserves every cost metric (`N_R`, `N_V`, `N_L`,
//! `N_VS`). Because the solver only ever sees canonical representatives,
//! a cache hit replays *exactly* the bytes a cold solve of the same
//! request would produce: both paths decanonicalize the same stored
//! canonical result.

use std::time::Duration;

use mm_boolfn::npn::{canonicalize, NpnTransform};
use mm_boolfn::MultiOutputFn;
use mm_circuit::{CircuitError, MmCircuit};
use mm_sat::{Budget, Deadline};

use crate::optimize::{parallel, OptimizeReport};
use crate::{EncodeOptions, SynthError, Synthesizer};

/// Which minimization ladder a request runs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MinimizeMode {
    /// The R-only ladder `N_R = 1..=max_rops` (paper baseline).
    ROnly {
        /// Largest R-op budget probed.
        max_rops: usize,
    },
    /// The two-phase mixed-mode ladder: minimal `N_R` at the full V-step
    /// budget, then minimal `N_VS` at that `N_R`.
    MixedMode {
        /// Largest R-op budget probed.
        max_rops: usize,
        /// Largest steps-per-leg budget probed.
        max_vsteps: usize,
        /// Whether the leg heuristic should use the adder shape.
        is_adder: bool,
    },
}

/// A complete minimization job description, shared by the CLI and the
/// service and stable under serde round-trips.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MinimizeRequest {
    /// Ladder shape and budgets.
    pub mode: MinimizeMode,
    /// Per-call conflict limit (`None` = unlimited). Conflict limits keep
    /// portfolio verdicts deterministic across worker counts.
    pub max_conflicts: Option<u64>,
    /// Wall-clock deadline for the whole run, applied relative to the
    /// moment [`run`](Self::run) starts. Deadline runs are *not*
    /// deterministic across machines or worker counts, so they are never
    /// admitted to the result cache.
    pub deadline: Option<Duration>,
    /// Whether UNSAT rungs must carry checker-accepted DRAT proofs.
    pub certify: bool,
}

impl MinimizeRequest {
    /// A mixed-mode request with no resource limits.
    pub fn mixed_mode(max_rops: usize, max_vsteps: usize, is_adder: bool) -> Self {
        Self {
            mode: MinimizeMode::MixedMode {
                max_rops,
                max_vsteps,
                is_adder,
            },
            max_conflicts: None,
            deadline: None,
            certify: false,
        }
    }

    /// An R-only request with no resource limits.
    pub fn r_only(max_rops: usize) -> Self {
        Self {
            mode: MinimizeMode::ROnly { max_rops },
            max_conflicts: None,
            deadline: None,
            certify: false,
        }
    }

    /// Whether this request's verdict is a pure function of the request —
    /// i.e. no wall-clock deadline can change what the solver concludes.
    /// Only deterministic requests may populate the result cache.
    pub fn is_deterministic(&self) -> bool {
        self.deadline.is_none()
    }

    /// The key-relevant part of the request: the fields that determine the
    /// verdict of a *completed* run. `deadline` is excluded — it can only
    /// turn an answer into `Unknown`, never change a conclusive one — and
    /// `certify` is excluded because certification never changes verdicts,
    /// only whether proofs are retained.
    pub fn cache_facet(&self) -> (MinimizeMode, Option<u64>) {
        (self.mode.clone(), self.max_conflicts)
    }

    /// The solver budget the request implies, with the deadline anchored
    /// at "now".
    pub fn budget(&self) -> Option<Budget> {
        let mut budget = self
            .max_conflicts
            .map(|c| Budget::new().with_max_conflicts(c));
        if let Some(d) = self.deadline {
            budget = Some(budget.unwrap_or_default().with_deadline(Deadline::after(d)));
        }
        budget
    }

    /// Runs the request's ladder on `f` with `jobs` portfolio workers.
    ///
    /// The synthesizer's certification flag and budget are overridden by
    /// the request (its telemetry and incremental settings are kept, except
    /// that certification forces cold solves as in the CLI).
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] from spec construction or synthesis.
    pub fn run(
        &self,
        synth: &Synthesizer,
        f: &MultiOutputFn,
        options: &EncodeOptions,
        jobs: usize,
    ) -> Result<OptimizeReport, SynthError> {
        let mut synth = synth.clone().with_certification(self.certify);
        if let Some(budget) = self.budget() {
            synth = synth.with_budget(budget);
        }
        match self.mode {
            MinimizeMode::ROnly { max_rops } => {
                parallel::minimize_r_only(&synth, f, max_rops, options, jobs)
            }
            MinimizeMode::MixedMode {
                max_rops,
                max_vsteps,
                is_adder,
            } => parallel::minimize_mixed_mode(
                &synth, f, max_rops, max_vsteps, is_adder, options, jobs,
            ),
        }
    }
}

/// The outcome of a canonical minimization: the report is about the
/// *canonical representative*; `transform` maps the original function onto
/// it (`canonical = transform.apply(original)`).
#[derive(Debug)]
pub struct CanonicalRun {
    /// The canonical representative that was actually solved.
    pub canonical: MultiOutputFn,
    /// The subgroup element with `canonical = transform.apply(original)`.
    pub transform: NpnTransform,
    /// The minimization report for `canonical`.
    pub report: OptimizeReport,
}

/// Cache-aware minimization: canonicalizes `f` under the cost-preserving
/// NPN subgroup, minimizes the canonical representative, and returns the
/// transform needed to map results back. Serving paths call
/// [`decanonicalize_circuit`] on `report.best`.
///
/// # Errors
///
/// Propagates [`SynthError`] from the underlying ladder.
pub fn minimize_canonical(
    request: &MinimizeRequest,
    synth: &Synthesizer,
    f: &MultiOutputFn,
    options: &EncodeOptions,
    jobs: usize,
) -> Result<CanonicalRun, SynthError> {
    let (canonical, transform) = canonicalize(f);
    let report = request.run(synth, &canonical, options, jobs)?;
    Ok(CanonicalRun {
        canonical,
        transform,
        report,
    })
}

/// Maps a circuit for the canonical representative back to one for the
/// original function: with `canonical = transform.apply(original)`, relabel
/// every literal and reorder the outputs through `transform.inverse()`.
/// Cost metrics are preserved exactly — the subgroup excludes output
/// complementation precisely so this holds.
///
/// # Errors
///
/// Propagates [`CircuitError`] from circuit reconstruction (impossible for
/// circuits produced by the synthesizer, which are structurally valid).
pub fn decanonicalize_circuit(
    circuit: &MmCircuit,
    transform: &NpnTransform,
) -> Result<MmCircuit, CircuitError> {
    let inv = transform.inverse();
    Ok(circuit
        .map_literals(|l| inv.map_literal(l))?
        .reorder_outputs(inv.output_perm()))
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::*;

    #[test]
    fn request_roundtrips_through_serde() {
        let req = MinimizeRequest {
            mode: MinimizeMode::MixedMode {
                max_rops: 3,
                max_vsteps: 4,
                is_adder: true,
            },
            max_conflicts: Some(10_000),
            deadline: Some(Duration::from_millis(1500)),
            certify: true,
        };
        let value = serde::Serialize::to_value(&req);
        let back: MinimizeRequest = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn deadline_requests_are_not_deterministic() {
        let mut req = MinimizeRequest::r_only(4);
        assert!(req.is_deterministic());
        req.deadline = Some(Duration::from_secs(1));
        assert!(!req.is_deterministic());
        // But the deadline is not part of the cache facet either way.
        let plain = MinimizeRequest::r_only(4);
        assert_eq!(req.cache_facet(), plain.cache_facet());
    }

    #[test]
    fn run_matches_direct_parallel_dispatch() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new();
        let req = MinimizeRequest::r_only(5);
        let via_request = req.run(&synth, &f, &opts, 2).unwrap();
        let direct = parallel::minimize_r_only(&synth, &f, 5, &opts, 2).unwrap();
        assert_eq!(via_request.proven_optimal, direct.proven_optimal);
        assert_eq!(
            via_request.best.map(|c| c.metrics().n_rops),
            direct.best.map(|c| c.metrics().n_rops),
        );
    }

    #[test]
    fn canonical_run_decanonicalizes_to_the_original_function() {
        // A non-canonical function: NAND's canonical representative is a
        // different table, so the transform is non-trivial. (Kept to
        // 2-input functions — the canonical representative of a harder
        // function can land in a much slower solver region.)
        for f in [generators::nand_gate(2), generators::xor_gate(2)] {
            let req = MinimizeRequest::mixed_mode(4, 3, false);
            let run = minimize_canonical(
                &req,
                &Synthesizer::new(),
                &f,
                &EncodeOptions::recommended(),
                2,
            )
            .unwrap();
            assert_eq!(run.canonical, run.transform.apply(&f));
            let canonical_best = run.report.best.expect("ladder finds a witness");
            let served = decanonicalize_circuit(&canonical_best, &run.transform).unwrap();
            assert!(
                served.implements(&f),
                "decanonicalized circuit serves {f:?}"
            );
            // The subgroup is cost-preserving: identical metrics.
            assert_eq!(served.metrics(), canonical_best.metrics());
        }
    }
}
