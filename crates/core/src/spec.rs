use mm_boolfn::{Literal, MultiOutputFn};
use mm_circuit::ROpKind;
use mm_sat::ExactlyOne;

use crate::SynthError;

/// How literal truth tables enter the formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodeMode {
    /// Literal and output truth tables are constant-folded into the
    /// connectivity clauses. Produces the smallest formulas and is the
    /// recommended default.
    #[default]
    Folded,
    /// Paper-shaped encoding: explicit `l_{i,q}` and `o_{i,q}` variables
    /// pinned by unit clauses (Eqs. 4 and 9), with the V-op/R-op defining
    /// equations written over those variables. Produces variable/clause
    /// counts comparable to the paper's Table IV.
    Faithful,
}

/// How the line array's shared bottom electrode is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharedBe {
    /// One BE selector per V-op *step*, shared by construction (smallest
    /// formula; the default).
    #[default]
    PerStepVar,
    /// Paper-shaped: one BE selector per V-op plus pairwise equality
    /// clauses `(g ∨ ¬g') ∧ (¬g ∨ g')` between legs.
    EqualityClauses,
    /// No constraint — models a hypothetical array with per-device BEs.
    Free,
}

/// Tunable aspects of the CNF encoding (the ablation axes of the bench
/// suite).
#[derive(Debug, Clone, Default)]
pub struct EncodeOptions {
    /// Literal handling; see [`EncodeMode`].
    pub mode: EncodeMode,
    /// Shared-BE realization; see [`SharedBe`].
    pub shared_be: SharedBe,
    /// Encoding of the mutex μ (paper Eq. 3).
    pub mutex: ExactlyOne,
    /// Break inter-leg permutation symmetry and (for commutative R-ops)
    /// input-order symmetry. Sound; often decisive for UNSAT proofs.
    pub symmetry_breaking: bool,
    /// Forbid R-ops from consuming earlier R-op outputs (no cascading).
    /// Useful for low-fidelity technologies where cascaded stateful
    /// operations are unreliable (paper §I).
    pub forbid_rop_cascade: bool,
    /// Pin the TE literal of specific V-ops: `(leg, step, literal)`.
    /// Realizes the paper's "forcing TE of V-op i to a specific literal j
    /// by adding a unit clause" (§III-A).
    pub forced_te: Vec<(usize, usize, Literal)>,
    /// Restrict the admissible literal set for all electrodes (defaults to
    /// the full `L_n`).
    pub allowed_literals: Option<Vec<Literal>>,
}

impl EncodeOptions {
    /// The default options with symmetry breaking enabled — the
    /// configuration used by the Table IV harness.
    pub fn recommended() -> Self {
        Self {
            symmetry_breaking: true,
            ..Self::default()
        }
    }
}

/// A physical-array constraint attached to a spec: the schedule must fit
/// on an `array_size`-cell line array while never placing anything on the
/// `avoid_cells` (known-defective positions).
///
/// The constraint is enforced *inside the CNF formula*: the encoder bounds
/// the number of distinct literal feeds so that legs + feeds + R-op outputs
/// fit into the working cells, making avoidance part of the optimality
/// claim rather than a post-hoc placement check. The synthesizer then
/// returns the concrete placed schedule
/// ([`SynthOutcome::placement`](crate::SynthOutcome)) routing around the
/// avoided cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAvoidance {
    /// Total cells of the physical array.
    pub array_size: usize,
    /// Defective cell indices the schedule must never touch.
    pub avoid_cells: Vec<usize>,
}

impl CellAvoidance {
    /// The avoided cells, sorted and deduplicated.
    pub fn dead_cells(&self) -> Vec<usize> {
        let mut cells = self.avoid_cells.clone();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Working cells remaining on the array.
    pub fn working_cells(&self) -> usize {
        self.array_size - self.dead_cells().len()
    }
}

/// A synthesis problem instance: the `Φ(f, N_V, N_R)` parameters.
///
/// Construct via [`SynthSpec::mixed_mode`] or [`SynthSpec::r_only`]; the
/// paper's leg-count conventions are available through
/// [`SynthSpec::paper_legs`].
#[derive(Debug, Clone)]
pub struct SynthSpec {
    function: MultiOutputFn,
    n_rops: usize,
    n_legs: usize,
    n_vsteps: usize,
    rop_kind: ROpKind,
    options: EncodeOptions,
    avoidance: Option<CellAvoidance>,
}

impl SynthSpec {
    /// A mixed-mode spec: `n_rops` R-ops fed by `n_legs` V-legs of
    /// `n_vsteps` steps each (`N_V = N_L · N_VS`).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidSpec`] when the combination cannot
    /// possibly realize any function (no legs *and* no R-ops, or legs with
    /// zero steps).
    pub fn mixed_mode(
        function: &MultiOutputFn,
        n_rops: usize,
        n_legs: usize,
        n_vsteps: usize,
    ) -> Result<Self, SynthError> {
        if n_legs == 0 && n_rops == 0 {
            return Err(SynthError::InvalidSpec {
                reason: "need at least one V-leg or R-op".into(),
            });
        }
        if n_legs > 0 && n_vsteps == 0 {
            return Err(SynthError::InvalidSpec {
                reason: "V-legs must have at least one step".into(),
            });
        }
        if n_legs == 0 && n_vsteps > 0 {
            return Err(SynthError::InvalidSpec {
                reason: "V-op steps without legs are meaningless".into(),
            });
        }
        Ok(Self {
            function: function.clone(),
            n_rops,
            n_legs,
            n_vsteps,
            rop_kind: ROpKind::MagicNor,
            options: EncodeOptions::recommended(),
            avoidance: None,
        })
    }

    /// An R-only spec `Φ(f, 0, N_R)`: the conventional stateful-logic
    /// baseline of the paper's Table IV.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidSpec`] if `n_rops` is zero.
    pub fn r_only(function: &MultiOutputFn, n_rops: usize) -> Result<Self, SynthError> {
        Self::mixed_mode(function, n_rops, 0, 0)
    }

    /// The paper's leg-count convention (§IV): `N_L = N_R + N_O`, minus one
    /// for adders whose global carry is realizable by V-ops alone.
    pub fn paper_legs(function: &MultiOutputFn, n_rops: usize, is_adder: bool) -> usize {
        let base = n_rops + function.n_outputs();
        if is_adder {
            base.saturating_sub(1)
        } else {
            base
        }
    }

    /// Replaces the R-op family (default: MAGIC NOR).
    pub fn with_rop_kind(mut self, kind: ROpKind) -> Self {
        self.rop_kind = kind;
        self
    }

    /// Replaces the encoding options.
    pub fn with_options(mut self, options: EncodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Constrains the synthesized schedule to an `array_size`-cell array
    /// with the given defective cells, provably avoided (see
    /// [`CellAvoidance`]). Cells may be listed in any order and repeats are
    /// ignored; validation happens at encode time.
    pub fn with_cell_avoidance(mut self, array_size: usize, avoid_cells: Vec<usize>) -> Self {
        self.avoidance = Some(CellAvoidance {
            array_size,
            avoid_cells,
        });
        self
    }

    /// Removes any attached cell-avoidance constraint.
    pub fn without_cell_avoidance(mut self) -> Self {
        self.avoidance = None;
        self
    }

    /// The attached array constraint, if any.
    pub fn cell_avoidance(&self) -> Option<&CellAvoidance> {
        self.avoidance.as_ref()
    }

    /// The specified function.
    pub fn function(&self) -> &MultiOutputFn {
        &self.function
    }

    /// Number of R-ops `N_R`.
    pub fn n_rops(&self) -> usize {
        self.n_rops
    }

    /// Number of V-legs `N_L`.
    pub fn n_legs(&self) -> usize {
        self.n_legs
    }

    /// Number of V-op steps per leg `N_VS`.
    pub fn n_vsteps(&self) -> usize {
        self.n_vsteps
    }

    /// Total number of V-ops `N_V = N_L · N_VS`.
    pub fn n_vops(&self) -> usize {
        self.n_legs * self.n_vsteps
    }

    /// The R-op family.
    pub fn rop_kind(&self) -> ROpKind {
        self.rop_kind
    }

    /// The encoding options.
    pub fn options(&self) -> &EncodeOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::*;

    #[test]
    fn constructors_validate() {
        let f = generators::and_gate(2);
        assert!(SynthSpec::mixed_mode(&f, 1, 2, 3).is_ok());
        assert!(SynthSpec::mixed_mode(&f, 0, 0, 0).is_err());
        assert!(SynthSpec::mixed_mode(&f, 1, 2, 0).is_err());
        assert!(SynthSpec::mixed_mode(&f, 1, 0, 2).is_err());
        assert!(SynthSpec::r_only(&f, 0).is_err());
        let spec = SynthSpec::r_only(&f, 3).unwrap();
        assert_eq!(spec.n_vops(), 0);
        assert_eq!(spec.n_rops(), 3);
    }

    #[test]
    fn paper_leg_convention() {
        // GF(2^2) multiplier: N_R = 4, N_O = 2, not an adder -> 6 legs.
        let gf = generators::gf22_multiplier();
        assert_eq!(SynthSpec::paper_legs(&gf, 4, false), 6);
        // 1-bit adder: N_R = 2, N_O = 2, adder -> 3 legs.
        let add = generators::ripple_adder(1);
        assert_eq!(SynthSpec::paper_legs(&add, 2, true), 3);
        // 3-bit adder: N_R = 5, N_O = 4, adder -> 8 legs (Table IV).
        let add3 = generators::ripple_adder(3);
        assert_eq!(SynthSpec::paper_legs(&add3, 5, true), 8);
    }
}
