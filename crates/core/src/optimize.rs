//! Minimization loops: the procedure behind the paper's Table IV.
//!
//! The synthesis call itself is a decision procedure for fixed budgets; the
//! paper obtains *optimal* circuits by "iteratively calling the procedure
//! with decreasing `N_V` and `N_R`" (§III). This module automates those
//! loops and records every call, so a Table IV row can report the found
//! circuit, whether its minimality was *proved* (UNSAT at the next smaller
//! budget) or only *bounded* (the paper's "≤" rows, where the solver timed
//! out).

pub mod parallel;

use std::time::Duration;

use mm_boolfn::MultiOutputFn;
use mm_circuit::MmCircuit;
use mm_sat::DratProof;

use crate::{EncodeOptions, SynthError, SynthResult, SynthSpec, Synthesizer};

/// One synthesis call made during a minimization run.
///
/// The serde representation backs `mmsynth --stats-json` and is schema-stable
/// (see the golden test in this module): `Duration` fields serialize as
/// `{"secs", "nanos"}` objects and the optional proof as DRAT text.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CallRecord {
    /// R-op budget of the call.
    pub n_rops: usize,
    /// Leg budget of the call.
    pub n_legs: usize,
    /// Steps-per-leg budget of the call.
    pub n_vsteps: usize,
    /// What the call concluded.
    pub result: SynthResultKind,
    /// CNF variables of the instance.
    pub n_vars: u32,
    /// CNF clauses of the instance.
    pub n_clauses: usize,
    /// Encode + solve time.
    pub time: Duration,
    /// DRAT steps emitted by the call (0 when proof logging was off).
    pub proof_steps: u64,
    /// Whether the call aborted because the run's wall-clock
    /// [`Deadline`](mm_sat::Deadline) expired (a subset of `Unknown`
    /// results).
    pub deadline_expired: bool,
    /// Time spent checking the call's proof (zero when not certified).
    pub check_time: Duration,
    /// Whether an `Unrealizable` answer is backed by a checker-accepted
    /// proof. Always `false` for `Realizable`/`Unknown` calls.
    pub certified: bool,
    /// The checker-accepted refutation itself, retained so certified runs
    /// can archive per-call proof files. `None` unless `certified`.
    pub proof: Option<DratProof>,
}

/// A [`SynthResult`] variant tag without the circuit
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SynthResultKind {
    /// The instance was satisfiable.
    Realizable,
    /// The instance was proved unsatisfiable.
    Unrealizable,
    /// The budget ran out.
    Unknown,
}

/// Why a minimization run degraded instead of concluding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The run's wall-clock [`Deadline`](mm_sat::Deadline) expired with
    /// budget points still undecided.
    DeadlineExpired,
    /// A per-call resource budget (conflicts, time, proof steps) was
    /// exhausted on a point that mattered for the optimality claim.
    BudgetExhausted,
    /// A worker thread panicked; its point is treated as undecided and the
    /// rest of the run continued.
    WorkerPanicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExpired => write!(f, "deadline expired"),
            Self::BudgetExhausted => write!(f, "budget exhausted"),
            Self::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

/// Whether a minimization run ran to a conclusive end or degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeStatus {
    /// Every budget point that mattered was decided (SAT or UNSAT).
    Complete,
    /// The run returned its best-known answer without deciding every
    /// relevant point. `best` is then an *unproven upper bound* (possibly a
    /// heuristic seed), and `proven_optimal` is guaranteed `false`.
    Degraded {
        /// What cut the run short.
        reason: DegradeReason,
    },
}

impl OptimizeStatus {
    /// Whether the run degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded { .. })
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The best circuit found, if any. On a
    /// [`Degraded`](OptimizeStatus::Degraded) run this is the best *known*
    /// circuit — possibly the heuristic seed — and only an upper bound.
    pub best: Option<MmCircuit>,
    /// Whether the next-smaller budget was *proved* infeasible. Never
    /// `true` on a degraded run.
    pub proven_optimal: bool,
    /// Whether the run concluded or degraded (deadline, budget, panic).
    pub status: OptimizeStatus,
    /// Every synthesis call, in execution order.
    pub calls: Vec<CallRecord>,
}

impl OptimizeReport {
    /// Total time across all recorded calls.
    pub fn total_time(&self) -> Duration {
        self.calls.iter().map(|c| c.time).sum()
    }
}

/// The degradation reason implied by a set of undecided calls: a deadline
/// expiry anywhere wins over plain budget exhaustion.
fn degrade_reason_from<'a>(
    mut unknowns: impl Iterator<Item = &'a CallRecord>,
) -> Option<DegradeReason> {
    let mut any = false;
    if unknowns.any(|c| {
        any = true;
        c.deadline_expired
    }) {
        return Some(DegradeReason::DeadlineExpired);
    }
    any.then_some(DegradeReason::BudgetExhausted)
}

/// Falls back to the heuristic mapper as a best-known upper bound when a
/// degraded run found no circuit at all. The seed is functionally verified
/// by the mapper; failure to map (never expected) just leaves `best` empty.
fn seed_upper_bound(f: &MultiOutputFn) -> Option<MmCircuit> {
    crate::heuristic::map(f).ok()
}

fn record(outcome: &crate::SynthOutcome, spec: &SynthSpec) -> CallRecord {
    CallRecord {
        n_rops: spec.n_rops(),
        n_legs: spec.n_legs(),
        n_vsteps: spec.n_vsteps(),
        result: match outcome.result {
            SynthResult::Realizable(_) => SynthResultKind::Realizable,
            SynthResult::Unrealizable => SynthResultKind::Unrealizable,
            SynthResult::Unknown => SynthResultKind::Unknown,
        },
        n_vars: outcome.encode_stats.n_vars,
        n_clauses: outcome.encode_stats.n_clauses,
        time: outcome.total_time(),
        proof_steps: outcome.solver_stats.proof_steps,
        deadline_expired: outcome.solver_stats.deadline_expired,
        check_time: outcome.solver_stats.proof_check_time,
        certified: outcome.certificate.is_some(),
        proof: outcome.certificate.as_ref().map(|c| c.proof.clone()),
    }
}

/// Finds the minimal `N_VS` for fixed `N_R` and `N_L`, starting from
/// `max_vsteps` and decreasing while satisfiable.
///
/// Mirrors the paper's inner loop: "`N_VS` is the smallest value for that
/// `N_R`". `proven_optimal` is true iff the first failing budget was a
/// genuine UNSAT (not a timeout).
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_vsteps(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    n_rops: usize,
    n_legs: usize,
    max_vsteps: usize,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    let mut best: Option<MmCircuit> = None;
    let mut proven = false;
    let mut degraded = false;
    let mut vsteps = max_vsteps;
    while vsteps >= 1 {
        let spec = SynthSpec::mixed_mode(f, n_rops, n_legs, vsteps)?.with_options(options.clone());
        let outcome = synth.run(&spec)?;
        calls.push(record(&outcome, &spec));
        match outcome.result {
            SynthResult::Realizable(c) => {
                best = Some(c);
                vsteps -= 1;
            }
            SynthResult::Unrealizable => {
                proven = best.is_some();
                break;
            }
            SynthResult::Unknown => {
                degraded = true;
                break;
            }
        }
    }
    // Ran all the way down to 1 step satisfiable: optimal by construction.
    if best.as_ref().is_some_and(|c| c.metrics().n_vsteps == 1) {
        proven = true;
    }
    let status = if degraded {
        OptimizeStatus::Degraded {
            reason: degrade_reason_from(
                calls
                    .iter()
                    .filter(|c| c.result == SynthResultKind::Unknown),
            )
            .unwrap_or(DegradeReason::BudgetExhausted),
        }
    } else {
        OptimizeStatus::Complete
    };
    Ok(OptimizeReport {
        best,
        proven_optimal: proven && !status.is_degraded(),
        status,
        calls,
    })
}

/// Finds the minimal `N_R` (with the paper's leg convention
/// `N_L = N_R + N_O [− 1 for adders]`), minimizing `N_VS` for the smallest
/// feasible `N_R`.
///
/// Mirrors the paper's outer loop for the MM rows of Table IV: `N_R` is the
/// smallest number for which `Φ(f, N_V, N_R)` is satisfiable within
/// `max_vsteps`, and `N_VS` the smallest for that `N_R`.
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_mixed_mode(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    max_vsteps: usize,
    is_adder: bool,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    for n_rops in 0..=max_rops {
        let n_legs = SynthSpec::paper_legs(f, n_rops, is_adder);
        let spec =
            SynthSpec::mixed_mode(f, n_rops, n_legs, max_vsteps)?.with_options(options.clone());
        let outcome = synth.run(&spec)?;
        calls.push(record(&outcome, &spec));
        if let SynthResult::Realizable(c) = outcome.result {
            // Feasible at this N_R: shrink the V-step budget.
            let mut inner = minimize_vsteps(synth, f, n_rops, n_legs, max_vsteps, options)?;
            calls.append(&mut inner.calls);
            // Outer-loop Unknowns below the found N_R also degrade the run.
            let status = match (
                inner.status,
                degrade_reason_from(
                    calls
                        .iter()
                        .filter(|r| r.n_vsteps == max_vsteps && r.n_rops < n_rops)
                        .filter(|r| r.result == SynthResultKind::Unknown),
                ),
            ) {
                (s @ OptimizeStatus::Degraded { .. }, _) => s,
                (OptimizeStatus::Complete, Some(reason)) => OptimizeStatus::Degraded { reason },
                (OptimizeStatus::Complete, None) => OptimizeStatus::Complete,
            };
            return Ok(OptimizeReport {
                // The inner loop re-solves the SAT point, but under a
                // deadline it may come back empty — the outer witness is
                // then still a valid upper bound.
                best: inner.best.or(Some(c)),
                // N_R minimality is proven iff every smaller N_R was a real
                // UNSAT; N_VS minimality comes from the inner loop.
                proven_optimal: inner.proven_optimal
                    && !status.is_degraded()
                    && calls
                        .iter()
                        .filter(|c| c.n_rops < n_rops && c.n_vsteps == max_vsteps)
                        .all(|c| c.result == SynthResultKind::Unrealizable),
                status,
                calls,
            });
        }
    }
    // No feasible N_R found. If every point was conclusively UNSAT the
    // absence is a theorem; otherwise degrade with the heuristic mapper's
    // circuit as the best-known upper bound.
    let status = match degrade_reason_from(
        calls
            .iter()
            .filter(|c| c.result == SynthResultKind::Unknown),
    ) {
        Some(reason) => OptimizeStatus::Degraded { reason },
        None => OptimizeStatus::Complete,
    };
    Ok(OptimizeReport {
        best: status.is_degraded().then(|| seed_upper_bound(f)).flatten(),
        proven_optimal: false,
        status,
        calls,
    })
}

/// Finds the minimal `N_R` for an R-only realization `Φ(f, 0, N_R)`,
/// searching upward from 1 (the conventional-paradigm baseline of
/// Table IV).
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_r_only(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    let mut unknown_below = false;
    for n_rops in 1..=max_rops {
        let spec = SynthSpec::r_only(f, n_rops)?.with_options(options.clone());
        let outcome = synth.run(&spec)?;
        calls.push(record(&outcome, &spec));
        match outcome.result {
            SynthResult::Realizable(c) => {
                let status = match degrade_reason_from(
                    calls
                        .iter()
                        .filter(|c| c.result == SynthResultKind::Unknown),
                ) {
                    Some(reason) => OptimizeStatus::Degraded { reason },
                    None => OptimizeStatus::Complete,
                };
                return Ok(OptimizeReport {
                    best: Some(c),
                    proven_optimal: !unknown_below && !status.is_degraded(),
                    status,
                    calls,
                });
            }
            SynthResult::Unrealizable => {}
            SynthResult::Unknown => unknown_below = true,
        }
    }
    // Degraded R-only runs have no heuristic fallback: the mapper emits
    // mixed-mode circuits, which are not valid R-only upper bounds.
    let status = match degrade_reason_from(
        calls
            .iter()
            .filter(|c| c.result == SynthResultKind::Unknown),
    ) {
        Some(reason) => OptimizeStatus::Degraded { reason },
        None => OptimizeStatus::Complete,
    };
    Ok(OptimizeReport {
        best: None,
        proven_optimal: false,
        status,
        calls,
    })
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::*;

    #[test]
    fn minimize_vsteps_finds_and2_optimum() {
        let f = generators::and_gate(2);
        let report = minimize_vsteps(
            &Synthesizer::new(),
            &f,
            0,
            1,
            4,
            &EncodeOptions::recommended(),
        )
        .unwrap();
        let best = report.best.expect("AND2 is V-realizable");
        assert_eq!(
            best.metrics().n_vsteps,
            1,
            "AND2 = V(0, x1, ~x2) in one step"
        );
        assert!(
            report.proven_optimal,
            "reaching 1 step is optimal by construction"
        );
        assert_eq!(report.calls.len(), 4);
    }

    #[test]
    fn minimize_r_only_nor_takes_one_gate() {
        let f = generators::nor_gate(2);
        let report =
            minimize_r_only(&Synthesizer::new(), &f, 4, &EncodeOptions::recommended()).unwrap();
        assert_eq!(report.best.expect("NOR2 is one R-op").metrics().n_rops, 1);
        assert!(report.proven_optimal);
    }

    #[test]
    fn minimize_r_only_xor_takes_three_gates() {
        let f = generators::xor_gate(2);
        let report =
            minimize_r_only(&Synthesizer::new(), &f, 5, &EncodeOptions::recommended()).unwrap();
        assert_eq!(report.best.expect("XOR2 from NORs").metrics().n_rops, 3);
        assert!(report.proven_optimal);
        assert_eq!(report.calls.len(), 3); // 1, 2 UNSAT; 3 SAT
    }

    #[test]
    fn budget_exhaustion_never_claims_optimality() {
        use mm_sat::Budget;
        // The budget is checked at solver restarts, so tiny calls may still
        // complete under a 1-conflict budget; the invariants are that a
        // missing circuit is never "optimal" and that any Unknown below the
        // found budget forfeits the optimality claim.
        let f = generators::gf22_multiplier();
        let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(1));
        let report = minimize_r_only(&synth, &f, 5, &EncodeOptions::recommended()).unwrap();
        if report.best.is_none() {
            assert!(!report.proven_optimal, "no circuit, no optimality claim");
        }
        let unknown_below_sat = report
            .calls
            .iter()
            .take_while(|c| c.result != SynthResultKind::Realizable)
            .any(|c| c.result == SynthResultKind::Unknown);
        if unknown_below_sat {
            assert!(
                !report.proven_optimal,
                "Unknown below the optimum forfeits the proof"
            );
        }
        assert!(report.total_time() > std::time::Duration::ZERO);
    }

    /// Golden-JSON schema stability for [`CallRecord`]: `--stats-json`
    /// consumers parse this exact shape. A field rename or re-ordering is a
    /// schema break.
    #[test]
    fn call_record_serde_schema_is_stable() {
        let record = CallRecord {
            n_rops: 2,
            n_legs: 3,
            n_vsteps: 4,
            result: SynthResultKind::Unrealizable,
            n_vars: 120,
            n_clauses: 456,
            time: Duration::new(0, 7_000),
            proof_steps: 5,
            deadline_expired: false,
            check_time: Duration::new(0, 1_000),
            certified: true,
            proof: Some(mm_sat::DratProof::from_steps(vec![
                mm_sat::drat::ProofStep::Add(vec![]),
            ])),
        };
        let json = serde_json::to_string(&record).expect("record serialize");
        let golden = concat!(
            "{\"n_rops\":2,\"n_legs\":3,\"n_vsteps\":4,\"result\":\"Unrealizable\",",
            "\"n_vars\":120,\"n_clauses\":456,\"time\":{\"secs\":0,\"nanos\":7000},",
            "\"proof_steps\":5,\"deadline_expired\":false,",
            "\"check_time\":{\"secs\":0,\"nanos\":1000},\"certified\":true,",
            "\"proof\":\"0\\n\"}"
        );
        assert_eq!(json, golden);

        let back: CallRecord = serde_json::from_str(&json).expect("record parse");
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);
        assert!(back.proof.expect("proof survives").is_concluded());
    }

    #[test]
    fn minimize_mixed_mode_xor() {
        let f = generators::xor_gate(2);
        let report = minimize_mixed_mode(
            &Synthesizer::new(),
            &f,
            3,
            3,
            false,
            &EncodeOptions::recommended(),
        )
        .unwrap();
        let best = report.best.expect("XOR2 is MM-realizable");
        assert!(best.implements(&f));
        // XOR needs at least one R-op (V-ops alone cannot do it).
        assert!(best.metrics().n_rops >= 1);
    }
}
