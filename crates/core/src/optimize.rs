//! Minimization loops: the procedure behind the paper's Table IV.
//!
//! The synthesis call itself is a decision procedure for fixed budgets; the
//! paper obtains *optimal* circuits by "iteratively calling the procedure
//! with decreasing `N_V` and `N_R`" (§III). This module automates those
//! loops and records every call, so a Table IV row can report the found
//! circuit, whether its minimality was *proved* (UNSAT at the next smaller
//! budget) or only *bounded* (the paper's "≤" rows, where the solver timed
//! out).

pub mod parallel;

use std::sync::Arc;
use std::time::Duration;

use mm_boolfn::MultiOutputFn;
use mm_circuit::MmCircuit;
use mm_sat::{Budget, ClauseBus, Diversity, DratProof, Solver};

use crate::encoder::{self, SharedBase};
use crate::{EncodeOptions, SynthError, SynthOutcome, SynthResult, SynthSpec, Synthesizer};

/// One synthesis call made during a minimization run.
///
/// The serde representation backs `mmsynth --stats-json` and is schema-stable
/// (see the golden test in this module): `Duration` fields serialize as
/// `{"secs", "nanos"}` objects and the optional proof as DRAT text.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CallRecord {
    /// R-op budget of the call.
    pub n_rops: usize,
    /// Leg budget of the call.
    pub n_legs: usize,
    /// Steps-per-leg budget of the call.
    pub n_vsteps: usize,
    /// What the call concluded.
    pub result: SynthResultKind,
    /// CNF variables of the instance.
    pub n_vars: u32,
    /// CNF clauses of the instance.
    pub n_clauses: usize,
    /// Encode + solve time.
    pub time: Duration,
    /// DRAT steps emitted by the call (0 when proof logging was off).
    pub proof_steps: u64,
    /// Whether the call aborted because the run's wall-clock
    /// [`Deadline`](mm_sat::Deadline) expired (a subset of `Unknown`
    /// results).
    pub deadline_expired: bool,
    /// Time spent checking the call's proof (zero when not certified).
    pub check_time: Duration,
    /// Whether an `Unrealizable` answer is backed by a checker-accepted
    /// proof. Always `false` for `Realizable`/`Unknown` calls.
    pub certified: bool,
    /// The checker-accepted refutation itself, retained so certified runs
    /// can archive per-call proof files. `None` unless `certified`.
    pub proof: Option<DratProof>,
}

/// A [`SynthResult`] variant tag without the circuit
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SynthResultKind {
    /// The instance was satisfiable.
    Realizable,
    /// The instance was proved unsatisfiable.
    Unrealizable,
    /// The budget ran out.
    Unknown,
}

/// Why a minimization run degraded instead of concluding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The run's wall-clock [`Deadline`](mm_sat::Deadline) expired with
    /// budget points still undecided.
    DeadlineExpired,
    /// A per-call resource budget (conflicts, time, proof steps) was
    /// exhausted on a point that mattered for the optimality claim.
    BudgetExhausted,
    /// A worker thread panicked; its point is treated as undecided and the
    /// rest of the run continued.
    WorkerPanicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExpired => write!(f, "deadline expired"),
            Self::BudgetExhausted => write!(f, "budget exhausted"),
            Self::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

/// Whether a minimization run ran to a conclusive end or degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeStatus {
    /// Every budget point that mattered was decided (SAT or UNSAT).
    Complete,
    /// The run returned its best-known answer without deciding every
    /// relevant point. `best` is then an *unproven upper bound* (possibly a
    /// heuristic seed), and `proven_optimal` is guaranteed `false`.
    Degraded {
        /// What cut the run short.
        reason: DegradeReason,
    },
}

impl OptimizeStatus {
    /// Whether the run degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded { .. })
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The best circuit found, if any. On a
    /// [`Degraded`](OptimizeStatus::Degraded) run this is the best *known*
    /// circuit — possibly the heuristic seed — and only an upper bound.
    pub best: Option<MmCircuit>,
    /// Whether the next-smaller budget was *proved* infeasible. Never
    /// `true` on a degraded run.
    pub proven_optimal: bool,
    /// Whether the run concluded or degraded (deadline, budget, panic).
    pub status: OptimizeStatus,
    /// Every synthesis call, in execution order.
    pub calls: Vec<CallRecord>,
}

impl OptimizeReport {
    /// Total time across all recorded calls.
    pub fn total_time(&self) -> Duration {
        self.calls.iter().map(|c| c.time).sum()
    }
}

/// The degradation reason implied by a set of undecided calls: a deadline
/// expiry anywhere wins over plain budget exhaustion.
fn degrade_reason_from<'a>(
    mut unknowns: impl Iterator<Item = &'a CallRecord>,
) -> Option<DegradeReason> {
    let mut any = false;
    if unknowns.any(|c| {
        any = true;
        c.deadline_expired
    }) {
        return Some(DegradeReason::DeadlineExpired);
    }
    any.then_some(DegradeReason::BudgetExhausted)
}

/// Falls back to the heuristic mapper as a best-known upper bound when a
/// degraded run found no circuit at all. The seed is functionally verified
/// by the mapper; failure to map (never expected) just leaves `best` empty.
fn seed_upper_bound(f: &MultiOutputFn) -> Option<MmCircuit> {
    crate::heuristic::map(f).ok()
}

/// The solving engine for one ladder: either the classic cold path (a fresh
/// encode + solver per rung) or a warm path holding one long-lived solver
/// over a [`SharedBase`], activating rungs via assumptions.
///
/// Warm engines keep their learned clauses across rungs; attaching a
/// [`ClauseBus`] additionally shares strong learned clauses between the
/// engines of a parallel portfolio. The engine choice never changes
/// verdicts — see the equisatisfiability argument on [`SharedBase`] and
/// `tests/incremental_differential.rs`.
pub(crate) enum RungEngine<'a> {
    /// Cold per-rung solving via [`Synthesizer::run`].
    Cold(&'a Synthesizer),
    /// One long-lived solver descending the ladder on a shared base.
    /// Boxed: a `Solver` is hundreds of bytes of watch/heap state, far
    /// larger than the `Cold` variant.
    Warm {
        synth: &'a Synthesizer,
        base: Arc<SharedBase>,
        solver: Box<Solver>,
    },
}

impl<'a> RungEngine<'a> {
    /// The engine a serial ladder topped by `top` should use: warm when the
    /// synthesizer [asks for it](Synthesizer::with_incremental) and the spec
    /// is expressible in a shared base, cold otherwise.
    fn for_ladder(synth: &'a Synthesizer, top: &SynthSpec) -> Result<Self, SynthError> {
        if synth.incremental_for(top) {
            let _encode_span = synth.telemetry().span("encode");
            let base = Arc::new(encoder::encode_shared_base(top)?);
            Ok(Self::warm(synth, base, None, Diversity::canonical()))
        } else {
            Ok(Self::Cold(synth))
        }
    }

    /// A warm engine over an already-encoded base, optionally wired to a
    /// portfolio clause bus, with a per-worker [`Diversity`] profile
    /// (serial ladders use [`Diversity::canonical`], which changes
    /// nothing).
    ///
    /// The base's guard variables are frozen up front: the ladder's
    /// assumption set grows as it descends, and inprocessing must never
    /// eliminate a variable a later rung will assume.
    fn warm(
        synth: &'a Synthesizer,
        base: Arc<SharedBase>,
        bus: Option<&ClauseBus>,
        diversity: Diversity,
    ) -> Self {
        let mut solver = Solver::new(base.cnf.clone())
            .with_telemetry(synth.telemetry().clone())
            .with_diversity(diversity);
        if let Some(bus) = bus {
            solver = solver.with_clause_bus(bus.clone());
        }
        solver.freeze_vars(base.guard_vars());
        Self::Warm {
            synth,
            base,
            solver: Box::new(solver),
        }
    }

    /// Solves one rung under the synthesizer's configured budget.
    fn run(&mut self, spec: &SynthSpec) -> Result<SynthOutcome, SynthError> {
        let budget = match self {
            Self::Cold(synth) => synth.budget(),
            Self::Warm { synth, .. } => synth.budget(),
        };
        self.run_with_budget(spec, budget)
    }

    /// Solves one rung under an explicit per-call budget (the parallel
    /// portfolio threads its cancellation token through here).
    fn run_with_budget(
        &mut self,
        spec: &SynthSpec,
        budget: Budget,
    ) -> Result<SynthOutcome, SynthError> {
        match self {
            Self::Cold(synth) => synth.clone().with_budget(budget).run(spec),
            Self::Warm {
                synth,
                base,
                solver,
            } => synth.run_on_base(solver, base, spec, budget),
        }
    }
}

fn record(outcome: &crate::SynthOutcome, spec: &SynthSpec) -> CallRecord {
    CallRecord {
        n_rops: spec.n_rops(),
        n_legs: spec.n_legs(),
        n_vsteps: spec.n_vsteps(),
        result: match outcome.result {
            SynthResult::Realizable(_) => SynthResultKind::Realizable,
            SynthResult::Unrealizable => SynthResultKind::Unrealizable,
            SynthResult::Unknown => SynthResultKind::Unknown,
        },
        n_vars: outcome.encode_stats.n_vars,
        n_clauses: outcome.encode_stats.n_clauses,
        time: outcome.total_time(),
        proof_steps: outcome.solver_stats.proof_steps,
        deadline_expired: outcome.solver_stats.deadline_expired,
        check_time: outcome.solver_stats.proof_check_time,
        certified: outcome.certificate.is_some(),
        proof: outcome.certificate.as_ref().map(|c| c.proof.clone()),
    }
}

/// Finds the minimal `N_VS` for fixed `N_R` and `N_L`, starting from
/// `max_vsteps` and decreasing while satisfiable.
///
/// Mirrors the paper's inner loop: "`N_VS` is the smallest value for that
/// `N_R`". `proven_optimal` is true iff the first failing budget was a
/// genuine UNSAT (not a timeout).
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_vsteps(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    n_rops: usize,
    n_legs: usize,
    max_vsteps: usize,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let top = SynthSpec::mixed_mode(f, n_rops, n_legs, max_vsteps)?.with_options(options.clone());
    let mut engine = RungEngine::for_ladder(synth, &top)?;
    minimize_vsteps_on(&mut engine, f, n_rops, n_legs, max_vsteps, options)
}

/// [`minimize_vsteps`] on a caller-supplied engine, so an enclosing ladder
/// (e.g. [`minimize_mixed_mode`]'s outer loop) can keep one warm solver —
/// and its learned clauses — across both phases.
fn minimize_vsteps_on(
    engine: &mut RungEngine<'_>,
    f: &MultiOutputFn,
    n_rops: usize,
    n_legs: usize,
    max_vsteps: usize,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    let mut best: Option<MmCircuit> = None;
    let mut proven = false;
    let mut degraded = false;
    let mut vsteps = max_vsteps;
    while vsteps >= 1 {
        let spec = SynthSpec::mixed_mode(f, n_rops, n_legs, vsteps)?.with_options(options.clone());
        let outcome = engine.run(&spec)?;
        calls.push(record(&outcome, &spec));
        match outcome.result {
            SynthResult::Realizable(c) => {
                best = Some(c);
                vsteps -= 1;
            }
            SynthResult::Unrealizable => {
                proven = best.is_some();
                break;
            }
            SynthResult::Unknown => {
                degraded = true;
                break;
            }
        }
    }
    // Ran all the way down to 1 step satisfiable: optimal by construction.
    if best.as_ref().is_some_and(|c| c.metrics().n_vsteps == 1) {
        proven = true;
    }
    let status = if degraded {
        OptimizeStatus::Degraded {
            reason: degrade_reason_from(
                calls
                    .iter()
                    .filter(|c| c.result == SynthResultKind::Unknown),
            )
            .unwrap_or(DegradeReason::BudgetExhausted),
        }
    } else {
        OptimizeStatus::Complete
    };
    Ok(OptimizeReport {
        best,
        proven_optimal: proven && !status.is_degraded(),
        status,
        calls,
    })
}

/// Finds the minimal `N_R` (with the paper's leg convention
/// `N_L = N_R + N_O [− 1 for adders]`), minimizing `N_VS` for the smallest
/// feasible `N_R`.
///
/// Mirrors the paper's outer loop for the MM rows of Table IV: `N_R` is the
/// smallest number for which `Φ(f, N_V, N_R)` is satisfiable within
/// `max_vsteps`, and `N_VS` the smallest for that `N_R`.
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_mixed_mode(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    max_vsteps: usize,
    is_adder: bool,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    // The outer ladder's top rung: maximal R-ops and (by the monotone leg
    // convention) maximal legs, so every outer probe is a sub-budget of it.
    let top_legs = SynthSpec::paper_legs(f, max_rops, is_adder);
    let top =
        SynthSpec::mixed_mode(f, max_rops, top_legs, max_vsteps)?.with_options(options.clone());
    let mut engine = RungEngine::for_ladder(synth, &top)?;
    for n_rops in 0..=max_rops {
        let n_legs = SynthSpec::paper_legs(f, n_rops, is_adder);
        let spec =
            SynthSpec::mixed_mode(f, n_rops, n_legs, max_vsteps)?.with_options(options.clone());
        let outcome = engine.run(&spec)?;
        calls.push(record(&outcome, &spec));
        if let SynthResult::Realizable(c) = outcome.result {
            // Feasible at this N_R: shrink the V-step budget on the same
            // engine, so a warm solver carries its outer-ladder clauses
            // into the inner descent.
            let mut inner =
                minimize_vsteps_on(&mut engine, f, n_rops, n_legs, max_vsteps, options)?;
            calls.append(&mut inner.calls);
            // Outer-loop Unknowns below the found N_R also degrade the run.
            let status = match (
                inner.status,
                degrade_reason_from(
                    calls
                        .iter()
                        .filter(|r| r.n_vsteps == max_vsteps && r.n_rops < n_rops)
                        .filter(|r| r.result == SynthResultKind::Unknown),
                ),
            ) {
                (s @ OptimizeStatus::Degraded { .. }, _) => s,
                (OptimizeStatus::Complete, Some(reason)) => OptimizeStatus::Degraded { reason },
                (OptimizeStatus::Complete, None) => OptimizeStatus::Complete,
            };
            return Ok(OptimizeReport {
                // The inner loop re-solves the SAT point, but under a
                // deadline it may come back empty — the outer witness is
                // then still a valid upper bound.
                best: inner.best.or(Some(c)),
                // N_R minimality is proven iff every smaller N_R was a real
                // UNSAT; N_VS minimality comes from the inner loop.
                proven_optimal: inner.proven_optimal
                    && !status.is_degraded()
                    && calls
                        .iter()
                        .filter(|c| c.n_rops < n_rops && c.n_vsteps == max_vsteps)
                        .all(|c| c.result == SynthResultKind::Unrealizable),
                status,
                calls,
            });
        }
    }
    // No feasible N_R found. If every point was conclusively UNSAT the
    // absence is a theorem; otherwise degrade with the heuristic mapper's
    // circuit as the best-known upper bound.
    let status = match degrade_reason_from(
        calls
            .iter()
            .filter(|c| c.result == SynthResultKind::Unknown),
    ) {
        Some(reason) => OptimizeStatus::Degraded { reason },
        None => OptimizeStatus::Complete,
    };
    Ok(OptimizeReport {
        best: status.is_degraded().then(|| seed_upper_bound(f)).flatten(),
        proven_optimal: false,
        status,
        calls,
    })
}

/// Finds the minimal `N_R` for an R-only realization `Φ(f, 0, N_R)`,
/// searching upward from 1 (the conventional-paradigm baseline of
/// Table IV).
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_r_only(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    options: &EncodeOptions,
) -> Result<OptimizeReport, SynthError> {
    let mut calls = Vec::new();
    let mut unknown_below = false;
    let mut engine = if max_rops >= 1 {
        let top = SynthSpec::r_only(f, max_rops)?.with_options(options.clone());
        RungEngine::for_ladder(synth, &top)?
    } else {
        RungEngine::Cold(synth)
    };
    for n_rops in 1..=max_rops {
        let spec = SynthSpec::r_only(f, n_rops)?.with_options(options.clone());
        let outcome = engine.run(&spec)?;
        calls.push(record(&outcome, &spec));
        match outcome.result {
            SynthResult::Realizable(c) => {
                let status = match degrade_reason_from(
                    calls
                        .iter()
                        .filter(|c| c.result == SynthResultKind::Unknown),
                ) {
                    Some(reason) => OptimizeStatus::Degraded { reason },
                    None => OptimizeStatus::Complete,
                };
                return Ok(OptimizeReport {
                    best: Some(c),
                    proven_optimal: !unknown_below && !status.is_degraded(),
                    status,
                    calls,
                });
            }
            SynthResult::Unrealizable => {}
            SynthResult::Unknown => unknown_below = true,
        }
    }
    // Degraded R-only runs have no heuristic fallback: the mapper emits
    // mixed-mode circuits, which are not valid R-only upper bounds.
    let status = match degrade_reason_from(
        calls
            .iter()
            .filter(|c| c.result == SynthResultKind::Unknown),
    ) {
        Some(reason) => OptimizeStatus::Degraded { reason },
        None => OptimizeStatus::Complete,
    };
    Ok(OptimizeReport {
        best: None,
        proven_optimal: false,
        status,
        calls,
    })
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::*;

    #[test]
    fn minimize_vsteps_finds_and2_optimum() {
        let f = generators::and_gate(2);
        let report = minimize_vsteps(
            &Synthesizer::new(),
            &f,
            0,
            1,
            4,
            &EncodeOptions::recommended(),
        )
        .unwrap();
        let best = report.best.expect("AND2 is V-realizable");
        assert_eq!(
            best.metrics().n_vsteps,
            1,
            "AND2 = V(0, x1, ~x2) in one step"
        );
        assert!(
            report.proven_optimal,
            "reaching 1 step is optimal by construction"
        );
        assert_eq!(report.calls.len(), 4);
    }

    #[test]
    fn minimize_r_only_nor_takes_one_gate() {
        let f = generators::nor_gate(2);
        let report =
            minimize_r_only(&Synthesizer::new(), &f, 4, &EncodeOptions::recommended()).unwrap();
        assert_eq!(report.best.expect("NOR2 is one R-op").metrics().n_rops, 1);
        assert!(report.proven_optimal);
    }

    #[test]
    fn minimize_r_only_xor_takes_three_gates() {
        let f = generators::xor_gate(2);
        let report =
            minimize_r_only(&Synthesizer::new(), &f, 5, &EncodeOptions::recommended()).unwrap();
        assert_eq!(report.best.expect("XOR2 from NORs").metrics().n_rops, 3);
        assert!(report.proven_optimal);
        assert_eq!(report.calls.len(), 3); // 1, 2 UNSAT; 3 SAT
    }

    #[test]
    fn budget_exhaustion_never_claims_optimality() {
        use mm_sat::Budget;
        // The budget is checked at solver restarts, so tiny calls may still
        // complete under a 1-conflict budget; the invariants are that a
        // missing circuit is never "optimal" and that any Unknown below the
        // found budget forfeits the optimality claim.
        let f = generators::gf22_multiplier();
        let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(1));
        let report = minimize_r_only(&synth, &f, 5, &EncodeOptions::recommended()).unwrap();
        if report.best.is_none() {
            assert!(!report.proven_optimal, "no circuit, no optimality claim");
        }
        let unknown_below_sat = report
            .calls
            .iter()
            .take_while(|c| c.result != SynthResultKind::Realizable)
            .any(|c| c.result == SynthResultKind::Unknown);
        if unknown_below_sat {
            assert!(
                !report.proven_optimal,
                "Unknown below the optimum forfeits the proof"
            );
        }
        assert!(report.total_time() > std::time::Duration::ZERO);
    }

    /// Golden-JSON schema stability for [`CallRecord`]: `--stats-json`
    /// consumers parse this exact shape. A field rename or re-ordering is a
    /// schema break.
    #[test]
    fn call_record_serde_schema_is_stable() {
        let record = CallRecord {
            n_rops: 2,
            n_legs: 3,
            n_vsteps: 4,
            result: SynthResultKind::Unrealizable,
            n_vars: 120,
            n_clauses: 456,
            time: Duration::new(0, 7_000),
            proof_steps: 5,
            deadline_expired: false,
            check_time: Duration::new(0, 1_000),
            certified: true,
            proof: Some(mm_sat::DratProof::from_steps(vec![
                mm_sat::drat::ProofStep::Add(vec![]),
            ])),
        };
        let json = serde_json::to_string(&record).expect("record serialize");
        let golden = concat!(
            "{\"n_rops\":2,\"n_legs\":3,\"n_vsteps\":4,\"result\":\"Unrealizable\",",
            "\"n_vars\":120,\"n_clauses\":456,\"time\":{\"secs\":0,\"nanos\":7000},",
            "\"proof_steps\":5,\"deadline_expired\":false,",
            "\"check_time\":{\"secs\":0,\"nanos\":1000},\"certified\":true,",
            "\"proof\":\"0\\n\"}"
        );
        assert_eq!(json, golden);

        let back: CallRecord = serde_json::from_str(&json).expect("record parse");
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);
        assert!(back.proof.expect("proof survives").is_concluded());
    }

    #[test]
    fn incremental_vsteps_ladder_agrees_with_cold() {
        let f = generators::and_gate(2);
        let opts = EncodeOptions::recommended();
        let cold = minimize_vsteps(&Synthesizer::new(), &f, 0, 1, 4, &opts).unwrap();
        let warm = minimize_vsteps(
            &Synthesizer::new().with_incremental(true),
            &f,
            0,
            1,
            4,
            &opts,
        )
        .unwrap();
        assert_eq!(cold.proven_optimal, warm.proven_optimal);
        assert_eq!(
            cold.best.as_ref().map(|c| c.metrics().n_vsteps),
            warm.best.as_ref().map(|c| c.metrics().n_vsteps),
        );
        assert!(warm.best.expect("AND2 is V-realizable").implements(&f));
        // The warm ladder re-encodes nothing: every rung reports the same
        // shared-base CNF size, strictly larger than any cold rung's.
        let base_vars = warm.calls[0].n_vars;
        assert!(warm.calls.iter().all(|c| c.n_vars == base_vars));
        assert!(cold.calls.iter().all(|c| c.n_vars < base_vars));
    }

    #[test]
    fn incremental_r_only_ladder_agrees_with_cold() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let cold = minimize_r_only(&Synthesizer::new(), &f, 5, &opts).unwrap();
        let warm =
            minimize_r_only(&Synthesizer::new().with_incremental(true), &f, 5, &opts).unwrap();
        assert_eq!(cold.proven_optimal, warm.proven_optimal);
        assert!(warm.proven_optimal);
        assert_eq!(
            warm.best.expect("XOR2 from NORs").metrics().n_rops,
            3,
            "incremental engine must find the same optimum (Table IV)"
        );
    }

    #[test]
    fn incremental_mixed_mode_agrees_with_cold() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let cold = minimize_mixed_mode(&Synthesizer::new(), &f, 3, 3, false, &opts).unwrap();
        let warm = minimize_mixed_mode(
            &Synthesizer::new().with_incremental(true),
            &f,
            3,
            3,
            false,
            &opts,
        )
        .unwrap();
        assert_eq!(cold.proven_optimal, warm.proven_optimal);
        let (c, w) = (
            cold.best.expect("XOR2 is MM-realizable"),
            warm.best.expect("XOR2 is MM-realizable"),
        );
        assert!(w.implements(&f));
        assert_eq!(c.metrics().n_rops, w.metrics().n_rops);
        assert_eq!(c.metrics().n_vsteps, w.metrics().n_vsteps);
    }

    #[test]
    fn certification_forces_the_cold_engine() {
        // --certify --incremental must fall back to per-rung cold solves
        // with a checkable DRAT proof on every UNSAT rung.
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new()
            .with_incremental(true)
            .with_certification(true);
        assert!(!synth.incremental_for(&SynthSpec::r_only(&f, 3).unwrap()));
        let report = minimize_r_only(&synth, &f, 4, &opts).unwrap();
        assert_eq!(report.best.expect("XOR2 from NORs").metrics().n_rops, 3);
        assert!(report.proven_optimal);
        let unsat: Vec<_> = report
            .calls
            .iter()
            .filter(|c| c.result == SynthResultKind::Unrealizable)
            .collect();
        assert_eq!(unsat.len(), 2, "N_R = 1, 2 are UNSAT");
        for call in unsat {
            assert!(call.certified, "uncertified UNSAT at N_R = {}", call.n_rops);
            let proof = call.proof.as_ref().expect("certified call keeps its proof");
            assert!(proof.is_concluded());
        }
    }

    #[test]
    fn incompatible_constraints_force_the_cold_engine() {
        use mm_boolfn::Literal;
        let f = generators::and_gate(2);
        let synth = Synthesizer::new().with_incremental(true);
        let avoidance = SynthSpec::mixed_mode(&f, 1, 2, 2)
            .unwrap()
            .with_cell_avoidance(8, vec![0]);
        assert!(!synth.incremental_for(&avoidance));
        let forced = SynthSpec::mixed_mode(&f, 0, 1, 2)
            .unwrap()
            .with_options(EncodeOptions {
                forced_te: vec![(0, 0, Literal::Pos(2))],
                ..EncodeOptions::default()
            });
        assert!(!synth.incremental_for(&forced));
        let plain = SynthSpec::mixed_mode(&f, 0, 1, 2).unwrap();
        assert!(synth.incremental_for(&plain));
    }

    #[test]
    fn minimize_mixed_mode_xor() {
        let f = generators::xor_gate(2);
        let report = minimize_mixed_mode(
            &Synthesizer::new(),
            &f,
            3,
            3,
            false,
            &EncodeOptions::recommended(),
        )
        .unwrap();
        let best = report.best.expect("XOR2 is MM-realizable");
        assert!(best.implements(&f));
        // XOR needs at least one R-op (V-ops alone cannot do it).
        assert!(best.metrics().n_rops >= 1);
    }
}
