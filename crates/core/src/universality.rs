//! The reachability census behind the paper's Table III.
//!
//! For small input counts the full function space (256 functions for
//! `n = 3`, 65 536 for `n = 4`) can be explored exhaustively. The census
//! counts how many functions are realizable by the staged architecture the
//! paper evaluates:
//!
//! 1. start from the literal set `L_n`,
//! 2. apply `k_pre` rounds of R-ops (each round NORs all pairs of
//!    reachable functions),
//! 3. apply V-ops (with electrodes restricted to `L_n`) to a fixed point,
//! 4. apply `k_post` further R-op rounds to all pairs of reachable
//!    functions.
//!
//! The `k_TEBE` variant additionally allows electrode drivers that are
//! NOR combinations of reachable functions — physically costly, since it
//! requires reading device states back out during computation (paper
//! §II-D).
//!
//! Functions are manipulated as packed truth-table masks (`u32`, row `q` in
//! bit `q`), and reachable sets as flat bitsets over the whole function
//! space.
//!
//! # Example
//!
//! ```
//! use mm_synth::universality::{census, CensusConfig};
//!
//! // Paper Table III, first row: V-ops alone reach 104 of 256 3-input
//! // functions.
//! let reached = census(&CensusConfig::new(3));
//! assert_eq!(reached, 104);
//! ```

use std::collections::HashSet;

use mm_boolfn::LiteralSet;

/// Parameters of one census run (a cell of the paper's Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusConfig {
    /// Number of function inputs (3 or 4 in the paper; at most 5 here).
    pub n: u8,
    /// NOR rounds applied before the V-op fixed point. Matches the paper's
    /// `k_pre` column directly.
    pub k_pre: u32,
    /// NOR rounds applied after the V-op fixed point.
    ///
    /// **Paper-table mapping:** the paper's `k_post` column corresponds to
    /// `k_post_rounds = k_post − 1`. The paper's `(0, 1, 0)` row equals its
    /// V-only row (104 / 1850), yet a single NOR over V-reachable functions
    /// demonstrably adds functions (e.g. `x1 ⊕ x2 = NOR(x1·x2, ~x1·~x2)`),
    /// and NOR-closedness of the V-closure is ruled out by the paper's own
    /// `(3,0,0) = 186 > (2,0,0) = 158`. The paper's column is therefore
    /// offset by one (its first "application" counts the initial set); with
    /// the `− 1` mapping every `k_post` row of Table III is reproduced
    /// exactly. The table3 bench binary applies the mapping when printing
    /// paper-style rows.
    pub k_post: u32,
    /// R-ops allowed as TE/BE drivers (requires state readout).
    pub k_tebe: u32,
}

impl CensusConfig {
    /// V-ops only: `k_pre = k_post = k_TEBE = 0`.
    pub fn new(n: u8) -> Self {
        Self {
            n,
            k_pre: 0,
            k_post: 0,
            k_tebe: 0,
        }
    }

    /// Sets `k_pre`.
    pub fn with_pre(mut self, k: u32) -> Self {
        self.k_pre = k;
        self
    }

    /// Sets `k_post`.
    pub fn with_post(mut self, k: u32) -> Self {
        self.k_post = k;
        self
    }

    /// Sets `k_TEBE`.
    pub fn with_tebe(mut self, k: u32) -> Self {
        self.k_tebe = k;
        self
    }
}

/// A set of `n`-input functions as a flat bitset over packed truth tables.
#[derive(Debug, Clone)]
struct FnSet {
    bits: Vec<bool>,
    count: usize,
}

impl FnSet {
    fn new(n: u8) -> Self {
        Self {
            bits: vec![false; 1usize << (1usize << n)],
            count: 0,
        }
    }

    fn insert(&mut self, f: u32) -> bool {
        let slot = &mut self.bits[f as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.count += 1;
            true
        }
    }

    #[cfg(test)]
    fn contains(&self, f: u32) -> bool {
        self.bits[f as usize]
    }

    fn is_full(&self) -> bool {
        self.count == self.bits.len()
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
    }
}

/// Runs the census and returns the number of realizable functions
/// (`N_3` / `N_4` of Table III).
///
/// # Panics
///
/// Panics if `n > 5` (the packed-mask representation holds 32 rows).
pub fn census(config: &CensusConfig) -> usize {
    census_impl(config).count
}

/// Runs the census and returns the *set* of realizable functions as packed
/// truth-table masks, for cross-validation against the SAT synthesizer.
///
/// # Panics
///
/// Panics if `n > 5` (the packed-mask representation holds 32 rows).
pub fn census_set(config: &CensusConfig) -> Vec<u32> {
    census_impl(config).iter().collect()
}

fn census_impl(config: &CensusConfig) -> FnSet {
    assert!(
        config.n >= 1 && config.n <= 5,
        "census supports 1..=5 inputs"
    );
    let n = config.n;
    let full: u32 = if 1u64 << (1 << n) > u32::MAX as u64 + 1 {
        u32::MAX
    } else {
        ((1u64 << (1 << n)) - 1) as u32
    };
    let literals: Vec<u32> = LiteralSet::new(n)
        .truth_tables()
        .iter()
        .map(|tt| tt.to_packed().expect("n <= 5 fits a packed word") as u32)
        .collect();

    // Stage 1+2: literals plus k_pre rounds of NOR application.
    let mut reached = FnSet::new(n);
    for &l in &literals {
        reached.insert(l);
    }
    nor_rounds(&mut reached, config.k_pre, full);

    // Stage 3: V-op fixed point with literal drivers.
    let drivers = literals.clone();
    v_closure(&mut reached, &drivers, full);

    // Stage 4: k_post rounds of NOR application over everything reachable.
    nor_rounds(&mut reached, config.k_post, full);

    // k_TEBE variant: electrode drivers may additionally be NOR trees of
    // at most k_tebe gates over the *literals* — side R-ops deriving
    // driver waveforms from the primary inputs, whose readout is the cost
    // the paper deems prohibitive (§II-D). This interpretation reproduces
    // the paper's (0,0,1) = 254 and (0,0,2) = 256 for n = 3 exactly
    // (richer driver pools — e.g. NORs over all reachable functions —
    // saturate to 256 already at k_TEBE = 1).
    if config.k_tebe > 0 && !reached.is_full() {
        // Tree-cost dp over gate count: levels[g] = driver functions first
        // buildable with exactly g NOR gates over L_n.
        let mut driver_set: HashSet<u32> = literals.iter().copied().collect();
        let mut levels: Vec<Vec<u32>> = vec![literals.clone()];
        for g in 1..=config.k_tebe as usize {
            let mut fresh = Vec::new();
            for i in 0..g {
                let j = g - 1 - i;
                if j < i {
                    break; // NOR is commutative
                }
                for ai in 0..levels[i].len() {
                    let start = if i == j { ai } else { 0 };
                    for bj in start..levels[j].len() {
                        let cand = !(levels[i][ai] | levels[j][bj]) & full;
                        if driver_set.insert(cand) {
                            fresh.push(cand);
                        }
                    }
                }
            }
            levels.push(fresh);
        }
        let drivers: Vec<u32> = driver_set.into_iter().collect();
        v_closure(&mut reached, &drivers, full);
    }

    reached
}

/// Applies `k` rounds of R-op reachability: each round adds the NOR of
/// every pair of currently reachable functions.
///
/// This matches the paper's counting ("applying up to `k_pre` R-ops to
/// these functions … applying up to `k_post` additional R-ops to all pairs
/// of functions"): the paper's Table III values for the `k_pre` rows are
/// reproduced by round-counting, not by tree gate-counting — e.g. every
/// NOR *tree* of two gates over literals is already V-reachable, so tree
/// counting could never grow `N_3` from 104 to the paper's 158 at
/// `k_pre = 2`.
fn nor_rounds(reached: &mut FnSet, k: u32, full: u32) {
    for _ in 0..k {
        if reached.is_full() {
            return;
        }
        let current: Vec<u32> = reached.iter().collect();
        let mut grew = false;
        for (i, &a) in current.iter().enumerate() {
            for &b in &current[i..] {
                if reached.insert(!(a | b) & full) {
                    grew = true;
                }
            }
        }
        if !grew {
            return;
        }
    }
}

/// Closes `reached` under `V(f, d1, d2)` for drivers `d1, d2` — the V-op
/// fixed point of the paper's census ("applying an arbitrary number of
/// V-ops until a fixed point is reached").
fn v_closure(reached: &mut FnSet, drivers: &[u32], full: u32) {
    // Deduplicate driver pairs into (set-mask, keep-mask) moves:
    // V(f, d1, d2) = (d1 & ~d2) | (f & ~(d1 ^ d2)).
    let mut moves: HashSet<(u32, u32)> = HashSet::new();
    for &d1 in drivers {
        for &d2 in drivers {
            let a = d1 & !d2 & full;
            let k = !(d1 ^ d2) & full;
            if k == full && a == 0 {
                continue; // identity move
            }
            moves.insert((a, k));
        }
    }
    let moves: Vec<(u32, u32)> = moves.into_iter().collect();
    let mut worklist: Vec<u32> = reached.iter().collect();
    while let Some(f) = worklist.pop() {
        if reached.is_full() {
            return;
        }
        for &(a, k) in &moves {
            let g = a | (f & k);
            if reached.insert(g) {
                worklist.push(g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_only_census_matches_table3() {
        // Table III row (0, 0, 0): N_3 = 104, N_4 = 1850.
        assert_eq!(census(&CensusConfig::new(3)), 104);
        assert_eq!(census(&CensusConfig::new(4)), 1850);
    }

    #[test]
    fn one_pre_rop_adds_nothing() {
        // Table III: (1, 0, 0) equals (0, 0, 0) — a single NOR of literals
        // is already V-reachable.
        assert_eq!(census(&CensusConfig::new(3).with_pre(1)), 104);
        assert_eq!(census(&CensusConfig::new(4).with_pre(1)), 1850);
    }

    #[test]
    fn pre_rop_census_n3() {
        // Table III rows (2..5, 0, 0) for N_3: 158, 186, 256, 256.
        assert_eq!(census(&CensusConfig::new(3).with_pre(2)), 158);
        assert_eq!(census(&CensusConfig::new(3).with_pre(3)), 186);
        assert_eq!(census(&CensusConfig::new(3).with_pre(4)), 256);
        assert_eq!(census(&CensusConfig::new(3).with_pre(5)), 256);
    }

    #[test]
    fn post_rop_census_n3() {
        // Table III rows (0, 1..3, 0) for N_3 are 104, 246, 256; the
        // paper's k_post column maps to rounds = k_post − 1 (see the
        // CensusConfig::k_post docs).
        assert_eq!(census(&CensusConfig::new(3)), 104); // paper k_post = 1
        assert_eq!(census(&CensusConfig::new(3).with_post(1)), 246); // paper k_post = 2
        assert_eq!(census(&CensusConfig::new(3).with_post(2)), 256); // paper k_post = 3
    }

    #[test]
    fn mixed_pre_post_census_n3() {
        // Table III rows (1,1,0) = 104, (2,1,0) = 158, (3,1,0) = 186,
        // (1,2,0) = 246, (1,3,0) = 256, (2,2,0) = 256 under the mapping.
        assert_eq!(census(&CensusConfig::new(3).with_pre(1)), 104);
        assert_eq!(census(&CensusConfig::new(3).with_pre(2)), 158);
        assert_eq!(census(&CensusConfig::new(3).with_pre(3)), 186);
        assert_eq!(census(&CensusConfig::new(3).with_pre(1).with_post(1)), 246);
        assert_eq!(census(&CensusConfig::new(3).with_pre(1).with_post(2)), 256);
        assert_eq!(census(&CensusConfig::new(3).with_pre(2).with_post(1)), 256);
    }

    #[test]
    fn tebe_census_n3() {
        // Table III rows (0, 0, 1) = 254 and (0, 0, 2) = 256 for N_3.
        assert_eq!(census(&CensusConfig::new(3).with_tebe(1)), 254);
        assert_eq!(census(&CensusConfig::new(3).with_tebe(2)), 256);
    }

    #[test]
    fn census_n4_rows() {
        // A selection of cheap n = 4 cells of Table III (the full table is
        // regenerated by the table3 bench binary).
        assert_eq!(census(&CensusConfig::new(4)), 1850);
        assert_eq!(census(&CensusConfig::new(4).with_pre(2)), 3590);
        assert_eq!(census(&CensusConfig::new(4).with_pre(3)), 6170);
        assert_eq!(census(&CensusConfig::new(4).with_post(1)), 32178);
        assert_eq!(census(&CensusConfig::new(4).with_tebe(1)), 57558);
    }

    #[test]
    fn xor_needs_rops() {
        // XOR3 (packed 0x96 with our row order) must be unreachable by
        // V-ops alone but reachable with enough post R-ops.
        let xor3 = mm_boolfn::generators::xor_gate(3)
            .output(0)
            .unwrap()
            .to_packed()
            .unwrap() as u32;
        let mut v_only = FnSet::new(3);
        let lits: Vec<u32> = LiteralSet::new(3)
            .truth_tables()
            .iter()
            .map(|t| t.to_packed().unwrap() as u32)
            .collect();
        for &l in &lits {
            v_only.insert(l);
        }
        v_closure(&mut v_only, &lits, 0xff);
        assert!(!v_only.contains(xor3));
    }
}
