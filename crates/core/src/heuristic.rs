//! A scalable (non-optimal) mixed-mode mapper — the paper's stated future
//! work ("developing scalable heuristic methods for larger functions").
//!
//! The mapper lowers each output through a minimal two-level cover
//! (Quine–McCluskey, [`mm_boolfn::qmc`]):
//!
//! * every product term becomes one V-leg: the first step loads its first
//!   literal (`V(0, l, const-0) = l`), each further step ANDs one more
//!   literal (`V(f, l, const-1) = f·l`, Eq. 1) — so *all* legs share
//!   `BE = const-0` in step 1 and `BE = const-1` afterwards, satisfying the
//!   line-array shared-BE restriction by construction;
//! * the terms are OR-ed by a MAGIC NOR chain
//!   (`NOR`/invert alternation, 2 R-ops per additional term);
//! * per output, the complement cover is synthesized instead whenever it
//!   needs fewer R-ops (the final inversion is then absorbed).
//!
//! The result is returned as a regular [`MmCircuit`]: schedulable,
//! verifiable, and directly comparable against the optimal synthesizer on
//! small functions (the `heuristic_gap` bench).
//!
//! # Example
//!
//! ```
//! use mm_boolfn::generators;
//! use mm_synth::heuristic;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = generators::xor_gate(3); // beyond V-ops, easy for the mapper
//! let circuit = heuristic::map(&f)?;
//! assert!(circuit.implements(&f));
//! # Ok(())
//! # }
//! ```

use mm_boolfn::{qmc, Literal, MultiOutputFn};
use mm_circuit::{MmCircuit, MmCircuitBuilder, ROp, Signal, VLeg, VOp};

use crate::SynthError;

/// Maps a multi-output function to a mixed-mode circuit via two-level
/// covers.
///
/// # Errors
///
/// Returns [`SynthError::Decode`] if the constructed circuit fails
/// validation and [`SynthError::VerificationFailed`] if it does not
/// implement `f` — both indicate mapper bugs, never properties of `f`.
pub fn map(f: &MultiOutputFn) -> Result<MmCircuit, SynthError> {
    let n = f.n_inputs();

    // Choose per output between the direct and complemented cover.
    struct Plan {
        sop: qmc::Sop,
        complemented: bool,
    }
    let plans: Vec<Plan> = f
        .outputs()
        .iter()
        .map(|tt| {
            let direct = qmc::minimize(tt);
            let comp = qmc::minimize(&!tt);
            if chain_rops(comp.cubes().len(), true) < chain_rops(direct.cubes().len(), false) {
                Plan {
                    sop: comp,
                    complemented: true,
                }
            } else {
                Plan {
                    sop: direct,
                    complemented: false,
                }
            }
        })
        .collect();

    // Global step count: load step + AND steps for the widest cube.
    let max_lits = plans
        .iter()
        .flat_map(|p| p.sop.cubes().iter().map(|c| c.literal_count() as usize))
        .max()
        .unwrap_or(0);
    let n_steps = max_lits.max(1);

    let mut builder = MmCircuit::builder(n);
    let mut n_legs = 0usize;
    let mut leg_of_cube: Vec<Vec<usize>> = Vec::new();
    for plan in &plans {
        let mut legs = Vec::new();
        for cube in plan.sop.cubes() {
            let lits = cube.literals(n);
            let mut ops = Vec::with_capacity(n_steps);
            // Load step: first literal (or const-1 for the empty cube).
            let first = lits.first().copied().unwrap_or(Literal::Const1);
            ops.push(VOp::new(first, Literal::Const0));
            // AND steps; pad with const-1 (f·1 = f).
            for step in 1..n_steps {
                let lit = lits.get(step).copied().unwrap_or(Literal::Const1);
                ops.push(VOp::new(lit, Literal::Const1));
            }
            builder = builder.leg(VLeg::new(ops));
            legs.push(n_legs);
            n_legs += 1;
        }
        leg_of_cube.push(legs);
    }

    // OR chains per output.
    let mut n_rops = 0usize;
    for (plan, legs) in plans.iter().zip(&leg_of_cube) {
        let out = build_or_chain(&mut builder, legs, plan.complemented, &mut n_rops);
        builder = out.0;
        let signal = out.1;
        builder = builder.output(signal);
    }

    let circuit = builder.build()?;
    if !circuit.implements(f) {
        let outputs = circuit.eval_outputs();
        let bad = outputs
            .iter()
            .zip(f.outputs())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(SynthError::VerificationFailed { output: bad });
    }
    Ok(circuit)
}

/// R-ops needed to OR `k` terms (and invert, when building the complement
/// cover whose final inversion realizes the function).
fn chain_rops(k: usize, complemented: bool) -> usize {
    match (k, complemented) {
        (0, _) | (1, false) => usize::from(complemented), // const or single leg
        (1, true) => 1,                                   // one inversion
        // Direct: NOR, then (invert, NOR) per extra term, final invert.
        (k, false) => 2 * k - 2,
        // Complemented: the trailing inversion is the function itself.
        (k, true) => 2 * k - 3,
    }
}

/// Builds `f = p_1 + … + p_k` (or its complement) as a NOR chain; returns
/// the output signal.
fn build_or_chain(
    builder: &mut MmCircuitBuilder,
    legs: &[usize],
    complemented: bool,
    n_rops: &mut usize,
) -> (MmCircuitBuilder, Signal) {
    let mut b = builder.clone();
    let signal = match legs.len() {
        0 => {
            // Empty cover: constant 0 (direct) or constant 1 (complement of
            // constant 0).
            Signal::Literal(if complemented {
                Literal::Const1
            } else {
                Literal::Const0
            })
        }
        1 => {
            if complemented {
                // out = ~p_1.
                b = b.rop(ROp::nor(
                    Signal::Leg(legs[0]),
                    Signal::Literal(Literal::Const0),
                ));
                *n_rops += 1;
                Signal::ROp(*n_rops - 1)
            } else {
                Signal::Leg(legs[0])
            }
        }
        _ => {
            // c = ~(p_1 + p_2); then per extra term: u = ~c; c = ~(u + p).
            b = b.rop(ROp::nor(Signal::Leg(legs[0]), Signal::Leg(legs[1])));
            *n_rops += 1;
            let mut c = Signal::ROp(*n_rops - 1);
            for &leg in &legs[2..] {
                b = b.rop(ROp::nor(c, Signal::Literal(Literal::Const0)));
                *n_rops += 1;
                let u = Signal::ROp(*n_rops - 1);
                b = b.rop(ROp::nor(u, Signal::Leg(leg)));
                *n_rops += 1;
                c = Signal::ROp(*n_rops - 1);
            }
            if complemented {
                // c = ~(sum of complement terms) = f directly.
                c
            } else {
                b = b.rop(ROp::nor(c, Signal::Literal(Literal::Const0)));
                *n_rops += 1;
                Signal::ROp(*n_rops - 1)
            }
        }
    };
    (b, signal)
}

#[cfg(test)]
mod tests {
    use mm_boolfn::{generators, MultiOutputFn, TruthTable};
    use mm_circuit::Schedule;

    use super::*;

    #[test]
    fn maps_basic_gates() {
        for f in [
            generators::and_gate(3),
            generators::or_gate(3),
            generators::nand_gate(3),
            generators::nor_gate(3),
            generators::xor_gate(3),
            generators::majority_gate(3),
            generators::mux21(),
        ] {
            let c = map(&f).unwrap_or_else(|e| panic!("{}: {e}", f.name()));
            assert!(c.implements(&f), "{} mismatch", f.name());
        }
    }

    #[test]
    fn maps_constants() {
        let zero = MultiOutputFn::new("z", vec![TruthTable::new_false(2).unwrap()]).unwrap();
        let one = MultiOutputFn::new("o", vec![TruthTable::new_true(2).unwrap()]).unwrap();
        assert!(map(&zero).unwrap().implements(&zero));
        assert!(map(&one).unwrap().implements(&one));
    }

    #[test]
    fn exhaustive_over_all_3_input_functions() {
        for bits in 0..256u64 {
            let tt = TruthTable::from_packed(3, bits).unwrap();
            let f = MultiOutputFn::new(format!("f{bits}"), vec![tt]).unwrap();
            let c = map(&f).unwrap_or_else(|e| panic!("function {bits:#04x}: {e}"));
            assert!(c.implements(&f), "function {bits:#04x}");
        }
    }

    #[test]
    fn mapped_circuits_are_schedulable() {
        let f = generators::gf22_multiplier();
        let c = map(&f).unwrap();
        let schedule = Schedule::compile(&c).expect("shared BE holds by construction");
        assert!(schedule.verify(&f));
    }

    #[test]
    fn maps_multi_output_adder() {
        let f = generators::ripple_adder(2);
        let c = map(&f).unwrap();
        assert!(c.implements(&f));
        assert!(Schedule::compile(&c).unwrap().verify(&f));
    }

    #[test]
    fn complement_cover_is_used_when_cheaper() {
        // OR4 has 4 direct terms (6 R-ops) but 1 complement term (1 R-op).
        let f = generators::or_gate(4);
        let c = map(&f).unwrap();
        assert!(c.implements(&f));
        assert!(
            c.metrics().n_rops <= 1,
            "OR4 should use the complemented cover"
        );
    }
}
