use std::error::Error;
use std::fmt;

use mm_circuit::CircuitError;

/// Errors produced by the synthesis engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// A budget parameter is structurally impossible (e.g. zero legs with
    /// zero R-ops, or a leg count below the output count in R-only mode).
    InvalidSpec {
        /// Explanation of the rejected combination.
        reason: String,
    },
    /// A designer constraint references a V-op or literal that does not
    /// exist in the spec.
    InvalidConstraint {
        /// Explanation of the rejected constraint.
        reason: String,
    },
    /// The decoded circuit failed structural validation — an encoder bug if
    /// it ever occurs.
    Decode(CircuitError),
    /// The decoded circuit does not implement the specification — an
    /// encoder bug if it ever occurs. Decoding always cross-checks.
    VerificationFailed {
        /// 0-based index of the first mismatching output.
        output: usize,
    },
    /// An UNSAT answer's DRAT proof was rejected by the in-tree checker —
    /// the solver's answer cannot be trusted and no optimality claim may be
    /// made from it.
    CertificationFailed {
        /// The checker's rejection, verbatim.
        reason: String,
    },
    /// The decoded circuit passed truth-table verification, but its
    /// compiled schedule computes something else on the device line-array
    /// model — a schedule-compiler or device-model bug if it ever occurs.
    DeviceVerificationFailed,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { reason } => write!(f, "invalid synthesis spec: {reason}"),
            Self::InvalidConstraint { reason } => write!(f, "invalid constraint: {reason}"),
            Self::Decode(e) => write!(f, "decoded circuit is malformed: {e}"),
            Self::VerificationFailed { output } => {
                write!(f, "decoded circuit mismatches the spec on output {output}")
            }
            Self::CertificationFailed { reason } => {
                write!(f, "UNSAT certificate rejected: {reason}")
            }
            Self::DeviceVerificationFailed => {
                write!(
                    f,
                    "compiled schedule diverges from the spec on the device model"
                )
            }
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SynthError {
    fn from(e: CircuitError) -> Self {
        Self::Decode(e)
    }
}
