//! Decoding a satisfying assignment of `Φ(f, N_V, N_R)` into an
//! [`MmCircuit`].

use mm_circuit::{MmCircuit, ROp, Signal, VLeg, VOp};
use mm_sat::Model;

use crate::encoder::VarMap;
use crate::{SynthError, SynthSpec};

/// Reads the connectivity variables out of `model` and rebuilds the
/// circuit. The result is structurally validated by the circuit builder;
/// functional verification against the spec happens in the synthesizer.
pub(crate) fn decode(
    spec: &SynthSpec,
    map: &VarMap,
    model: &Model,
) -> Result<MmCircuit, SynthError> {
    let n_lit = map.literals.len();
    let n_vsteps = spec.n_vsteps();

    let chosen = |row: &[mm_sat::Lit]| -> Result<usize, SynthError> {
        let mut found = None;
        for (j, &g) in row.iter().enumerate() {
            if model.value(g) {
                if found.is_some() {
                    return Err(SynthError::InvalidSpec {
                        reason: "model sets two selectors of a mutex row".into(),
                    });
                }
                found = Some(j);
            }
        }
        found.ok_or_else(|| SynthError::InvalidSpec {
            reason: "model sets no selector of a mutex row".into(),
        })
    };

    // R-op inputs index (literals, legs, R-ops).
    let signal_of = |j: usize| -> Signal {
        if j < n_lit {
            Signal::Literal(map.literals[j])
        } else if j < n_lit + spec.n_legs() {
            Signal::Leg(j - n_lit)
        } else {
            Signal::ROp(j - n_lit - spec.n_legs())
        }
    };
    // Output taps index (literals, every V-op, R-ops).
    let out_signal_of = |j: usize| -> Signal {
        if j < n_lit {
            Signal::Literal(map.literals[j])
        } else if j < n_lit + spec.n_vops() {
            let idx = j - n_lit;
            let leg = idx / n_vsteps;
            let step = idx % n_vsteps;
            if step + 1 == n_vsteps {
                Signal::Leg(leg)
            } else {
                Signal::LegStep { leg, step }
            }
        } else {
            Signal::ROp(j - n_lit - spec.n_vops())
        }
    };

    let mut builder = MmCircuit::builder(spec.function().n_inputs());
    for leg in 0..spec.n_legs() {
        let mut ops = Vec::with_capacity(n_vsteps);
        for step in 0..n_vsteps {
            let i = leg * n_vsteps + step;
            let te = map.literals[chosen(&map.g_te[i])?];
            let be_row = if map.be_per_step { step } else { i };
            let be = map.literals[chosen(&map.g_be[be_row])?];
            ops.push(VOp::new(te, be));
        }
        builder = builder.leg(VLeg::new(ops));
    }
    for i in 0..spec.n_rops() {
        let in1 = signal_of(chosen(&map.g_in[0][i])?);
        let in2 = signal_of(chosen(&map.g_in[1][i])?);
        builder = builder.rop(ROp {
            kind: spec.rop_kind(),
            in1,
            in2,
        });
    }
    for row in &map.g_o {
        builder = builder.output(out_signal_of(chosen(row)?));
    }
    Ok(builder.build()?)
}
