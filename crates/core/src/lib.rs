//! SAT-based optimal synthesis of memristive mixed-mode circuits — the core
//! contribution of *Optimal Synthesis of Memristive Mixed-Mode Circuits*
//! (DATE 2025).
//!
//! Given a multi-output Boolean function `f` and budgets `N_R` (R-ops) and
//! `N_V = N_L · N_VS` (V-ops in `N_L` legs of `N_VS` steps), the synthesizer
//! constructs a monolithic CNF formula `Φ(f, N_V, N_R)` (paper Eqs. 4–10)
//! whose satisfying assignments are exactly the valid line-array schedules
//! realizing `f` — and whose unsatisfiability *proves* that no such circuit
//! exists. Iterating with decreasing budgets yields provably minimal
//! circuits ([`optimize`]).
//!
//! Components:
//!
//! * [`SynthSpec`] — the problem instance: function, budgets, R-op family
//!   and encoding options ([`EncodeOptions`]: folded vs. paper-faithful
//!   literal handling, the shared-BE realization, mutex encoding, symmetry
//!   breaking, extra designer constraints).
//! * [`Synthesizer`] — encode → solve → decode → *verify*; every decoded
//!   circuit is checked against the specification before being returned.
//! * [`optimize`] — the minimization loops behind the paper's Table IV
//!   (minimal `N_VS` for fixed `N_R`, minimal `N_R`, R-only baselines).
//! * [`universality`] — the reachability census behind Table III: how many
//!   3-/4-input functions are realizable by `k_pre` R-ops, a V-op fixed
//!   point, and `k_post` more R-ops (plus the `k_TEBE` variant).
//! * [`heuristic`] — the paper's stated future work: a scalable
//!   (non-optimal) mapper from a Quine–McCluskey cover to a mixed-mode
//!   circuit, for functions beyond the reach of exact synthesis.
//! * [`repair`] — self-repairing synthesis: run a fault-injection
//!   campaign against the placed schedule, diagnose implicated cells,
//!   and resynthesize with those cells avoided *in the CNF formula*.
//!
//! # Example
//!
//! ```no_run
//! use mm_boolfn::generators;
//! use mm_synth::{SynthSpec, Synthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's GF(2^2) multiplier: N_R = 4, N_L = 6, N_VS = 3 (Fig. 1).
//! let f = generators::gf22_multiplier();
//! let spec = SynthSpec::mixed_mode(&f, 4, 6, 3)?;
//! let outcome = Synthesizer::new().run(&spec)?;
//! let circuit = outcome.circuit().expect("the paper shows this is satisfiable");
//! assert!(circuit.implements(&f));
//! assert_eq!(circuit.metrics().n_steps, 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoder;
mod encoder;
mod error;
mod spec;
mod synthesizer;

pub mod fuzz;
pub mod heuristic;
pub mod optimize;
pub mod repair;
pub mod request;
pub mod universality;

pub use encoder::EncodeStats;
pub use error::SynthError;
pub use spec::{CellAvoidance, EncodeMode, EncodeOptions, SharedBe, SynthSpec};
pub use synthesizer::{SynthOutcome, SynthResult, Synthesizer, UnsatCertificate};
