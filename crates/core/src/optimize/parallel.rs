//! Parallel portfolio minimization with cooperative cancellation.
//!
//! The sequential loops in [`optimize`](crate::optimize) probe one budget
//! point at a time. The functions here dispatch the independent `(N_V, N_R)`
//! decision problems of a minimization run across a thread pool instead,
//! wiring every in-flight solver call to a
//! [`CancellationToken`](mm_sat::CancellationToken):
//!
//! * a **SAT** answer at budget `k` cancels every call at a budget `> k`
//!   (a smaller witness already exists, larger budgets are uninteresting);
//! * an **UNSAT** answer at budget `k` cancels every call at a budget `< k`
//!   (the budget lattice is monotone, so everything below is also UNSAT).
//!
//! # Determinism
//!
//! For fixed inputs and a conflict-limited (or unlimited) per-call budget,
//! the reported optimum and `proven_optimal` are identical for every thread
//! count; only the order and number of entries in
//! [`OptimizeReport::calls`] may vary. The argument rests on the monotone
//! budget lattice (realizable at `k` implies realizable at `k + 1`):
//!
//! * Let `k*` be the smallest ladder point the (deterministic) solver
//!   answers SAT. Nothing can cancel `k*`: a completed SAT strictly below
//!   it cannot exist (by minimality of `k*`), and a completed UNSAT
//!   strictly above it would contradict monotone truth. So `k*` always
//!   completes and `best` is always its (deterministic) witness.
//! * Let `u*` be the largest ladder point the solver answers UNSAT
//!   (`u* < k*`). By the same case analysis `u*` always completes, and
//!   every point `≤ u*` is UNSAT by the lattice closure whether or not its
//!   own call was cancelled.
//! * Points in `(u*, k*)` — where the solver gives up with Unknown — can
//!   never be cancelled (no SAT exists below them, no UNSAT above them),
//!   so they always report Unknown.
//!
//! Hence `proven_optimal` — "`k* `is the ladder minimum, or every point
//! below `k*` is conclusively UNSAT" — is schedule-independent. Wall-clock
//! time limits break the first premise (the solver's answer at a point
//! stops being a function of the formula), so determinism across thread
//! counts is only guaranteed for conflict-limited or unlimited budgets.
//!
//! # Certified UNSAT
//!
//! Running the ladder with a
//! [certifying](crate::Synthesizer::with_certification) synthesizer makes
//! every UNSAT rung pass through the DRAT checker before it is allowed to
//! contribute to `proven_optimal`: each `Unrealizable` point carries a
//! checker-accepted refutation in its [`CallRecord`] (`certified`,
//! `proof`), and a rejected proof aborts the whole run with
//! [`SynthError::CertificationFailed`]. Cancellation composes soundly with
//! certification by construction — a cancelled solve returns `Unknown`
//! *before* the proof log is ever concluded with the empty clause, so an
//! aborted rung can never present a proof that checks, let alone assert an
//! UNSAT it did not finish.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mm_boolfn::MultiOutputFn;
use mm_circuit::MmCircuit;
use mm_sat::{CancellationToken, ClauseBus, Diversity};
use mm_telemetry::{kv, AttrValue};

use super::{
    record, seed_upper_bound, CallRecord, DegradeReason, OptimizeReport, OptimizeStatus, RungEngine,
};
use crate::encoder::{self, SharedBase};
use crate::{EncodeOptions, SynthError, SynthResult, SynthSpec, Synthesizer};

/// LBD threshold for clauses exported to the portfolio bus: only "glue"
/// clauses (≤ 4 distinct decision levels) are worth the import traffic.
const SHARE_MAX_LBD: u32 = 4;

/// The shared state of a warm (incremental) portfolio: one base encoding
/// every worker's solver loads, and the bus their learned clauses travel on.
type WarmContext = (Arc<SharedBase>, ClauseBus);

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The conclusive outcome of one ladder point after the portfolio run.
#[derive(Debug)]
enum PointOutcome {
    /// The solver returned a verified circuit.
    Sat(Box<MmCircuit>),
    /// The solver proved the point infeasible.
    Unsat,
    /// The solver gave up (budget exhausted, deadline expired — possibly
    /// before launch — or cancelled mid-run).
    Unknown {
        /// Whether the run's wall-clock deadline caused it.
        deadline: bool,
    },
    /// The worker solving this point panicked. The point counts as
    /// undecided; the rest of the run continued normally.
    Panicked(String),
    /// The point's token was already tripped before the call started
    /// (its answer is implied by the lattice), so no solver was ever
    /// launched and no [`CallRecord`] exists for it.
    Skipped,
}

/// What one budget ladder run concluded.
struct LadderOutcome {
    /// Ladder index of the cheapest SAT point, with its circuit.
    best: Option<(usize, MmCircuit)>,
    /// Whether every point below the best is conclusively UNSAT (directly
    /// or via the lattice closure under the largest completed UNSAT).
    proven: bool,
    /// Why the ladder degraded, when any point that mattered for the
    /// optimality claim was left undecided (or any worker panicked).
    degrade: Option<DegradeReason>,
    /// Call records in completion order.
    calls: Vec<CallRecord>,
}

/// Solves an ascending budget ladder (`specs[i]` strictly weaker than
/// `specs[i + 1]`) with `jobs` workers and lattice-driven cancellation.
/// The warm context a ladder topped by `top` should run under: a shared
/// base encoding with disable guards plus a fresh clause bus, or `None`
/// when the cold engine applies.
fn warm_context_for(
    synth: &Synthesizer,
    top: Option<&SynthSpec>,
) -> Result<Option<WarmContext>, SynthError> {
    match top {
        Some(top) if synth.incremental_for(top) => {
            let _encode_span = synth.telemetry().span("encode");
            Ok(Some((
                Arc::new(encoder::encode_shared_base(top)?),
                ClauseBus::new(SHARE_MAX_LBD),
            )))
        }
        _ => Ok(None),
    }
}

fn run_ladder(
    synth: &Synthesizer,
    specs: &[SynthSpec],
    jobs: usize,
) -> Result<LadderOutcome, SynthError> {
    // Incremental engine: encode the top rung once with disable guards; the
    // ladder is ascending, so every point is a sub-budget of the last spec.
    let warm_ctx = warm_context_for(synth, specs.last())?;
    run_ladder_with(synth, specs, jobs, warm_ctx.as_ref())
}

/// [`run_ladder`] under a caller-supplied warm context, so a two-phase run
/// ([`minimize_mixed_mode`]) can share one base and one clause bus across
/// phases: phase-2 workers then import the strong clauses phase 1 learned.
fn run_ladder_with(
    synth: &Synthesizer,
    specs: &[SynthSpec],
    jobs: usize,
    warm_ctx: Option<&WarmContext>,
) -> Result<LadderOutcome, SynthError> {
    let n = specs.len();
    let jobs = jobs.max(1).min(n.max(1));
    // Bus totals are cumulative and the bus may be shared across phases;
    // snapshot so this ladder reports only its own traffic.
    let bus_before = warm_ctx.map(|(_, bus)| (bus.exported(), bus.imported()));
    let tokens: Vec<CancellationToken> = (0..n).map(|_| CancellationToken::new()).collect();
    let outcomes: Mutex<Vec<Option<PointOutcome>>> = Mutex::new((0..n).map(|_| None).collect());
    let calls: Mutex<Vec<CallRecord>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<SynthError>> = Mutex::new(None);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Shadow with references so the `move` closures copy pointers, not
        // the shared state itself.
        let (tokens, cursor) = (&tokens, &cursor);
        let (outcomes, calls, first_error) = (&outcomes, &calls, &first_error);
        for worker_idx in 0..jobs {
            scope.spawn(move || {
                worker(
                    synth,
                    specs,
                    warm_ctx,
                    tokens,
                    cursor,
                    outcomes,
                    calls,
                    first_error,
                    worker_idx,
                );
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("no poisoned lock") {
        return Err(e);
    }
    let outcomes = outcomes.into_inner().expect("no poisoned lock");
    let calls = calls.into_inner().expect("no poisoned lock");

    let mut best: Option<(usize, MmCircuit)> = None;
    let mut u_max: Option<usize> = None;
    let mut unknowns: Vec<(usize, bool)> = Vec::new();
    let mut panic_message: Option<(usize, String)> = None;
    for (idx, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("every ladder point is visited") {
            PointOutcome::Sat(c) => {
                if best.is_none() {
                    best = Some((idx, *c));
                }
            }
            PointOutcome::Unsat => u_max = Some(idx),
            PointOutcome::Unknown { deadline } => unknowns.push((idx, deadline)),
            PointOutcome::Panicked(message) => {
                if panic_message.is_none() {
                    panic_message = Some((idx, message));
                }
                unknowns.push((idx, false));
            }
            PointOutcome::Skipped => {}
        }
    }
    let proven = match &best {
        None => false,
        Some((0, _)) => true,
        Some((k, _)) => u_max.is_some_and(|u| u >= k - 1),
    };
    // A point degrades the run when its answer could still change the
    // outcome: anything below the best witness (or anywhere, if no witness
    // exists) that neither completed nor was closed by the lattice. A panic
    // is always surfaced, wherever it happened.
    let best_idx = best.as_ref().map(|(k, _)| *k);
    let closed = |idx: usize| u_max.is_some_and(|u| idx <= u);
    let relevant = |idx: usize| best_idx.is_none_or(|k| idx < k) && !closed(idx);
    let degrade = if let Some((_, message)) = panic_message {
        Some(DegradeReason::WorkerPanicked { message })
    } else if unknowns
        .iter()
        .any(|&(idx, deadline)| deadline && relevant(idx))
    {
        Some(DegradeReason::DeadlineExpired)
    } else if unknowns.iter().any(|&(idx, _)| relevant(idx)) {
        Some(DegradeReason::BudgetExhausted)
    } else {
        None
    };
    // One ladder-summary event per run: the verdict the rung events roll
    // up to, so a trace is self-contained.
    synth.telemetry().point(
        "ladder",
        vec![
            kv("points", n),
            kv("proven", proven && degrade.is_none()),
            kv("degraded", degrade.is_some()),
            kv("incremental", warm_ctx.is_some()),
            kv(
                "reason",
                degrade
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_default(),
            ),
        ],
    );
    if let (Some((_, bus)), Some((exp0, imp0))) = (warm_ctx, bus_before) {
        synth
            .telemetry()
            .counter("ladder.clauses_exported", bus.exported() - exp0);
        synth
            .telemetry()
            .counter("ladder.clauses_imported", bus.imported() - imp0);
    }
    Ok(LadderOutcome {
        best,
        proven: proven && degrade.is_none(),
        degrade,
        calls,
    })
}

/// Shared attributes of every `rung` / `rung.spawned` event: the ladder
/// index, the point's budgets, and the worker that handled it.
fn rung_attrs(idx: usize, spec: &SynthSpec, worker_idx: usize) -> Vec<(String, AttrValue)> {
    vec![
        kv("idx", idx),
        kv("n_rops", spec.n_rops()),
        kv("n_legs", spec.n_legs()),
        kv("n_vsteps", spec.n_vsteps()),
        kv("worker", format!("w{worker_idx}")),
    ]
}

#[allow(clippy::too_many_arguments)] // one call site; mirrors the shared state
fn worker(
    synth: &Synthesizer,
    specs: &[SynthSpec],
    warm_ctx: Option<&WarmContext>,
    tokens: &[CancellationToken],
    cursor: &AtomicUsize,
    outcomes: &Mutex<Vec<Option<PointOutcome>>>,
    calls: &Mutex<Vec<CallRecord>>,
    first_error: &Mutex<Option<SynthError>>,
    worker_idx: usize,
) {
    let telemetry = synth.telemetry().clone();
    // Each worker owns one engine for its whole ladder share: warm workers
    // keep a long-lived solver (learned clauses persist across rungs) wired
    // to the portfolio bus, cold workers re-encode per rung as before.
    // Warm workers are additionally diversified by seed, saved-phase
    // polarity and restart policy, so the glue clauses they trade over the
    // bus come from genuinely different trajectories (worker 0 stays
    // canonical, keeping single-worker runs identical to serial ones).
    let make_engine = || match warm_ctx {
        Some((base, bus)) => RungEngine::warm(
            synth,
            base.clone(),
            Some(bus),
            Diversity::for_worker(worker_idx),
        ),
        None => RungEngine::Cold(synth),
    };
    let mut engine = make_engine();
    loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= specs.len() {
            return;
        }
        let rung = |outcome: &str| {
            let mut attrs = rung_attrs(idx, &specs[idx], worker_idx);
            attrs.push(kv("outcome", outcome));
            attrs
        };
        if first_error.lock().expect("no poisoned lock").is_some() {
            telemetry.point("rung", rung("skipped"));
            set_outcome(outcomes, idx, PointOutcome::Skipped);
            continue;
        }
        if tokens[idx].is_cancelled() {
            // Lattice-closed before launch: the "cancelled" lifecycle case.
            let mut attrs = rung("skipped");
            attrs.push(kv("cancelled", true));
            telemetry.point("rung", attrs);
            set_outcome(outcomes, idx, PointOutcome::Skipped);
            continue;
        }
        // An already-expired deadline means the solver could only return
        // Unknown; skip the launch (and the encode) but record the point as
        // undecided, not as lattice-closed.
        if synth.budget().deadline().is_some_and(|d| d.expired()) {
            let mut attrs = rung("unknown");
            attrs.push(kv("deadline", true));
            telemetry.point("rung", attrs);
            set_outcome(outcomes, idx, PointOutcome::Unknown { deadline: true });
            continue;
        }
        telemetry.point("rung.spawned", rung_attrs(idx, &specs[idx], worker_idx));
        let budget = synth.budget().with_cancellation(tokens[idx].clone());
        let run = catch_unwind(AssertUnwindSafe(|| {
            engine.run_with_budget(&specs[idx], budget)
        }));
        match run {
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                telemetry.point("rung", rung("panicked"));
                set_outcome(outcomes, idx, PointOutcome::Panicked(message));
                // A panic may have left the long-lived solver mid-search;
                // rebuild from the shared base rather than trust its state.
                engine = make_engine();
            }
            Ok(Ok(outcome)) => {
                let record = record(&outcome, &specs[idx]);
                let deadline = record.deadline_expired;
                let mut attrs = rung(match outcome.result {
                    SynthResult::Realizable(_) => "sat",
                    SynthResult::Unrealizable => "unsat",
                    SynthResult::Unknown => "unknown",
                });
                attrs.extend([
                    kv("conflicts", outcome.solver_stats.conflicts),
                    kv("vars", record.n_vars),
                    kv("clauses", record.n_clauses),
                    kv("time_us", record.time.as_micros() as u64),
                    kv("certified", record.certified),
                    kv("cancelled", outcome.solver_stats.cancelled),
                    kv("deadline", deadline),
                ]);
                calls.lock().expect("no poisoned lock").push(record);
                let point = match outcome.result {
                    SynthResult::Realizable(c) => {
                        // A witness at `idx` settles every larger budget.
                        for token in &tokens[idx + 1..] {
                            token.cancel();
                        }
                        attrs.push(kv("cancels_above", specs.len() - idx - 1));
                        PointOutcome::Sat(Box::new(c))
                    }
                    SynthResult::Unrealizable => {
                        // Lattice monotonicity: UNSAT here closes everything
                        // below.
                        for token in &tokens[..idx] {
                            token.cancel();
                        }
                        attrs.push(kv("cancels_below", idx));
                        PointOutcome::Unsat
                    }
                    SynthResult::Unknown => PointOutcome::Unknown { deadline },
                };
                telemetry.point("rung", attrs);
                set_outcome(outcomes, idx, point);
            }
            Ok(Err(e)) => {
                let mut slot = first_error.lock().expect("no poisoned lock");
                if slot.is_none() {
                    *slot = Some(e);
                }
                drop(slot);
                for token in tokens {
                    token.cancel();
                }
                telemetry.point("rung", rung("skipped"));
                set_outcome(outcomes, idx, PointOutcome::Skipped);
            }
        }
    }
}

fn set_outcome(outcomes: &Mutex<Vec<Option<PointOutcome>>>, idx: usize, outcome: PointOutcome) {
    outcomes.lock().expect("no poisoned lock")[idx] = Some(outcome);
}

/// Parallel version of [`minimize_r_only`](super::minimize_r_only): probes
/// `N_R = 1..=max_rops` concurrently with `jobs` workers.
///
/// The reported optimum and `proven_optimal` are independent of `jobs` (see
/// the module docs); `calls` ordering may differ.
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_r_only(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    options: &EncodeOptions,
    jobs: usize,
) -> Result<OptimizeReport, SynthError> {
    let specs = (1..=max_rops)
        .map(|n_rops| Ok(SynthSpec::r_only(f, n_rops)?.with_options(options.clone())))
        .collect::<Result<Vec<_>, SynthError>>()?;
    let ladder = run_ladder(synth, &specs, jobs)?;
    Ok(OptimizeReport {
        best: ladder.best.map(|(_, c)| c),
        proven_optimal: ladder.proven,
        status: status_of(ladder.degrade),
        calls: ladder.calls,
    })
}

/// Lifts a ladder's degrade verdict into an [`OptimizeStatus`].
fn status_of(degrade: Option<DegradeReason>) -> OptimizeStatus {
    match degrade {
        Some(reason) => OptimizeStatus::Degraded { reason },
        None => OptimizeStatus::Complete,
    }
}

/// Parallel version of [`minimize_vsteps`](super::minimize_vsteps): probes
/// `N_VS = 1..=max_vsteps` (fixed `N_R`, `N_L`) concurrently.
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_vsteps(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    n_rops: usize,
    n_legs: usize,
    max_vsteps: usize,
    options: &EncodeOptions,
    jobs: usize,
) -> Result<OptimizeReport, SynthError> {
    let specs = (1..=max_vsteps)
        .map(|vs| Ok(SynthSpec::mixed_mode(f, n_rops, n_legs, vs)?.with_options(options.clone())))
        .collect::<Result<Vec<_>, SynthError>>()?;
    let ladder = run_ladder(synth, &specs, jobs)?;
    Ok(OptimizeReport {
        best: ladder.best.map(|(_, c)| c),
        proven_optimal: ladder.proven,
        status: status_of(ladder.degrade),
        calls: ladder.calls,
    })
}

/// Parallel version of [`minimize_mixed_mode`](super::minimize_mixed_mode).
///
/// Runs two portfolio phases: an `N_R` ladder at `max_vsteps` (the paper's
/// outer loop), then an `N_VS` ladder at the smallest feasible `N_R` (the
/// inner loop). Within each phase all points run concurrently under the
/// cancellation protocol.
///
/// # Errors
///
/// Propagates [`SynthError`] from spec construction or synthesis.
pub fn minimize_mixed_mode(
    synth: &Synthesizer,
    f: &MultiOutputFn,
    max_rops: usize,
    max_vsteps: usize,
    is_adder: bool,
    options: &EncodeOptions,
    jobs: usize,
) -> Result<OptimizeReport, SynthError> {
    // Phase 1: find the smallest feasible N_R at the full V-step budget.
    let rop_specs = (0..=max_rops)
        .map(|n_rops| {
            let n_legs = SynthSpec::paper_legs(f, n_rops, is_adder);
            Ok(SynthSpec::mixed_mode(f, n_rops, n_legs, max_vsteps)?.with_options(options.clone()))
        })
        .collect::<Result<Vec<_>, SynthError>>()?;
    // One warm context for both phases: the outer top rung dominates every
    // spec of either ladder (legs grow monotonically with N_R), and sharing
    // the bus lets phase-2 solvers start from phase 1's learned clauses.
    let warm_ctx = warm_context_for(synth, rop_specs.last())?;
    let outer = run_ladder_with(synth, &rop_specs, jobs, warm_ctx.as_ref())?;
    let mut calls = outer.calls;
    let Some((rop_idx, outer_circuit)) = outer.best else {
        // No witness at any N_R. If the ladder degraded (deadline, budget,
        // panic) the search is inconclusive: fall back to the heuristic
        // mapper's circuit as the best-known upper bound rather than
        // returning nothing.
        let status = status_of(outer.degrade);
        return Ok(OptimizeReport {
            best: status.is_degraded().then(|| seed_upper_bound(f)).flatten(),
            proven_optimal: false,
            status,
            calls,
        });
    };

    // Phase 2: shrink the V-step budget at that N_R, on the same warm
    // context (phase-2 solvers import the glue clauses phase 1 published).
    let n_rops = rop_idx; // ladder index 0 is N_R = 0
    let n_legs = SynthSpec::paper_legs(f, n_rops, is_adder);
    let vs_specs = (1..=max_vsteps)
        .map(|vs| Ok(SynthSpec::mixed_mode(f, n_rops, n_legs, vs)?.with_options(options.clone())))
        .collect::<Result<Vec<_>, SynthError>>()?;
    let inner = run_ladder_with(synth, &vs_specs, jobs, warm_ctx.as_ref())?;
    let mut inner_calls = inner.calls;
    calls.append(&mut inner_calls);
    let inner_status = status_of(inner.degrade);
    let status = match (status_of(outer.degrade), inner_status) {
        (s @ OptimizeStatus::Degraded { .. }, _) => s,
        (OptimizeStatus::Complete, s) => s,
    };
    Ok(OptimizeReport {
        // The inner ladder re-solves the outer witness's point; under a
        // deadline it may come back empty, in which case the outer witness
        // is still a valid upper bound.
        best: inner.best.map(|(_, c)| c).or(Some(outer_circuit)),
        // N_R minimality comes from the outer ladder's closure, N_VS
        // minimality from the inner one — mirroring the sequential loop.
        proven_optimal: outer.proven && inner.proven && !status.is_degraded(),
        status,
        calls,
    })
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;

    use super::super::SynthResultKind;
    use super::*;

    fn reports_agree(a: &OptimizeReport, b: &OptimizeReport) {
        assert_eq!(a.proven_optimal, b.proven_optimal);
        match (&a.best, &b.best) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.metrics().n_rops, y.metrics().n_rops);
                assert_eq!(x.metrics().n_vsteps, y.metrics().n_vsteps);
                assert_eq!(x.metrics().n_legs, y.metrics().n_legs);
            }
            other => panic!("best presence differs across thread counts: {other:?}"),
        }
    }

    #[test]
    fn r_only_matches_sequential_and_is_jobs_invariant() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new();
        let seq = super::super::minimize_r_only(&synth, &f, 5, &opts).unwrap();
        for jobs in [1, 2, 8] {
            let par = minimize_r_only(&synth, &f, 5, &opts, jobs).unwrap();
            reports_agree(&seq, &par);
            assert_eq!(
                par.best.as_ref().map(|c| c.metrics().n_rops),
                Some(3),
                "XOR2 needs 3 R-ops (Table IV)"
            );
            assert!(par.proven_optimal);
        }
    }

    #[test]
    fn vsteps_ladder_proves_and2_optimum_at_any_width() {
        let f = generators::and_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new();
        for jobs in [1, 3] {
            let report = minimize_vsteps(&synth, &f, 0, 1, 4, &opts, jobs).unwrap();
            let best = report.best.expect("AND2 is V-realizable");
            assert_eq!(best.metrics().n_vsteps, 1);
            assert!(report.proven_optimal);
        }
    }

    #[test]
    fn mixed_mode_xor_is_jobs_invariant() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new();
        let mut reports = Vec::new();
        for jobs in [1, 2, 8] {
            let report = minimize_mixed_mode(&synth, &f, 3, 3, false, &opts, jobs).unwrap();
            let best = report.best.as_ref().expect("XOR2 is MM-realizable");
            assert!(best.implements(&f));
            assert!(best.metrics().n_rops >= 1);
            reports.push(report);
        }
        for pair in reports.windows(2) {
            reports_agree(&pair[0], &pair[1]);
        }
    }

    #[test]
    fn skipped_points_leave_no_call_records() {
        // With one worker the ladder degenerates to the sequential scan-up:
        // every point after the first SAT is skipped before launch, so the
        // call list matches the sequential loop's exactly.
        let f = generators::nor_gate(2);
        let opts = EncodeOptions::recommended();
        let report = minimize_r_only(&Synthesizer::new(), &f, 4, &opts, 1).unwrap();
        assert_eq!(report.calls.len(), 1, "NOR2 is SAT at N_R = 1");
        assert_eq!(report.calls[0].result, SynthResultKind::Realizable);
    }

    #[test]
    fn certified_ladder_agrees_and_backs_every_unsat_with_a_proof() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let plain = Synthesizer::new();
        let certifying = Synthesizer::new().with_certification(true);
        let baseline = minimize_r_only(&plain, &f, 5, &opts, 2).unwrap();
        for jobs in [1, 4] {
            let report = minimize_r_only(&certifying, &f, 5, &opts, jobs).unwrap();
            reports_agree(&baseline, &report);
            let unsat_calls: Vec<_> = report
                .calls
                .iter()
                .filter(|c| c.result == SynthResultKind::Unrealizable)
                .collect();
            assert!(
                !unsat_calls.is_empty(),
                "XOR2 R-only has UNSAT rungs at N_R = 1, 2"
            );
            for call in unsat_calls {
                assert!(call.certified, "uncertified UNSAT at N_R = {}", call.n_rops);
                let proof = call.proof.as_ref().expect("certified call keeps its proof");
                assert!(proof.is_concluded());
                assert!(call.proof_steps > 0);
            }
            // Non-UNSAT calls never carry a certificate.
            for call in report
                .calls
                .iter()
                .filter(|c| c.result != SynthResultKind::Unrealizable)
            {
                assert!(!call.certified);
                assert!(call.proof.is_none());
            }
        }
    }

    #[test]
    fn incremental_portfolio_agrees_with_cold_at_every_width() {
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let cold = Synthesizer::new();
        let warm = Synthesizer::new().with_incremental(true);
        let baseline = minimize_r_only(&cold, &f, 5, &opts, 1).unwrap();
        for jobs in [1, 2, 8] {
            let report = minimize_r_only(&warm, &f, 5, &opts, jobs).unwrap();
            reports_agree(&baseline, &report);
            assert!(report.proven_optimal);
        }
        let mm_baseline = minimize_mixed_mode(&cold, &f, 3, 3, false, &opts, 1).unwrap();
        for jobs in [1, 2, 8] {
            let report = minimize_mixed_mode(&warm, &f, 3, 3, false, &opts, jobs).unwrap();
            reports_agree(&mm_baseline, &report);
            assert!(report
                .best
                .as_ref()
                .expect("XOR2 is MM-realizable")
                .implements(&f));
        }
    }

    #[test]
    fn certified_incremental_ladder_falls_back_to_cold_drat_proofs() {
        // The certification + incrementality interplay: `--certify` wins,
        // every UNSAT rung carries its own checker-accepted refutation of
        // the *rung's* formula, and the verdicts still match the plain run.
        let f = generators::xor_gate(2);
        let opts = EncodeOptions::recommended();
        let synth = Synthesizer::new()
            .with_incremental(true)
            .with_certification(true);
        let baseline = minimize_r_only(&Synthesizer::new(), &f, 5, &opts, 2).unwrap();
        for jobs in [1, 4] {
            let report = minimize_r_only(&synth, &f, 5, &opts, jobs).unwrap();
            reports_agree(&baseline, &report);
            for call in report
                .calls
                .iter()
                .filter(|c| c.result == SynthResultKind::Unrealizable)
            {
                assert!(call.certified, "uncertified UNSAT at N_R = {}", call.n_rops);
                let proof = call.proof.as_ref().expect("certified call keeps its proof");
                assert!(proof.is_concluded());
                // Re-check the proof against the rung's own cold encoding:
                // an incremental shared-base artifact could never pass this.
                let spec = SynthSpec::r_only(&f, call.n_rops)
                    .unwrap()
                    .with_options(opts.clone());
                let text = Synthesizer::new().export_dimacs(&spec).unwrap();
                let cnf = mm_sat::dimacs::parse(&text).unwrap();
                mm_sat::drat::check(&cnf, proof).expect("proof refutes the rung formula");
            }
        }
    }

    #[test]
    fn budget_exhaustion_never_claims_optimality_in_parallel() {
        use mm_sat::Budget;
        let f = generators::gf22_multiplier();
        let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(1));
        for jobs in [1, 4] {
            let report =
                minimize_r_only(&synth, &f, 5, &EncodeOptions::recommended(), jobs).unwrap();
            if report.best.is_none() {
                assert!(!report.proven_optimal);
            }
        }
    }
}
