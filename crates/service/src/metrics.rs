//! Live service metrics: the pre-registered handle bundle every layer of
//! the daemon updates, plus the bridge that folds existing telemetry
//! events (solver counters, rung verdicts) into the same registry.
//!
//! # Why a handle bundle
//!
//! Registration takes the registry's family lock; updates are single
//! atomic ops. The hot paths (admission, cache lookup, worker loop) must
//! only ever touch pre-registered [`Counter`]/[`Gauge`] handles, so
//! [`ServiceMetrics::register`] resolves every fixed-label family once at
//! daemon start. Per-op families (`mmsynth_jobs_total{op,status}`,
//! `mmsynth_job_duration_us{op}`) are resolved per job through
//! [`ServiceMetrics::observe_job`] — one registry lookup per *finished*
//! job, which is noise next to a solve.
//!
//! Instrumented types that can also run standalone (the cache in
//! `mmsynth --cache-dir`, the supervisor in unit tests) default to
//! [`ServiceMetrics::detached`]: the same handles over a private,
//! never-scraped registry, so their hot paths stay `Option`-free.

use std::sync::Arc;

use mm_telemetry::metrics::{Counter, Gauge, MetricsRegistry};
use mm_telemetry::{AttrValue, Event, EventKind, TelemetrySink};

/// The fixed-label metric handles shared across the service layers.
pub struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    /// Jobs waiting in the admission queue (`mmsynth_queue_depth`).
    pub queue_depth: Gauge,
    /// Jobs currently executing on a worker (`mmsynth_jobs_inflight`).
    pub jobs_inflight: Gauge,
    /// Jobs accepted into the queue (`mmsynth_admissions_total`).
    pub admissions: Counter,
    /// Jobs refused because the queue was full (`mmsynth_sheds_total`).
    pub sheds: Counter,
    /// Attempts beyond the first (`mmsynth_retries_total`).
    pub retries: Counter,
    /// Attempts that panicked and were isolated (`mmsynth_panics_total`).
    pub panics: Counter,
    /// Cache lookups answered from disk (`mmsynth_cache_hits_total`).
    pub cache_hits: Counter,
    /// Cache lookups that missed (`mmsynth_cache_misses_total`).
    pub cache_misses: Counter,
    /// Cache entries written (`mmsynth_cache_stores_total`).
    pub cache_stores: Counter,
    /// Entries quarantined at startup or on lookup
    /// (`mmsynth_cache_quarantined_total`).
    pub cache_quarantined: Counter,
    /// Valid entries on disk (`mmsynth_cache_entries`).
    pub cache_entries: Gauge,
    /// Bytes the entry files occupy (`mmsynth_cache_disk_bytes`).
    pub cache_disk_bytes: Gauge,
    /// Streamed progress frames written to subscribers
    /// (`mmsynth_progress_frames_total`).
    pub progress_frames: Counter,
}

impl std::fmt::Debug for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceMetrics")
            .field("queue_depth", &self.queue_depth.get())
            .field("jobs_inflight", &self.jobs_inflight.get())
            .field("admissions", &self.admissions.get())
            .field("sheds", &self.sheds.get())
            .finish_non_exhaustive()
    }
}

impl ServiceMetrics {
    /// Registers every fixed-label family on `registry` and returns the
    /// handle bundle. Idempotent: a second call returns handles over the
    /// same cells.
    pub fn register(registry: Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(Self {
            queue_depth: registry.gauge(
                "mmsynth_queue_depth",
                "Jobs waiting in the admission queue.",
            ),
            jobs_inflight: registry.gauge(
                "mmsynth_jobs_inflight",
                "Jobs currently executing on a worker.",
            ),
            admissions: registry.counter(
                "mmsynth_admissions_total",
                "Jobs accepted into the admission queue.",
            ),
            sheds: registry.counter(
                "mmsynth_sheds_total",
                "Jobs refused with `overloaded` because the queue was full.",
            ),
            retries: registry.counter(
                "mmsynth_retries_total",
                "Job attempts beyond the first (escalated-budget retries).",
            ),
            panics: registry.counter(
                "mmsynth_panics_total",
                "Job attempts that panicked and were isolated.",
            ),
            cache_hits: registry.counter(
                "mmsynth_cache_hits_total",
                "Result-cache lookups answered from disk.",
            ),
            cache_misses: registry.counter(
                "mmsynth_cache_misses_total",
                "Result-cache lookups that found no valid entry.",
            ),
            cache_stores: registry.counter(
                "mmsynth_cache_stores_total",
                "Result-cache entries written.",
            ),
            cache_quarantined: registry.counter(
                "mmsynth_cache_quarantined_total",
                "Result-cache entries quarantined at startup or on lookup.",
            ),
            cache_entries: registry.gauge(
                "mmsynth_cache_entries",
                "Valid result-cache entries on disk.",
            ),
            cache_disk_bytes: registry.gauge(
                "mmsynth_cache_disk_bytes",
                "Bytes occupied by result-cache entry files.",
            ),
            progress_frames: registry.counter(
                "mmsynth_progress_frames_total",
                "Streamed progress frames written to subscribed clients.",
            ),
            registry,
        })
    }

    /// Handles over a private registry nothing scrapes. The default for
    /// standalone use of the instrumented types; updates cost the same
    /// atomic op but are observable only through the handles themselves.
    pub fn detached() -> Arc<Self> {
        Self::register(Arc::new(MetricsRegistry::new()))
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one resolved job: bumps `mmsynth_jobs_total{op,status}`
    /// and observes its wall-clock latency into
    /// `mmsynth_job_duration_us{op}`.
    pub fn observe_job(&self, op: &str, status: &str, duration_us: u64) {
        self.registry
            .counter_with(
                "mmsynth_jobs_total",
                &[("op", op), ("status", status)],
                "Jobs resolved, by op and final status.",
            )
            .inc();
        self.registry
            .histogram_with(
                "mmsynth_job_duration_us",
                &[("op", op)],
                "Wall-clock job latency in microseconds (queue + attempts).",
            )
            .observe(duration_us);
    }
}

/// A [`TelemetrySink`] that folds the synthesis stack's existing trace
/// events into registry metrics, so solver effort and ladder verdicts are
/// scrapeable without touching the solver crates.
///
/// Attached by the daemon via [`mm_telemetry::Telemetry::with_extra_sink`];
/// coexists with JSONL tracing and per-job progress sinks.
pub struct MetricsBridgeSink {
    registry: Arc<MetricsRegistry>,
    conflicts: Counter,
    propagations: Counter,
    decisions: Counter,
    restarts: Counter,
    clauses_exported: Counter,
    clauses_imported: Counter,
    inprocess_eliminated: Counter,
    inprocess_subsumed: Counter,
    inprocess_vivified: Counter,
}

impl MetricsBridgeSink {
    /// Pre-registers the solver/ladder families on `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            conflicts: registry.counter(
                "mmsynth_solver_conflicts_total",
                "CDCL conflicts across all solver calls.",
            ),
            propagations: registry.counter(
                "mmsynth_solver_propagations_total",
                "Unit propagations across all solver calls.",
            ),
            decisions: registry.counter(
                "mmsynth_solver_decisions_total",
                "Decisions across all solver calls.",
            ),
            restarts: registry.counter(
                "mmsynth_solver_restarts_total",
                "Restarts across all solver calls.",
            ),
            clauses_exported: registry.counter(
                "mmsynth_ladder_clauses_exported_total",
                "Learnt clauses exported to the portfolio sharing bus.",
            ),
            clauses_imported: registry.counter(
                "mmsynth_ladder_clauses_imported_total",
                "Learnt clauses imported from the portfolio sharing bus.",
            ),
            inprocess_eliminated: registry.counter(
                "mmsynth_solver_inprocess_eliminated_total",
                "Variables removed by bounded variable elimination.",
            ),
            inprocess_subsumed: registry.counter(
                "mmsynth_solver_inprocess_subsumed_total",
                "Clauses subsumed or strengthened during inprocessing.",
            ),
            inprocess_vivified: registry.counter(
                "mmsynth_solver_inprocess_vivified_total",
                "Clauses shortened by vivification during inprocessing.",
            ),
            registry,
        }
    }
}

impl TelemetrySink for MetricsBridgeSink {
    fn record(&self, event: &Event) {
        match &event.kind {
            EventKind::Counter { name, delta } => match name.as_str() {
                "solver.conflicts" => self.conflicts.add(*delta),
                "solver.propagations" => self.propagations.add(*delta),
                "solver.decisions" => self.decisions.add(*delta),
                "solver.restarts" => self.restarts.add(*delta),
                "ladder.clauses_exported" => self.clauses_exported.add(*delta),
                "ladder.clauses_imported" => self.clauses_imported.add(*delta),
                "solver.inprocess.eliminated" => self.inprocess_eliminated.add(*delta),
                "solver.inprocess.subsumed" => self.inprocess_subsumed.add(*delta),
                "solver.inprocess.vivified" => self.inprocess_vivified.add(*delta),
                _ => {}
            },
            EventKind::Point { name, attrs } if name == "rung" => {
                let outcome = attrs
                    .iter()
                    .find_map(|(k, v)| match (k.as_str(), v) {
                        ("outcome", AttrValue::Str(s)) => Some(s.as_str()),
                        _ => None,
                    })
                    .unwrap_or("unknown");
                self.registry
                    .counter_with(
                        "mmsynth_rungs_total",
                        &[("outcome", outcome)],
                        "Ladder rung verdicts, by outcome.",
                    )
                    .inc();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use mm_telemetry::{kv, Telemetry};

    use super::*;

    #[test]
    fn register_is_idempotent_over_one_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let a = ServiceMetrics::register(registry.clone());
        let b = ServiceMetrics::register(registry);
        a.admissions.add(2);
        b.admissions.inc();
        assert_eq!(a.admissions.get(), 3, "both bundles share the cells");
    }

    #[test]
    fn observe_job_labels_by_op_and_status() {
        let metrics = ServiceMetrics::detached();
        metrics.observe_job("minimize", "ok", 1_000);
        metrics.observe_job("minimize", "ok", 2_000);
        metrics.observe_job("minimize", "degraded", 500_000);
        let text = metrics.registry().render_prometheus();
        assert!(text.contains(r#"mmsynth_jobs_total{op="minimize",status="ok"} 2"#));
        assert!(text.contains(r#"mmsynth_jobs_total{op="minimize",status="degraded"} 1"#));
        assert!(text.contains(r#"mmsynth_job_duration_us_count{op="minimize"} 3"#));
    }

    #[test]
    fn bridge_folds_solver_counters_and_rung_points() {
        let registry = Arc::new(MetricsRegistry::new());
        let telemetry = Telemetry::disabled()
            .with_extra_sink(Arc::new(MetricsBridgeSink::new(registry.clone())));
        telemetry.counter("solver.conflicts", 40);
        telemetry.counter("solver.conflicts", 2);
        telemetry.counter("solver.propagations", 100);
        telemetry.counter("ladder.clauses_exported", 7);
        telemetry.counter("solver.inprocess.eliminated", 3);
        telemetry.counter("solver.inprocess.subsumed", 8);
        telemetry.counter("solver.inprocess.subsumed", 1);
        telemetry.counter("solver.inprocess.vivified", 4);
        telemetry.counter("unrelated.counter", 5);
        telemetry.point("rung", vec![kv("n_rops", 2u64), kv("outcome", "unsat")]);
        telemetry.point("rung", vec![kv("n_rops", 3u64), kv("outcome", "sat")]);
        telemetry.point("rung", vec![kv("n_rops", 4u64), kv("outcome", "sat")]);
        telemetry.point("not_a_rung", vec![kv("outcome", "sat")]);
        let text = registry.render_prometheus();
        assert!(text.contains("mmsynth_solver_conflicts_total 42"));
        assert!(text.contains("mmsynth_solver_propagations_total 100"));
        assert!(text.contains("mmsynth_ladder_clauses_exported_total 7"));
        assert!(text.contains("mmsynth_solver_inprocess_eliminated_total 3"));
        assert!(text.contains("mmsynth_solver_inprocess_subsumed_total 9"));
        assert!(text.contains("mmsynth_solver_inprocess_vivified_total 4"));
        assert!(text.contains(r#"mmsynth_rungs_total{outcome="sat"} 2"#));
        assert!(text.contains(r#"mmsynth_rungs_total{outcome="unsat"} 1"#));
        assert!(!text.contains("unrelated"), "unknown names are ignored");
    }
}
