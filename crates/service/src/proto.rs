//! The JSON-lines wire protocol.
//!
//! One request object per line in, one response object per line out.
//! Requests are parsed *tolerantly* by hand from the document tree —
//! unknown fields are ignored, optional fields default — so old clients
//! keep working across server upgrades; responses use the derived
//! serializers so every field is always present (absent values as
//! `null`).
//!
//! ```text
//! {"op":"minimize","id":"j1","tables":["0110"],"max_rops":3,"max_steps":3}
//! {"id":"j1","status":"ok","cache":"miss","circuit":{...},...}
//! ```
//!
//! Status values mirror the CLI's exit-code contract: `ok` (exit 0),
//! `degraded` (exit 2 — budget/deadline ran out, the payload is the best
//! known), `overloaded` (admission queue full, retry later), `error`
//! (malformed request or internal failure), `shutting_down` (drain in
//! progress; resubmit elsewhere).

use std::time::Duration;

use mm_boolfn::{BoolFnError, MultiOutputFn, TruthTable};
use mm_circuit::{CampaignReport, Metrics, MmCircuit};
use mm_sat::DratProof;
use mm_synth::request::{MinimizeMode, MinimizeRequest};
use serde::Value;

use crate::cache::CacheStats;

/// Protocol schema version, echoed in `hello` and `stats` responses.
pub const PROTO_VERSION: u64 = 1;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id echoed back in the response (defaults to `""`).
    pub id: String,
    /// What to do.
    pub op: Op,
    /// Stream `progress` frames for this job ahead of its final response
    /// (`"subscribe": true`). Non-subscribing requests are served exactly
    /// as before — no frames, byte-identical finals.
    pub subscribe: bool,
}

/// The operations the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Cache/queue counters.
    Stats,
    /// Live-metrics snapshot: the full registry as structured JSON plus
    /// the rendered Prometheus exposition text. Answered inline by the
    /// daemon (outside [`JobResponse`]'s fixed shape) so it stays
    /// responsive under queue pressure.
    Metrics,
    /// Begin a graceful drain (same path as SIGTERM).
    Shutdown,
    /// Cached minimization of a function.
    Minimize {
        /// The function, one bitstring per output (row 0 first).
        tables: Vec<String>,
        /// Ladder + budget facet.
        request: MinimizeRequest,
        /// Skip the cache entirely (solve cold, do not store).
        no_cache: bool,
    },
    /// One fixed-budget decision call (`SynthSpec::mixed_mode`).
    Synthesize {
        /// The function, one bitstring per output.
        tables: Vec<String>,
        /// R-op budget.
        n_rops: usize,
        /// Leg budget (`None` = the paper heuristic).
        n_legs: Option<usize>,
        /// Steps-per-leg budget.
        n_vsteps: usize,
        /// Per-call conflict limit.
        max_conflicts: Option<u64>,
    },
    /// Fault-injection campaign against a synthesized schedule.
    Faultsim {
        /// The function, one bitstring per output.
        tables: Vec<String>,
        /// R-op budget for the circuit under test.
        n_rops: usize,
        /// Steps-per-leg budget for the circuit under test.
        n_vsteps: usize,
        /// Seeded trials per plan.
        trials: u32,
        /// Base RNG seed.
        seed: u64,
        /// Cells stuck at LRS for the injected plan (empty = control only).
        stuck_lrs: Vec<usize>,
    },
}

impl Op {
    /// The lowercase wire token, used as the `op` metric label.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ping => "ping",
            Self::Stats => "stats",
            Self::Metrics => "metrics",
            Self::Shutdown => "shutdown",
            Self::Minimize { .. } => "minimize",
            Self::Synthesize { .. } => "synthesize",
            Self::Faultsim { .. } => "faultsim",
        }
    }
}

fn as_str(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn as_u64(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::UInt(x)) => Some(*x),
        Some(Value::Int(x)) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

fn as_bool(v: Option<&Value>) -> Option<bool> {
    match v {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn as_f64(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Float(x)) => Some(*x),
        Some(Value::UInt(x)) => Some(*x as f64),
        Some(Value::Int(x)) => Some(*x as f64),
        _ => None,
    }
}

fn string_array(v: Option<&Value>) -> Option<Vec<String>> {
    match v {
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| match item {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn usize_array(v: Option<&Value>) -> Vec<usize> {
    match v {
        Some(Value::Array(items)) => items
            .iter()
            .filter_map(|item| match item {
                Value::UInt(x) => Some(*x as usize),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

impl JobRequest {
    /// Parses one request line. Unknown fields are ignored; a missing or
    /// unknown `op`, or a malformed required field, is an error whose
    /// message goes back to the client verbatim.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("bad request json: {e}"))?;
        let id = as_str(value.get("id")).unwrap_or_default().to_string();
        let op = as_str(value.get("op")).ok_or("missing \"op\"")?;
        let op = match op {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "shutdown" => Op::Shutdown,
            "minimize" => {
                let tables =
                    string_array(value.get("tables")).ok_or("minimize needs \"tables\": [bits]")?;
                let max_rops = as_u64(value.get("max_rops")).unwrap_or(4) as usize;
                let max_vsteps = as_u64(value.get("max_steps")).unwrap_or(3) as usize;
                let mode = if as_bool(value.get("r_only")).unwrap_or(false) {
                    MinimizeMode::ROnly { max_rops }
                } else {
                    MinimizeMode::MixedMode {
                        max_rops,
                        max_vsteps,
                        is_adder: as_bool(value.get("adder")).unwrap_or(false),
                    }
                };
                let deadline = as_f64(value.get("deadline_secs"))
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .map(Duration::from_secs_f64);
                Op::Minimize {
                    tables,
                    request: MinimizeRequest {
                        mode,
                        max_conflicts: as_u64(value.get("max_conflicts")),
                        deadline,
                        certify: as_bool(value.get("certify")).unwrap_or(false),
                    },
                    no_cache: as_bool(value.get("no_cache")).unwrap_or(false),
                }
            }
            "synthesize" => Op::Synthesize {
                tables: string_array(value.get("tables"))
                    .ok_or("synthesize needs \"tables\": [bits]")?,
                n_rops: as_u64(value.get("rops")).ok_or("synthesize needs \"rops\"")? as usize,
                n_legs: as_u64(value.get("legs")).map(|x| x as usize),
                n_vsteps: as_u64(value.get("steps")).unwrap_or(3) as usize,
                max_conflicts: as_u64(value.get("max_conflicts")),
            },
            "faultsim" => Op::Faultsim {
                tables: string_array(value.get("tables"))
                    .ok_or("faultsim needs \"tables\": [bits]")?,
                n_rops: as_u64(value.get("rops")).unwrap_or(1) as usize,
                n_vsteps: as_u64(value.get("steps")).unwrap_or(3) as usize,
                trials: as_u64(value.get("trials")).unwrap_or(16) as u32,
                seed: as_u64(value.get("seed")).unwrap_or(42),
                stuck_lrs: usize_array(value.get("stuck_lrs")),
            },
            other => return Err(format!("unknown op {other:?}")),
        };
        let subscribe = as_bool(value.get("subscribe")).unwrap_or(false);
        Ok(Self { id, op, subscribe })
    }
}

/// Builds the [`MultiOutputFn`] a request's `tables` describe.
///
/// # Errors
///
/// Propagates [`BoolFnError`] for empty/ragged/non-power-of-two tables.
pub fn function_from_tables(tables: &[String]) -> Result<MultiOutputFn, BoolFnError> {
    let outputs = tables
        .iter()
        .map(|bits| TruthTable::from_bitstring(bits))
        .collect::<Result<Vec<_>, _>>()?;
    MultiOutputFn::new("wire", outputs)
}

/// How a minimize response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the persistent cache.
    Hit,
    /// Solved cold and stored.
    Miss,
    /// Cache skipped (`no_cache`, non-deterministic request, or no cache
    /// directory configured).
    Bypass,
}

impl CacheOutcome {
    /// The lowercase wire token (`"hit"` | `"miss"` | `"bypass"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Bypass => "bypass",
        }
    }
}

// Manual impls: the wire format is the lowercase token, not the derive's
// capitalized variant name.
impl serde::Serialize for CacheOutcome {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for CacheOutcome {
    fn from_value(value: &serde_json::Value) -> Result<Self, serde::Error> {
        match value {
            serde_json::Value::Str(s) => match s.as_str() {
                "hit" => Ok(Self::Hit),
                "miss" => Ok(Self::Miss),
                "bypass" => Ok(Self::Bypass),
                other => Err(serde::Error::msg(format!(
                    "unknown cache outcome {other:?}"
                ))),
            },
            _ => Err(serde::Error::msg("cache outcome must be a string")),
        }
    }
}

/// One response line. Everything is optional except `id` + `status`, so
/// a single shape covers all ops.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: String,
    /// `ok` | `degraded` | `overloaded` | `error` | `shutting_down`.
    pub status: String,
    /// How a minimize answer was produced.
    pub cache: Option<CacheOutcome>,
    /// Why a `degraded` response degraded (mirrors exit code 2).
    pub degraded_reason: Option<String>,
    /// The circuit, for the *requested* (de-canonicalized) function.
    pub circuit: Option<MmCircuit>,
    /// The circuit's cost metrics.
    pub metrics: Option<Metrics>,
    /// Whether minimality was proved.
    pub proven_optimal: Option<bool>,
    /// DRAT refutation of the rung below the optimum, when certified.
    pub proof: Option<DratProof>,
    /// Solver calls spent (0 for a pure cache hit).
    pub solver_calls: Option<u64>,
    /// Fixed-budget decision verdict (`sat` | `unsat` | `unknown`).
    pub verdict: Option<String>,
    /// Fault-campaign report, for `faultsim`.
    pub campaign: Option<CampaignReport>,
    /// Cache counters, for `stats`.
    pub cache_stats: Option<CacheStats>,
    /// Entries currently on disk, for `stats`.
    pub cache_entries: Option<u64>,
    /// Protocol schema version, for `ping`/`stats`.
    pub proto_version: Option<u64>,
    /// Human-readable error, for `error`.
    pub error: Option<String>,
}

impl JobResponse {
    /// A bare response with the given id and status.
    pub fn new(id: &str, status: &str) -> Self {
        Self {
            id: id.to_string(),
            status: status.to_string(),
            ..Self::default()
        }
    }

    /// The `error` response for a malformed or failed request.
    pub fn error(id: &str, message: impl Into<String>) -> Self {
        Self {
            error: Some(message.into()),
            ..Self::new(id, "error")
        }
    }

    /// The `overloaded` shed response.
    pub fn overloaded(id: &str) -> Self {
        Self::new(id, "overloaded")
    }

    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_line_parses_with_defaults() {
        let req = JobRequest::parse(r#"{"op":"minimize","id":"j1","tables":["0110"]}"#).unwrap();
        assert_eq!(req.id, "j1");
        let Op::Minimize {
            tables,
            request,
            no_cache,
        } = req.op
        else {
            panic!("wrong op");
        };
        assert_eq!(tables, vec!["0110"]);
        assert!(!no_cache);
        assert_eq!(
            request.mode,
            MinimizeMode::MixedMode {
                max_rops: 4,
                max_vsteps: 3,
                is_adder: false
            }
        );
        assert!(request.is_deterministic());
    }

    #[test]
    fn unknown_fields_are_tolerated_and_options_honored() {
        let req = JobRequest::parse(
            r#"{"op":"minimize","id":"x","tables":["0001"],"r_only":true,"max_rops":5,
                "max_conflicts":100,"deadline_secs":1.5,"certify":true,"no_cache":true,
                "some_future_field":{"nested":[1,2]}}"#,
        )
        .unwrap();
        let Op::Minimize {
            request, no_cache, ..
        } = req.op
        else {
            panic!("wrong op");
        };
        assert!(no_cache);
        assert_eq!(request.mode, MinimizeMode::ROnly { max_rops: 5 });
        assert_eq!(request.max_conflicts, Some(100));
        assert_eq!(request.deadline, Some(Duration::from_secs_f64(1.5)));
        assert!(request.certify);
    }

    #[test]
    fn metrics_op_and_subscribe_flag_parse() {
        let req = JobRequest::parse(r#"{"op":"metrics","id":"m"}"#).unwrap();
        assert_eq!(req.op, Op::Metrics);
        assert_eq!(req.op.name(), "metrics");
        assert!(!req.subscribe, "subscribe defaults off");
        let req =
            JobRequest::parse(r#"{"op":"minimize","id":"s","tables":["0110"],"subscribe":true}"#)
                .unwrap();
        assert!(req.subscribe);
        assert_eq!(req.op.name(), "minimize");
    }

    #[test]
    fn malformed_lines_produce_messages_not_panics() {
        assert!(JobRequest::parse("").is_err());
        assert!(JobRequest::parse("not json").is_err());
        assert!(JobRequest::parse(r#"{"id":"x"}"#)
            .unwrap_err()
            .contains("op"));
        assert!(JobRequest::parse(r#"{"op":"minimize"}"#)
            .unwrap_err()
            .contains("tables"));
        assert!(JobRequest::parse(r#"{"op":"warp"}"#)
            .unwrap_err()
            .contains("unknown op"));
    }

    #[test]
    fn tables_build_functions_and_reject_garbage() {
        let f = function_from_tables(&["0110".into(), "0001".into()]).unwrap();
        assert_eq!(f.n_inputs(), 2);
        assert_eq!(f.n_outputs(), 2);
        assert!(function_from_tables(&["011".into()]).is_err());
        assert!(function_from_tables(&[]).is_err());
    }

    #[test]
    fn responses_serialize_every_field() {
        let resp = JobResponse::error("j9", "boom");
        let line = resp.to_line();
        let value: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(as_str(value.get("id")), Some("j9"));
        assert_eq!(as_str(value.get("status")), Some("error"));
        assert_eq!(as_str(value.get("error")), Some("boom"));
        assert_eq!(value.get("circuit"), Some(&Value::Null));
    }
}
