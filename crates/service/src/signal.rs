//! Minimal async-signal-safe SIGTERM/SIGINT latch.
//!
//! The daemon's shutdown contract is "SIGTERM drains": the handler only
//! flips an [`AtomicBool`]; the serve loops poll it between jobs and run
//! the drain sequence (stop admission → finish queued jobs → flush cache
//! index → checkpoint telemetry) from ordinary code. Flipping an atomic
//! is the *only* thing the handler does — everything else is unsafe in a
//! signal context.
//!
//! This is the crate's one `unsafe` island (libc `signal(2)` via a raw
//! FFI declaration, so no new dependency); everything else is guarded by
//! `#![deny(unsafe_code)]` at the crate root.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_terminate(_signum: i32) {
    TERMINATION.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT latch. Idempotent; safe to call from any
/// thread before the serve loops start.
///
/// Note the handler does not interrupt a `read(2)` that libc restarts, so
/// the serve loops must also treat EOF as a drain trigger — a blocked
/// stdin daemon drains when its pipe closes even if the signal arrives
/// mid-read.
pub fn install_termination_handler() {
    let handler = on_terminate as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a termination signal has been received.
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Latches termination from ordinary code (the `shutdown` op uses the
/// same path as the signal so there is exactly one drain trigger).
pub fn request_termination() {
    TERMINATION.store(true, Ordering::SeqCst);
}

/// Clears the latch. A freshly started daemon calls this so a latch left
/// over from a previous daemon in the same process (tests, embedders)
/// does not immediately drain the new one.
pub fn reset_termination() {
    TERMINATION.store(false, Ordering::SeqCst);
}

/// Serializes tests that touch the process-global latch so one test's
/// `request_termination` cannot truncate another test's serve loop.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latches_and_resets() {
        let _guard = test_guard();
        install_termination_handler();
        request_termination();
        assert!(termination_requested());
        reset_termination();
        assert!(!termination_requested());
    }
}
