//! The `mmsynthd` daemon: JSON-lines serve loops over stdio, Unix and
//! TCP sockets, wired to the [`Engine`](crate::engine::Engine) through
//! the [`Supervisor`](crate::supervisor::Supervisor).
//!
//! # Serve loop shape
//!
//! Each connection gets a *reader* (the calling thread) and a *writer*
//! thread joined by a channel of pending replies. The reader parses a
//! line, admits the job (or sheds it), and forwards either a ready reply
//! or the supervisor's verdict receiver; the writer resolves pendings
//! **in submission order** and writes one response line per request.
//! Decoupling the two lets a client pipeline requests — which is also
//! what makes the bounded admission queue (and the `overloaded` shed
//! response) actually reachable from a single connection.
//!
//! # Shutdown
//!
//! SIGTERM/SIGINT, the `shutdown` op, and stdin EOF all converge on the
//! same drain: stop admitting, let the supervisor finish every accepted
//! job, flush the cache index, checkpoint telemetry. Accepted jobs are
//! never abandoned — each gets exactly one response line.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mm_telemetry::{kv, Telemetry};

use crate::backoff::RetryPolicy;
use crate::cache::{RecoveryReport, ResultCache};
use crate::engine::Engine;
use crate::proto::{JobRequest, JobResponse, Op, PROTO_VERSION};
use crate::signal;
use crate::supervisor::{JobVerdict, Submission, Supervisor, SupervisorConfig};

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Persistent result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Re-execute cached circuits on the device model before serving.
    pub paranoid: bool,
    /// Concurrent jobs.
    pub workers: usize,
    /// Admission queue depth beyond the jobs in flight.
    pub queue_depth: usize,
    /// Portfolio width per solve.
    pub solve_jobs: usize,
    /// Retry schedule for inconclusive attempts.
    pub retry: RetryPolicy,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            cache_dir: None,
            paranoid: false,
            workers: 2,
            queue_depth: 16,
            solve_jobs: 2,
            retry: RetryPolicy::default(),
        }
    }
}

/// A running daemon: engine + supervisor + (optional) persistent cache.
pub struct Daemon {
    engine: Arc<Engine>,
    supervisor: Supervisor<JobResponse>,
    telemetry: Telemetry,
    recovery: RecoveryReport,
}

/// One reply owed to the client, in submission order.
enum Pending {
    /// Already-final response line.
    Ready(String),
    /// Supervisor verdict still in flight; `id` rebuilds a response if
    /// the channel dies.
    Waiting(Receiver<JobVerdict<JobResponse>>, String),
}

impl Daemon {
    /// Opens the cache (running its crash-recovery scan), starts the
    /// worker pool, and installs the termination latch.
    pub fn start(config: DaemonConfig, telemetry: Telemetry) -> io::Result<Self> {
        signal::install_termination_handler();
        // A fresh daemon has not been signalled yet: clearing the latch
        // here makes restart-in-the-same-process (tests, embedders) match
        // the one-daemon-per-process production shape.
        signal::reset_termination();
        let mut recovery = RecoveryReport::default();
        let mut engine = Engine::new(config.solve_jobs).with_telemetry(telemetry.clone());
        if let Some(dir) = &config.cache_dir {
            let (cache, report) = ResultCache::open(dir)?;
            recovery = report;
            telemetry.point(
                "daemon.recovery",
                vec![
                    kv("valid", recovery.valid),
                    kv("quarantined", recovery.quarantined),
                    kv("temps_removed", recovery.temps_removed),
                ],
            );
            engine = engine.with_cache(cache.with_paranoid(config.paranoid));
        }
        let supervisor = Supervisor::start(SupervisorConfig {
            workers: config.workers,
            queue_depth: config.queue_depth,
            retry: config.retry.clone(),
        });
        Ok(Self {
            engine: Arc::new(engine),
            supervisor,
            telemetry,
            recovery,
        })
    }

    /// What the startup recovery scan found (all zeros without a cache).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Handles one request line: cheap ops answer inline (they must stay
    /// responsive under overload), solve ops go through the supervisor.
    fn admit(&self, line: &str) -> Pending {
        let request = match JobRequest::parse(line) {
            Ok(r) => r,
            Err(e) => return Pending::Ready(JobResponse::error("", e).to_line()),
        };
        let id = request.id.clone();
        match &request.op {
            Op::Ping | Op::Stats => Pending::Ready(
                match request.op {
                    Op::Stats => self.engine.stats_response(&id),
                    _ => JobResponse {
                        proto_version: Some(PROTO_VERSION),
                        ..JobResponse::new(&id, "ok")
                    },
                }
                .to_line(),
            ),
            Op::Shutdown => {
                signal::request_termination();
                Pending::Ready(JobResponse::new(&id, "ok").to_line())
            }
            Op::Minimize { request: min, .. } => {
                let deadline = min.deadline.map(|d| Instant::now() + d);
                self.submit(request.clone(), min.max_conflicts, deadline)
            }
            Op::Synthesize { max_conflicts, .. } => {
                self.submit(request.clone(), *max_conflicts, None)
            }
            Op::Faultsim { .. } => self.submit(request.clone(), None, None),
        }
    }

    fn submit(
        &self,
        request: JobRequest,
        base_conflicts: Option<u64>,
        deadline: Option<Instant>,
    ) -> Pending {
        let id = request.id.clone();
        let engine = self.engine.clone();
        let seed = id_seed(&id);
        let submission = self.supervisor.submit(seed, base_conflicts, deadline, {
            let id = id.clone();
            move |attempt| engine.run_attempt(&id, &request.op, attempt)
        });
        match submission {
            Submission::Queued(rx) => Pending::Waiting(rx, id),
            Submission::Overloaded => {
                self.telemetry
                    .point("daemon.shed", vec![kv("id", id.as_str())]);
                Pending::Ready(JobResponse::overloaded(&id).to_line())
            }
            Submission::ShuttingDown => {
                Pending::Ready(JobResponse::new(&id, "shutting_down").to_line())
            }
        }
    }

    /// Serves one connection: reads request lines from `reader` until EOF
    /// or termination, writes one response line per request to `writer`
    /// in submission order.
    pub fn serve<R, W>(&self, reader: R, writer: W) -> io::Result<()>
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let (tx, rx) = channel::<Pending>();
        let writer_thread = std::thread::Builder::new()
            .name("mmsynthd-writer".into())
            .spawn(move || write_loop(rx, writer))
            .expect("spawn writer");
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                // A torn read (client died mid-line) is an EOF, not a
                // daemon failure.
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(self.admit(&line)).is_err() {
                break; // writer gone (client hung up)
            }
            if signal::termination_requested() {
                break;
            }
        }
        drop(tx);
        writer_thread.join().expect("writer thread panicked")
    }

    /// Serves stdin/stdout until EOF or termination, then drains.
    pub fn serve_stdio(self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(stdin.lock(), stdout)?;
        self.drain()
    }

    /// Accepts connections on a Unix socket until termination, then
    /// drains. Each connection is served on its own thread.
    pub fn serve_unix(self, path: &std::path::Path) -> io::Result<()> {
        // A stale socket file from a killed predecessor must not block
        // restart.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(self);
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = daemon.clone();
                    stream.set_nonblocking(false)?;
                    let read_half = stream.try_clone()?;
                    conns.push(std::thread::spawn(move || {
                        let _ = daemon.serve(BufReader::new(read_half), stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        let _ = std::fs::remove_file(path);
        Arc::try_unwrap(daemon)
            .unwrap_or_else(|_| panic!("connection threads joined"))
            .drain()
    }

    /// Accepts TCP connections until termination, then drains.
    pub fn serve_tcp(self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(self);
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = daemon.clone();
                    stream.set_nonblocking(false)?;
                    let read_half = stream.try_clone()?;
                    conns.push(std::thread::spawn(move || {
                        let _ = daemon.serve(BufReader::new(read_half), stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        Arc::try_unwrap(daemon)
            .unwrap_or_else(|_| panic!("connection threads joined"))
            .drain()
    }

    /// The drain sequence: finish accepted jobs, flush the cache index,
    /// checkpoint telemetry.
    pub fn drain(self) -> io::Result<()> {
        self.supervisor.shutdown();
        if let Some(cache) = &self.engine.cache {
            cache.flush_index()?;
        }
        self.telemetry.point("daemon.drained", vec![]);
        self.telemetry.flush();
        Ok(())
    }
}

/// Resolves pendings in order; every accepted request gets exactly one
/// line.
fn write_loop<W: Write>(rx: Receiver<Pending>, mut writer: W) -> io::Result<()> {
    for pending in rx {
        let line = match pending {
            Pending::Ready(line) => line,
            Pending::Waiting(verdict, id) => match verdict.recv() {
                Ok(JobVerdict::Done(resp)) => resp.to_line(),
                Ok(JobVerdict::Degraded { partial, reason }) => {
                    let mut resp = partial.unwrap_or_else(|| JobResponse::new(&id, "degraded"));
                    resp.status = "degraded".into();
                    if resp.degraded_reason.is_none() {
                        resp.degraded_reason = Some(reason);
                    }
                    resp.to_line()
                }
                Err(_) => JobResponse::error(&id, "job was dropped during shutdown").to_line(),
            },
        };
        writeln!(writer, "{line}")?;
        writer.flush()?;
    }
    Ok(())
}

/// FNV-1a over the job id: the deterministic jitter seed.
fn id_seed(id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm_daemon_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_lines(config: DaemonConfig, input: &str) -> Vec<String> {
        // The termination latch is process-global, so tests touching the
        // daemon serialize against the signal test.
        let _guard = signal::test_guard();
        let daemon = Daemon::start(config, Telemetry::disabled()).unwrap();
        let out: Vec<u8> = Vec::new();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(data)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        daemon
            .serve(io::Cursor::new(input.to_string()), Shared(buf.clone()))
            .unwrap();
        daemon.drain().unwrap();
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn ping_and_stats_round_trip_over_stdio() {
        let dir = temp_dir("ping");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        };
        let input = r#"{"op":"ping","id":"p1"}
{"op":"stats","id":"s1"}
"#;
        let lines = run_lines(config, input);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""id":"p1""#), "line: {}", lines[0]);
        assert!(lines[0].contains(r#""status":"ok""#));
        assert!(lines[1].contains(r#""id":"s1""#));
        assert!(
            lines[1].contains(r#""cache_entries":0"#),
            "line: {}",
            lines[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimize_misses_then_hits_in_submission_order() {
        let dir = temp_dir("roundtrip");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            workers: 1,
            ..DaemonConfig::default()
        };
        // Same function twice: second request must be a cache hit and the
        // replies must come back in submission order.
        let input = r#"{"op":"minimize","id":"m1","tables":["0110"],"max_rops":3,"max_steps":3}
{"op":"minimize","id":"m2","tables":["0110"],"max_rops":3,"max_steps":3}
"#;
        let lines = run_lines(config, input);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""id":"m1""#));
        assert!(lines[0].contains(r#""cache":"miss""#), "line: {}", lines[0]);
        assert!(lines[1].contains(r#""id":"m2""#));
        assert!(lines[1].contains(r#""cache":"hit""#), "line: {}", lines[1]);
        assert!(lines[1].contains(r#""solver_calls":0"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_loop() {
        let lines = run_lines(
            DaemonConfig::default(),
            "this is not json\n{\"op\":\"ping\",\"id\":\"after\"}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains(r#""status":"error""#),
            "line: {}",
            lines[0]
        );
        assert!(lines[1].contains(r#""id":"after""#));
    }

    #[test]
    fn restart_reuses_the_cache_directory() {
        let dir = temp_dir("restart");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        };
        let input = "{\"op\":\"minimize\",\"id\":\"a\",\"tables\":[\"0001\"],\"max_rops\":3,\"max_steps\":3}\n";
        let first = run_lines(config.clone(), input);
        assert!(first[0].contains(r#""cache":"miss""#));
        // New daemon, same directory: the entry written by the first run
        // must survive the recovery scan and serve a hit.
        let second = run_lines(config, input);
        assert!(
            second[0].contains(r#""cache":"hit""#),
            "line: {}",
            second[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
