//! The `mmsynthd` daemon: JSON-lines serve loops over stdio, Unix and
//! TCP sockets, wired to the [`Engine`](crate::engine::Engine) through
//! the [`Supervisor`](crate::supervisor::Supervisor).
//!
//! # Serve loop shape
//!
//! Each connection gets a *reader* (the calling thread) and a *writer*
//! thread joined by a channel of pending replies. The reader parses a
//! line, admits the job (or sheds it), and forwards either a ready reply
//! or the supervisor's verdict receiver; the writer resolves pendings
//! **in submission order** and writes one response line per request.
//! Decoupling the two lets a client pipeline requests — which is also
//! what makes the bounded admission queue (and the `overloaded` shed
//! response) actually reachable from a single connection.
//!
//! # Shutdown
//!
//! SIGTERM/SIGINT, the `shutdown` op, and stdin EOF all converge on the
//! same drain: stop admitting, let the supervisor finish every accepted
//! job, flush the cache index, checkpoint telemetry. Accepted jobs are
//! never abandoned — each gets exactly one response line.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mm_telemetry::metrics::MetricsRegistry;
use mm_telemetry::{kv, Telemetry, TelemetrySink};
use serde::Value;

use crate::backoff::RetryPolicy;
use crate::cache::{RecoveryReport, ResultCache};
use crate::engine::Engine;
use crate::http::MetricsServer;
use crate::metrics::{MetricsBridgeSink, ServiceMetrics};
use crate::progress::ProgressFrameSink;
use crate::proto::{JobRequest, JobResponse, Op, PROTO_VERSION};
use crate::signal;
use crate::supervisor::{JobVerdict, Submission, Supervisor, SupervisorConfig};

/// How often the writer thread checks an outstanding verdict while it
/// interleaves progress frames.
const FRAME_POLL: Duration = Duration::from_millis(5);

/// Lifetime counter snapshot next to the cache index.
const LIFETIME_FILE: &str = "metrics.json";

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Persistent result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Re-execute cached circuits on the device model before serving.
    pub paranoid: bool,
    /// Concurrent jobs.
    pub workers: usize,
    /// Admission queue depth beyond the jobs in flight.
    pub queue_depth: usize,
    /// Portfolio width per solve.
    pub solve_jobs: usize,
    /// Retry schedule for inconclusive attempts.
    pub retry: RetryPolicy,
    /// Serve `GET /metrics` (Prometheus exposition) on this address
    /// (e.g. `127.0.0.1:9464`; port 0 picks a free one). `None` disables
    /// the exporter.
    pub metrics_addr: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            cache_dir: None,
            paranoid: false,
            workers: 2,
            queue_depth: 16,
            solve_jobs: 2,
            retry: RetryPolicy::default(),
            metrics_addr: None,
        }
    }
}

/// A running daemon: engine + supervisor + (optional) persistent cache,
/// with a per-daemon metrics registry (never the process global, so
/// in-process daemons — tests, embedders — do not cross-contaminate).
pub struct Daemon {
    engine: Arc<Engine>,
    supervisor: Supervisor<JobResponse>,
    telemetry: Telemetry,
    recovery: RecoveryReport,
    metrics: Arc<ServiceMetrics>,
    registry: Arc<MetricsRegistry>,
    metrics_server: Option<MetricsServer>,
    /// Where drained counter totals persist (`<cache_dir>/metrics.json`).
    lifetime_path: Option<PathBuf>,
    /// Totals carried over from prior runs, merged back in at drain.
    lifetime_prior: Vec<(String, String, u64)>,
}

/// One reply owed to the client, in submission order.
enum Pending {
    /// Already-final response line.
    Ready(String),
    /// A response rendered only when its turn to be written comes — a
    /// `metrics` snapshot resolved here observes every job answered
    /// before it, not the moment its request was parsed.
    Lazy(Box<dyn FnOnce() -> String + Send>),
    /// Supervisor verdict still in flight; `id` rebuilds a response if
    /// the channel dies.
    Waiting(Receiver<JobVerdict<JobResponse>>, String),
}

impl Daemon {
    /// Opens the cache (running its crash-recovery scan), starts the
    /// worker pool, and installs the termination latch.
    pub fn start(config: DaemonConfig, telemetry: Telemetry) -> io::Result<Self> {
        signal::install_termination_handler();
        // A fresh daemon has not been signalled yet: clearing the latch
        // here makes restart-in-the-same-process (tests, embedders) match
        // the one-daemon-per-process production shape.
        signal::reset_termination();
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServiceMetrics::register(registry.clone());
        // Every telemetry handle derived from this one also folds solver
        // counters and rung verdicts into the registry.
        let telemetry =
            telemetry.with_extra_sink(Arc::new(MetricsBridgeSink::new(registry.clone())));
        let mut recovery = RecoveryReport::default();
        let mut engine = Engine::new(config.solve_jobs)
            .with_telemetry(telemetry.clone())
            .with_metrics(metrics.clone());
        let mut lifetime_path = None;
        if let Some(dir) = &config.cache_dir {
            let (cache, report) = ResultCache::open(dir)?;
            recovery = report;
            telemetry.point(
                "daemon.recovery",
                vec![
                    kv("valid", recovery.valid),
                    kv("quarantined", recovery.quarantined),
                    kv("temps_removed", recovery.temps_removed),
                ],
            );
            engine = engine.with_cache(
                cache
                    .with_metrics(metrics.clone())
                    .with_paranoid(config.paranoid),
            );
            lifetime_path = Some(dir.join(LIFETIME_FILE));
        }
        let lifetime_prior = match &lifetime_path {
            Some(path) => load_lifetime_gauges(&registry, path),
            None => Vec::new(),
        };
        let supervisor = Supervisor::start(SupervisorConfig {
            workers: config.workers,
            queue_depth: config.queue_depth,
            retry: config.retry.clone(),
            metrics: metrics.clone(),
        });
        let metrics_server = match &config.metrics_addr {
            Some(addr) => Some(MetricsServer::spawn(addr, registry.clone())?),
            None => None,
        };
        Ok(Self {
            engine: Arc::new(engine),
            supervisor,
            telemetry,
            recovery,
            metrics,
            registry,
            metrics_server,
            lifetime_path,
            lifetime_prior,
        })
    }

    /// The daemon's metrics registry (shared with the HTTP exporter).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Where `GET /metrics` answers, when the exporter is enabled
    /// (resolves a requested port 0).
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::local_addr)
    }

    /// What the startup recovery scan found (all zeros without a cache).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Handles one request line: cheap ops answer inline (they must stay
    /// responsive under overload), solve ops go through the supervisor.
    /// `frames` is the connection's progress channel; subscribed solve
    /// jobs stream lifecycle frames into it.
    fn admit(&self, line: &str, frames: &Sender<String>) -> Pending {
        let request = match JobRequest::parse(line) {
            Ok(r) => r,
            Err(e) => return Pending::Ready(JobResponse::error("", e).to_line()),
        };
        let id = request.id.clone();
        match &request.op {
            Op::Ping | Op::Stats => Pending::Ready(
                match request.op {
                    Op::Stats => self.engine.stats_response(&id),
                    _ => JobResponse {
                        proto_version: Some(PROTO_VERSION),
                        ..JobResponse::new(&id, "ok")
                    },
                }
                .to_line(),
            ),
            // Answered with a hand-built line, not through `JobResponse`:
            // the response's derived serializer emits every field, so
            // growing it would change the bytes of *all* responses.
            // Lazy, so a pipelined `metrics` op snapshots *after* the
            // jobs submitted ahead of it have answered.
            Op::Metrics => {
                let registry = self.registry.clone();
                Pending::Lazy(Box::new(move || metrics_line(&registry, &id)))
            }
            Op::Shutdown => {
                signal::request_termination();
                Pending::Ready(JobResponse::new(&id, "ok").to_line())
            }
            Op::Minimize { request: min, .. } => {
                let deadline = min.deadline.map(|d| Instant::now() + d);
                self.submit(request.clone(), min.max_conflicts, deadline, frames)
            }
            Op::Synthesize { max_conflicts, .. } => {
                self.submit(request.clone(), *max_conflicts, None, frames)
            }
            Op::Faultsim { .. } => self.submit(request.clone(), None, None, frames),
        }
    }

    fn submit(
        &self,
        request: JobRequest,
        base_conflicts: Option<u64>,
        deadline: Option<Instant>,
        frames: &Sender<String>,
    ) -> Pending {
        let id = request.id.clone();
        let engine = self.engine.clone();
        let seed = id_seed(&id);
        let progress: Option<Arc<dyn TelemetrySink>> = if request.subscribe {
            Some(Arc::new(ProgressFrameSink::new(
                &id,
                frames.clone(),
                self.metrics.progress_frames.clone(),
            )))
        } else {
            None
        };
        let submission = self.supervisor.submit(seed, base_conflicts, deadline, {
            let id = id.clone();
            move |attempt| engine.run_attempt_with(&id, &request.op, attempt, progress.clone())
        });
        match submission {
            Submission::Queued(rx) => Pending::Waiting(rx, id),
            Submission::Overloaded => {
                self.telemetry
                    .point("daemon.shed", vec![kv("id", id.as_str())]);
                Pending::Ready(JobResponse::overloaded(&id).to_line())
            }
            Submission::ShuttingDown => {
                Pending::Ready(JobResponse::new(&id, "shutting_down").to_line())
            }
        }
    }

    /// Serves one connection: reads request lines from `reader` until EOF
    /// or termination, writes one response line per request to `writer`
    /// in submission order. Subscribed jobs additionally get `progress`
    /// frames interleaved ahead of their finals.
    pub fn serve<R, W>(&self, reader: R, writer: W) -> io::Result<()>
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let (tx, rx) = channel::<Pending>();
        let (frame_tx, frame_rx) = channel::<String>();
        let writer_thread = std::thread::Builder::new()
            .name("mmsynthd-writer".into())
            .spawn(move || write_loop(rx, frame_rx, writer))
            .expect("spawn writer");
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                // A torn read (client died mid-line) is an EOF, not a
                // daemon failure.
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(self.admit(&line, &frame_tx)).is_err() {
                break; // writer gone (client hung up)
            }
            if signal::termination_requested() {
                break;
            }
        }
        drop(tx);
        drop(frame_tx);
        writer_thread.join().expect("writer thread panicked")
    }

    /// Serves stdin/stdout until EOF or termination, then drains.
    pub fn serve_stdio(self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(stdin.lock(), stdout)?;
        self.drain()
    }

    /// Accepts connections on a Unix socket until termination, then
    /// drains. Each connection is served on its own thread.
    pub fn serve_unix(self, path: &std::path::Path) -> io::Result<()> {
        // A stale socket file from a killed predecessor must not block
        // restart.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(self);
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = daemon.clone();
                    stream.set_nonblocking(false)?;
                    let read_half = stream.try_clone()?;
                    conns.push(std::thread::spawn(move || {
                        let _ = daemon.serve(BufReader::new(read_half), stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        let _ = std::fs::remove_file(path);
        Arc::try_unwrap(daemon)
            .unwrap_or_else(|_| panic!("connection threads joined"))
            .drain()
    }

    /// Accepts TCP connections until termination, then drains.
    pub fn serve_tcp(self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(self);
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = daemon.clone();
                    stream.set_nonblocking(false)?;
                    let read_half = stream.try_clone()?;
                    conns.push(std::thread::spawn(move || {
                        let _ = daemon.serve(BufReader::new(read_half), stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        for conn in conns {
            let _ = conn.join();
        }
        Arc::try_unwrap(daemon)
            .unwrap_or_else(|_| panic!("connection threads joined"))
            .drain()
    }

    /// The drain sequence: finish accepted jobs, flush the cache index,
    /// persist lifetime counter totals, stop the exporter, checkpoint
    /// telemetry.
    pub fn drain(self) -> io::Result<()> {
        let Self {
            engine,
            supervisor,
            telemetry,
            registry,
            metrics_server,
            lifetime_path,
            lifetime_prior,
            ..
        } = self;
        supervisor.shutdown();
        if let Some(cache) = &engine.cache {
            cache.flush_index()?;
        }
        if let Some(path) = &lifetime_path {
            persist_lifetime_totals(&registry, &lifetime_prior, path)?;
        }
        if let Some(server) = metrics_server {
            server.shutdown();
        }
        telemetry.point("daemon.drained", vec![]);
        telemetry.flush();
        Ok(())
    }
}

/// The `metrics` op's response line: the registry as structured JSON
/// plus the same Prometheus text the HTTP exporter serves.
fn metrics_line(registry: &MetricsRegistry, id: &str) -> String {
    let doc = Value::Object(vec![
        ("id".to_string(), Value::Str(id.to_string())),
        ("status".to_string(), Value::Str("ok".to_string())),
        ("metrics".to_string(), registry.to_value()),
        (
            "metrics_text".to_string(),
            Value::Str(registry.render_prometheus()),
        ),
    ]);
    serde_json::to_string(&doc).expect("metrics line serializes")
}

/// Loads the persisted counter totals of prior runs, exposing each as a
/// `<family>_lifetime` gauge, and returns them for re-merging at drain.
/// A missing or unreadable snapshot just starts lifetime totals fresh.
fn load_lifetime_gauges(registry: &MetricsRegistry, path: &Path) -> Vec<(String, String, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(Value::Array(series)) = doc.get("counters") else {
        return Vec::new();
    };
    let mut prior = Vec::new();
    for entry in series {
        let (Some(Value::Str(name)), Some(Value::Str(labels)), Some(Value::UInt(total))) =
            (entry.get("name"), entry.get("labels"), entry.get("total"))
        else {
            continue;
        };
        registry
            .gauge_with_block(
                &format!("{name}_lifetime"),
                labels,
                &format!("Total of {name} across all prior daemon runs, persisted at drain."),
            )
            .set(i64::try_from(*total).unwrap_or(i64::MAX));
        prior.push((name.clone(), labels.clone(), *total));
    }
    prior
}

/// Writes prior + this run's counter totals atomically (tmp + rename),
/// so a crash mid-drain leaves the old snapshot intact.
fn persist_lifetime_totals(
    registry: &MetricsRegistry,
    prior: &[(String, String, u64)],
    path: &Path,
) -> io::Result<()> {
    let mut totals = registry.counter_totals();
    for (name, labels, carried) in prior {
        match totals.iter_mut().find(|(n, l, _)| n == name && l == labels) {
            Some((_, _, total)) => *total += carried,
            None => totals.push((name.clone(), labels.clone(), *carried)),
        }
    }
    totals.sort();
    let series: Vec<Value> = totals
        .into_iter()
        .map(|(name, labels, total)| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(name)),
                ("labels".to_string(), Value::Str(labels)),
                ("total".to_string(), Value::UInt(total)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("version".to_string(), Value::UInt(1)),
        ("counters".to_string(), Value::Array(series)),
    ]);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, serde_json::to_string(&doc).expect("totals serialize"))?;
    std::fs::rename(&tmp, path)
}

/// Resolves pendings in order; every accepted request gets exactly one
/// final line. Progress frames are forwarded as they arrive, always
/// ahead of their own job's final: a sink sends every frame before the
/// worker sends the verdict, so once a verdict is in hand a non-blocking
/// drain of `frames` is guaranteed to surface that job's stragglers.
fn write_loop<W: Write>(
    rx: Receiver<Pending>,
    frames: Receiver<String>,
    mut writer: W,
) -> io::Result<()> {
    for pending in rx {
        let line = match pending {
            Pending::Ready(line) => line,
            Pending::Lazy(render) => render(),
            Pending::Waiting(verdict, id) => {
                let outcome = loop {
                    match verdict.try_recv() {
                        Ok(v) => break Ok(v),
                        Err(TryRecvError::Disconnected) => break Err(()),
                        Err(TryRecvError::Empty) => match frames.recv_timeout(FRAME_POLL) {
                            Ok(frame) => {
                                writeln!(writer, "{frame}")?;
                                writer.flush()?;
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            // Reader and all sinks gone: no more frames
                            // can arrive, the verdict alone is left.
                            Err(RecvTimeoutError::Disconnected) => {
                                break verdict.recv().map_err(drop)
                            }
                        },
                    }
                };
                for frame in frames.try_iter() {
                    writeln!(writer, "{frame}")?;
                }
                match outcome {
                    Ok(JobVerdict::Done(resp)) => resp.to_line(),
                    Ok(JobVerdict::Degraded { partial, reason }) => {
                        let mut resp = partial.unwrap_or_else(|| JobResponse::new(&id, "degraded"));
                        resp.status = "degraded".into();
                        if resp.degraded_reason.is_none() {
                            resp.degraded_reason = Some(reason);
                        }
                        resp.to_line()
                    }
                    Err(()) => JobResponse::error(&id, "job was dropped during shutdown").to_line(),
                }
            }
        };
        writeln!(writer, "{line}")?;
        writer.flush()?;
    }
    Ok(())
}

/// FNV-1a over the job id: the deterministic jitter seed.
fn id_seed(id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm_daemon_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_lines(config: DaemonConfig, input: &str) -> Vec<String> {
        // The termination latch is process-global, so tests touching the
        // daemon serialize against the signal test.
        let _guard = signal::test_guard();
        let daemon = Daemon::start(config, Telemetry::disabled()).unwrap();
        let out: Vec<u8> = Vec::new();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(out));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().write(data)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        daemon
            .serve(io::Cursor::new(input.to_string()), Shared(buf.clone()))
            .unwrap();
        daemon.drain().unwrap();
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn ping_and_stats_round_trip_over_stdio() {
        let dir = temp_dir("ping");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        };
        let input = r#"{"op":"ping","id":"p1"}
{"op":"stats","id":"s1"}
"#;
        let lines = run_lines(config, input);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""id":"p1""#), "line: {}", lines[0]);
        assert!(lines[0].contains(r#""status":"ok""#));
        assert!(lines[1].contains(r#""id":"s1""#));
        assert!(
            lines[1].contains(r#""cache_entries":0"#),
            "line: {}",
            lines[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimize_misses_then_hits_in_submission_order() {
        let dir = temp_dir("roundtrip");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            workers: 1,
            ..DaemonConfig::default()
        };
        // Same function twice: second request must be a cache hit and the
        // replies must come back in submission order.
        let input = r#"{"op":"minimize","id":"m1","tables":["0110"],"max_rops":3,"max_steps":3}
{"op":"minimize","id":"m2","tables":["0110"],"max_rops":3,"max_steps":3}
"#;
        let lines = run_lines(config, input);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""id":"m1""#));
        assert!(lines[0].contains(r#""cache":"miss""#), "line: {}", lines[0]);
        assert!(lines[1].contains(r#""id":"m2""#));
        assert!(lines[1].contains(r#""cache":"hit""#), "line: {}", lines[1]);
        assert!(lines[1].contains(r#""solver_calls":0"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_loop() {
        let lines = run_lines(
            DaemonConfig::default(),
            "this is not json\n{\"op\":\"ping\",\"id\":\"after\"}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains(r#""status":"error""#),
            "line: {}",
            lines[0]
        );
        assert!(lines[1].contains(r#""id":"after""#));
    }

    #[test]
    fn metrics_op_reports_counters_and_lifetime_survives_restart() {
        let dir = temp_dir("metrics_op");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            workers: 1,
            ..DaemonConfig::default()
        };
        let input = r#"{"op":"minimize","id":"m1","tables":["0110"],"max_rops":3,"max_steps":3}
{"op":"metrics","id":"x1"}
"#;
        let lines = run_lines(config.clone(), input);
        assert_eq!(lines.len(), 2);
        let snapshot = &lines[1];
        assert!(snapshot.contains(r#""id":"x1""#), "line: {snapshot}");
        assert!(snapshot.contains(r#""metrics_text":"#), "line: {snapshot}");
        assert!(
            snapshot.contains("mmsynth_admissions_total 1"),
            "line: {snapshot}"
        );
        assert!(
            snapshot.contains("mmsynth_cache_misses_total 1"),
            "line: {snapshot}"
        );
        // Solver counters reach the registry through the bridge sink.
        assert!(snapshot.contains("mmsynth_rungs_total"), "line: {snapshot}");

        // Restart over the same directory: the drained totals come back
        // as `_lifetime` gauges while the live counters start at zero.
        let second = run_lines(config, "{\"op\":\"metrics\",\"id\":\"x2\"}\n");
        assert_eq!(second.len(), 1);
        assert!(
            second[0].contains("mmsynth_admissions_total_lifetime 1"),
            "line: {}",
            second[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribed_jobs_stream_progress_frames_before_their_final() {
        let dir = temp_dir("subscribe");
        // One worker, no portfolio: rung spawn timing (and with it
        // `solver_calls`) is deterministic, so finals compare bytewise.
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            workers: 1,
            solve_jobs: 1,
            ..DaemonConfig::default()
        };
        let input = r#"{"op":"minimize","id":"s1","tables":["0110"],"max_rops":3,"max_steps":3,"subscribe":true}
"#;
        let lines = run_lines(config.clone(), input);
        let finals: Vec<&String> = lines
            .iter()
            .filter(|l| !l.contains(r#""frame":"progress""#))
            .collect();
        assert_eq!(finals.len(), 1, "lines: {lines:#?}");
        assert!(finals[0].contains(r#""id":"s1""#));
        let rung_frames = lines
            .iter()
            .filter(|l| l.contains(r#""frame":"progress""#) && l.contains(r#""event":"rung""#))
            .count();
        assert!(rung_frames >= 1, "lines: {lines:#?}");
        // Every frame precedes the final.
        let final_pos = lines.iter().position(|l| *l == *finals[0]).unwrap();
        assert_eq!(final_pos, lines.len() - 1, "lines: {lines:#?}");

        // The identical request without `subscribe` emits no frames —
        // and its final is byte-identical to pre-streaming output.
        let dir2 = temp_dir("subscribe_off");
        let quiet = run_lines(
            DaemonConfig {
                cache_dir: Some(dir2.clone()),
                workers: 1,
                solve_jobs: 1,
                ..DaemonConfig::default()
            },
            r#"{"op":"minimize","id":"s1","tables":["0110"],"max_rops":3,"max_steps":3}
"#,
        );
        assert_eq!(quiet.len(), 1, "lines: {quiet:#?}");
        assert_eq!(quiet[0], *finals[0], "subscribe must not change finals");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn restart_reuses_the_cache_directory() {
        let dir = temp_dir("restart");
        let config = DaemonConfig {
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        };
        let input = "{\"op\":\"minimize\",\"id\":\"a\",\"tables\":[\"0001\"],\"max_rops\":3,\"max_steps\":3}\n";
        let first = run_lines(config.clone(), input);
        assert!(first[0].contains(r#""cache":"miss""#));
        // New daemon, same directory: the entry written by the first run
        // must survive the recovery scan and serve a hit.
        let second = run_lines(config, input);
        assert!(
            second[0].contains(r#""cache":"hit""#),
            "line: {}",
            second[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
