//! Deterministic retry schedules for supervised jobs.
//!
//! The supervisor retries a job whose attempt ended inconclusively
//! (budget exhausted, worker panic) with an *escalating conflict budget*
//! — the same geometric pattern the repair loop uses
//! ([`mm_synth::repair`]) — and a bounded, deterministically jittered
//! backoff delay between attempts. Everything here is a pure function of
//! `(policy, attempt, seed)`: no clocks, no randomness sources, no
//! sleeping. The supervisor decides *whether* and *how long* to wait from
//! these values; tests assert the schedule directly and never sleep.

use std::time::Duration;

/// Retry policy for one job class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (`0` behaves as `1`).
    pub max_attempts: u32,
    /// Conflict budget of the first attempt when the request itself has no
    /// limit. `None` disables escalation: every attempt is unlimited and
    /// only panics are retried.
    pub base_conflicts: Option<u64>,
    /// Geometric growth factor applied to the conflict budget per retry.
    pub escalation: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Hard cap on any single backoff delay.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_conflicts: None,
            escalation: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// What one attempt should run with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0-based attempt index.
    pub index: u32,
    /// Conflict budget for this attempt (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Delay to wait *before* this attempt (zero for the first).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// The schedule entry for `attempt` (0-based), or `None` when the
    /// policy is exhausted. `base` is the request's own conflict limit; it
    /// wins over `base_conflicts` as the escalation seed so a caller's
    /// explicit budget is honored on the first attempt and only *raised*
    /// on retries. `seed` (e.g. a job-id hash) deterministically jitters
    /// the backoff by up to 25% so synchronized clients do not retry in
    /// lockstep.
    pub fn attempt(&self, attempt: u32, base: Option<u64>, seed: u64) -> Option<Attempt> {
        if attempt >= self.max_attempts.max(1) {
            return None;
        }
        let seed_budget = base.or(self.base_conflicts);
        let max_conflicts = seed_budget
            .map(|b| b.saturating_mul(u64::from(self.escalation.max(1)).saturating_pow(attempt)));
        let backoff = if attempt == 0 {
            Duration::ZERO
        } else {
            let exp = self
                .base_backoff
                .saturating_mul(2u32.saturating_pow(attempt - 1))
                .min(self.max_backoff);
            jitter(exp, seed, attempt)
        };
        Some(Attempt {
            index: attempt,
            max_conflicts,
            backoff,
        })
    }
}

/// Deterministic ±0/+25% jitter: a splitmix-style hash of `(seed,
/// attempt)` scales the delay. Pure, so the schedule is reproducible for
/// a given job id.
fn jitter(d: Duration, seed: u64, attempt: u32) -> Duration {
    let mut z = seed ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let frac = (z % 256) as u32; // 0..=255 → up to +25%
    d + d.mul_f64(f64::from(frac) / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_is_immediate_and_honors_request_budget() {
        let p = RetryPolicy::default();
        let a = p.attempt(0, Some(1000), 7).unwrap();
        assert_eq!(a.index, 0);
        assert_eq!(a.max_conflicts, Some(1000));
        assert_eq!(a.backoff, Duration::ZERO);
    }

    #[test]
    fn budgets_escalate_geometrically() {
        let p = RetryPolicy {
            escalation: 4,
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let budgets: Vec<_> = (0..4)
            .map(|i| p.attempt(i, Some(100), 0).unwrap().max_conflicts)
            .collect();
        assert_eq!(budgets, vec![Some(100), Some(400), Some(1600), Some(6400)]);
    }

    #[test]
    fn unlimited_requests_stay_unlimited_without_base_conflicts() {
        let p = RetryPolicy {
            base_conflicts: None,
            ..RetryPolicy::default()
        };
        assert_eq!(p.attempt(1, None, 0).unwrap().max_conflicts, None);
        // With a policy base, unlimited requests get the escalating ladder.
        let p = RetryPolicy {
            base_conflicts: Some(50),
            escalation: 2,
            ..RetryPolicy::default()
        };
        assert_eq!(p.attempt(2, None, 0).unwrap().max_conflicts, Some(200));
    }

    #[test]
    fn schedule_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.attempt(3, None, 0).is_none());
        assert!(p.attempt(99, None, 0).is_none());
        // Same (policy, attempt, seed) → same delay, different seed → may differ.
        let a = p.attempt(2, None, 41).unwrap();
        let b = p.attempt(2, None, 41).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backoff_doubles_and_caps_with_bounded_jitter() {
        let p = RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            ..RetryPolicy::default()
        };
        for attempt in 1..16 {
            let a = p.attempt(attempt, None, 3).unwrap();
            let exp = Duration::from_millis(100)
                .saturating_mul(2u32.saturating_pow(attempt - 1))
                .min(Duration::from_millis(400));
            assert!(a.backoff >= exp, "jitter never shortens the delay");
            assert!(
                a.backoff <= exp + exp.mul_f64(0.25),
                "jitter adds at most 25%"
            );
        }
    }

    #[test]
    fn overflow_saturates_instead_of_wrapping() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            escalation: u32::MAX,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(3600),
            ..RetryPolicy::default()
        };
        let a = p.attempt(64, Some(u64::MAX / 2), 0).unwrap();
        assert_eq!(a.max_conflicts, Some(u64::MAX));
        assert!(a.backoff <= Duration::from_secs(3600) + Duration::from_secs(900));
    }
}
