//! Per-job progress streaming: the sink that turns a subscribed job's
//! telemetry points into `progress` wire frames.
//!
//! A frame is one JSON line, distinguishable from any final response by
//! its `"frame":"progress"` field (responses never carry `frame`):
//!
//! ```text
//! {"frame":"progress","id":"j1","event":"rung","n_rops":2,"outcome":"unsat"}
//! {"frame":"progress","id":"j1","event":"job.cache","outcome":"miss"}
//! {"id":"j1","status":"ok","cache":"miss",...}
//! ```
//!
//! The sink forwards only the *lifecycle* points an operator can act on
//! ([`FRAME_EVENTS`]); span plumbing and raw counters stay in the trace.
//! Frames travel over the connection's frame channel to the writer
//! thread, which interleaves them ahead of their job's final response
//! (see `daemon::write_loop`). Frame sends are sequenced before the
//! job's verdict send on the worker thread, so a writer that has seen
//! the verdict can drain every frame of that job non-blockingly before
//! writing the final — order within a job is deterministic even though
//! frames of concurrent jobs interleave freely.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

use mm_telemetry::metrics::Counter;
use mm_telemetry::{AttrValue, Event, EventKind, TelemetrySink};
use serde::Value;

/// Point names forwarded to subscribers: rung activation and verdict,
/// ladder summary, cache outcome, repair rounds, retry/backoff.
pub const FRAME_EVENTS: &[&str] = &[
    "rung.spawned",
    "rung",
    "ladder",
    "job.cache",
    "job.retry",
    "repair.round",
];

/// A [`TelemetrySink`] that serializes whitelisted points as `progress`
/// frames for one job and sends them to the connection's writer thread.
pub struct ProgressFrameSink {
    id: String,
    // `Sender` is `Send` but not `Sync`; frames are low-rate (one per
    // rung/round, never per conflict), so a mutex is fine here.
    frames: Mutex<Sender<String>>,
    emitted: Counter,
}

impl ProgressFrameSink {
    /// A sink streaming `id`'s lifecycle points into `frames`, counting
    /// emitted frames into `emitted` (`mmsynth_progress_frames_total`).
    pub fn new(id: &str, frames: Sender<String>, emitted: Counter) -> Self {
        Self {
            id: id.to_string(),
            frames: Mutex::new(frames),
            emitted,
        }
    }
}

fn attr_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(x) => Value::UInt(*x),
        AttrValue::I64(x) => Value::Int(*x),
        AttrValue::F64(x) => Value::Float(*x),
        AttrValue::Str(s) => Value::Str(s.clone()),
        AttrValue::Bool(b) => Value::Bool(*b),
    }
}

impl TelemetrySink for ProgressFrameSink {
    fn record(&self, event: &Event) {
        let EventKind::Point { name, attrs } = &event.kind else {
            return;
        };
        if !FRAME_EVENTS.contains(&name.as_str()) {
            return;
        }
        let mut fields = vec![
            ("frame".to_string(), Value::Str("progress".to_string())),
            ("id".to_string(), Value::Str(self.id.clone())),
            ("event".to_string(), Value::Str(name.clone())),
        ];
        for (key, value) in attrs {
            // The job id is already the frame's `id`; point-level ids
            // (e.g. on `job.cache`) would just repeat it.
            if key != "id" {
                fields.push((key.clone(), attr_value(value)));
            }
        }
        let line = serde_json::to_string(&Value::Object(fields)).expect("frame serializes");
        // A gone writer means the client hung up; the job still runs to
        // its verdict, it just streams to nobody.
        if self
            .frames
            .lock()
            .expect("frame sender poisoned")
            .send(line)
            .is_ok()
        {
            self.emitted.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    use mm_telemetry::{kv, Telemetry};

    use super::*;

    #[test]
    fn forwards_whitelisted_points_only_and_tags_the_job() {
        let (tx, rx) = channel();
        let emitted = Counter::detached();
        let telemetry = Telemetry::disabled().with_extra_sink(Arc::new(ProgressFrameSink::new(
            "job-7",
            tx,
            emitted.clone(),
        )));
        telemetry.point("rung", vec![kv("n_rops", 2u64), kv("outcome", "unsat")]);
        telemetry.point("encoder.cnf", vec![kv("clauses", 100u64)]);
        telemetry.counter("solver.conflicts", 10);
        telemetry.point("job.cache", vec![kv("id", "job-7"), kv("outcome", "miss")]);
        {
            let _span = telemetry.span("solve");
        }
        drop(telemetry);
        let frames: Vec<String> = rx.try_iter().collect();
        assert_eq!(frames.len(), 2, "frames: {frames:?}");
        assert_eq!(emitted.get(), 2);
        assert!(frames[0].contains(r#""frame":"progress""#));
        assert!(frames[0].contains(r#""id":"job-7""#));
        assert!(frames[0].contains(r#""event":"rung""#));
        assert!(frames[0].contains(r#""outcome":"unsat""#));
        assert!(frames[1].contains(r#""event":"job.cache""#));
        let id_count = frames[1].matches(r#""id":"#).count();
        assert_eq!(id_count, 1, "point-level id is not repeated: {}", frames[1]);
    }

    #[test]
    fn hung_up_client_does_not_kill_the_job() {
        let (tx, rx) = channel();
        drop(rx);
        let emitted = Counter::detached();
        let sink = ProgressFrameSink::new("gone", tx, emitted.clone());
        let telemetry = Telemetry::disabled().with_extra_sink(Arc::new(sink));
        telemetry.point("rung", vec![kv("outcome", "sat")]);
        assert_eq!(emitted.get(), 0, "nothing emitted to a gone client");
    }
}
