//! The job supervisor: a bounded admission queue in front of a fixed
//! worker pool, with panic isolation and deterministic retry.
//!
//! * **Bounded admission** — [`submit`](Supervisor::submit) refuses work
//!   beyond `queue_depth` with [`Submission::Overloaded`] instead of
//!   queueing without bound; the daemon turns that into the `overloaded`
//!   wire response.
//! * **Isolation** — every attempt runs under
//!   [`catch_unwind`](std::panic::catch_unwind); a panic costs one
//!   attempt, never a worker thread.
//! * **Retry** — inconclusive attempts (panic, or the job reporting
//!   [`AttemptResult::Retry`]) are retried on the spot with the
//!   [`RetryPolicy`]'s escalating conflict budgets and deterministically
//!   jittered backoff. When the schedule is exhausted the job resolves
//!   [`JobVerdict::Degraded`] — the service-side analogue of exit code 2.
//! * **Deadlines** — a job whose deadline has already passed when a
//!   worker picks it up degrades immediately instead of launching a
//!   doomed solve. Mid-run expiry is the solver's own deadline handling.
//! * **Drain** — [`shutdown`](Supervisor::shutdown) stops admission,
//!   lets every accepted job finish (skipping any remaining backoff),
//!   and joins the workers, so an accepted job always gets exactly one
//!   verdict.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backoff::{Attempt, RetryPolicy};
use crate::metrics::ServiceMetrics;

/// What one attempt of a job concluded.
pub enum AttemptResult<R> {
    /// Final answer; no further attempts.
    Done(R),
    /// Inconclusive — ask the schedule for another attempt. `partial`
    /// (the best known answer so far) is served if the schedule is
    /// exhausted.
    Retry {
        /// Best-known partial answer, kept across attempts.
        partial: Option<R>,
        /// Why the attempt was inconclusive.
        reason: String,
    },
}

/// The supervisor's final word on a job.
#[derive(Debug, PartialEq, Eq)]
pub enum JobVerdict<R> {
    /// The job completed.
    Done(R),
    /// The retry schedule ran out (or the deadline passed) before a
    /// conclusive answer; `partial` is the best known.
    Degraded {
        /// Best-known partial answer from the last inconclusive attempt.
        partial: Option<R>,
        /// The last inconclusive reason.
        reason: String,
    },
}

/// One unit of queued work. Boxed `FnMut` so a retry re-invokes the same
/// closure with the next attempt's budget.
type JobFn<R> = Box<dyn FnMut(&Attempt) -> AttemptResult<R> + Send>;

struct QueuedJob<R> {
    job: JobFn<R>,
    /// Seed for deterministic backoff jitter (e.g. a hash of the job id).
    seed: u64,
    /// The request's own conflict limit (escalation base).
    base_conflicts: Option<u64>,
    /// Absolute deadline; jobs past it degrade without launching.
    deadline: Option<Instant>,
    reply: Sender<JobVerdict<R>>,
}

/// Admission decision for one [`submit`](Supervisor::submit) call.
pub enum Submission<R> {
    /// Accepted; the receiver yields exactly one verdict.
    Queued(Receiver<JobVerdict<R>>),
    /// The queue is full — shed instead of buffering.
    Overloaded,
    /// The supervisor is draining and admits nothing new.
    ShuttingDown,
}

/// Tunables for a [`Supervisor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Concurrent jobs (worker threads).
    pub workers: usize,
    /// Jobs that may wait beyond the ones in flight.
    pub queue_depth: usize,
    /// Retry schedule for inconclusive attempts.
    pub retry: RetryPolicy,
    /// Live-metrics handles (queue depth, admissions, sheds, retries,
    /// panics). Detached by default so standalone supervisors stay cheap.
    pub metrics: Arc<ServiceMetrics>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            retry: RetryPolicy::default(),
            metrics: ServiceMetrics::detached(),
        }
    }
}

struct Shared<R> {
    queue: Mutex<VecDeque<QueuedJob<R>>>,
    wake: Condvar,
    draining: AtomicBool,
    config: SupervisorConfig,
    /// Jobs accepted and not yet resolved (queued + running).
    outstanding: AtomicU64,
}

/// A fixed pool of supervised workers. Dropping without
/// [`shutdown`](Self::shutdown) also drains (workers are joined).
pub struct Supervisor<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    handles: Vec<JoinHandle<()>>,
}

impl<R: Send + 'static> Supervisor<R> {
    /// Starts `config.workers` worker threads.
    pub fn start(config: SupervisorConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
            outstanding: AtomicU64::new(0),
        });
        let handles = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("mmsynthd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Offers a job to the queue. `seed` feeds the deterministic backoff
    /// jitter; `base_conflicts` is the request's own conflict limit;
    /// `deadline`, when given, degrades the job if it is still queued
    /// past that instant.
    pub fn submit(
        &self,
        seed: u64,
        base_conflicts: Option<u64>,
        deadline: Option<Instant>,
        job: impl FnMut(&Attempt) -> AttemptResult<R> + Send + 'static,
    ) -> Submission<R> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Submission::ShuttingDown;
        }
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.len() >= self.shared.config.queue_depth {
            self.shared.config.metrics.sheds.inc();
            return Submission::Overloaded;
        }
        let (reply, verdict) = channel();
        queue.push_back(QueuedJob {
            job: Box::new(job),
            seed,
            base_conflicts,
            deadline,
            reply,
        });
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        self.shared.config.metrics.admissions.inc();
        self.shared
            .config
            .metrics
            .queue_depth
            .set(queue.len() as i64);
        drop(queue);
        self.shared.wake.notify_one();
        Submission::Queued(verdict)
    }

    /// Jobs accepted and not yet resolved (queued + running).
    pub fn outstanding(&self) -> u64 {
        self.shared.outstanding.load(Ordering::SeqCst)
    }

    /// Stops admission, waits for every accepted job to resolve, and
    /// joins the workers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<R: Send + 'static> Drop for Supervisor<R> {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop<R: Send + 'static>(shared: &Shared<R>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.config.metrics.queue_depth.set(queue.len() as i64);
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.wake.wait(queue).expect("queue poisoned");
            }
        };
        shared.config.metrics.jobs_inflight.add(1);
        let verdict = run_job(shared, job.job, job.seed, job.base_conflicts, job.deadline);
        shared.config.metrics.jobs_inflight.sub(1);
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
        // A gone receiver just means the client hung up; the job still ran.
        let _ = job.reply.send(verdict);
    }
}

fn run_job<R>(
    shared: &Shared<impl Send>,
    mut job: JobFn<R>,
    seed: u64,
    base_conflicts: Option<u64>,
    deadline: Option<Instant>,
) -> JobVerdict<R> {
    let policy = &shared.config.retry;
    let mut partial: Option<R> = None;
    let mut reason = String::from("retry schedule exhausted");
    for index in 0.. {
        let Some(attempt) = policy.attempt(index, base_conflicts, seed) else {
            return JobVerdict::Degraded { partial, reason };
        };
        if index > 0 {
            shared.config.metrics.retries.inc();
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return JobVerdict::Degraded {
                partial,
                reason: "deadline expired".into(),
            };
        }
        // Backoff between attempts; a drain waives the wait so shutdown
        // never blocks on politeness.
        if attempt.backoff > Duration::ZERO && !shared.draining.load(Ordering::SeqCst) {
            let capped = deadline
                .map(|d| {
                    d.saturating_duration_since(Instant::now())
                        .min(attempt.backoff)
                })
                .unwrap_or(attempt.backoff);
            std::thread::sleep(capped);
        }
        match catch_unwind(AssertUnwindSafe(|| job(&attempt))) {
            Ok(AttemptResult::Done(r)) => return JobVerdict::Done(r),
            Ok(AttemptResult::Retry {
                partial: p,
                reason: r,
            }) => {
                if p.is_some() {
                    partial = p;
                }
                reason = r;
            }
            Err(payload) => {
                shared.config.metrics.panics.inc();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                reason = format!("worker panicked: {message}");
            }
        }
    }
    unreachable!("loop exits via the schedule");
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;

    use super::*;

    fn quick_policy(max_attempts: u32) -> SupervisorConfig {
        SupervisorConfig {
            workers: 2,
            queue_depth: 4,
            retry: RetryPolicy {
                max_attempts,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            ..SupervisorConfig::default()
        }
    }

    fn recv<R>(s: Submission<R>) -> JobVerdict<R> {
        match s {
            Submission::Queued(rx) => rx.recv().expect("verdict"),
            _ => panic!("expected admission"),
        }
    }

    #[test]
    fn jobs_complete_and_report() {
        let sup = Supervisor::start(quick_policy(1));
        let v = recv(sup.submit(0, None, None, |_| AttemptResult::Done(7)));
        assert_eq!(v, JobVerdict::Done(7));
        sup.shutdown();
    }

    #[test]
    fn panics_cost_an_attempt_not_a_worker() {
        let sup = Supervisor::start(quick_policy(2));
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let v = recv(sup.submit(1, None, None, move |_| {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt explodes");
            }
            AttemptResult::Done(99)
        }));
        assert_eq!(v, JobVerdict::Done(99));
        assert_eq!(tries.load(Ordering::SeqCst), 2);
        // The pool still serves after the panic.
        let v = recv(sup.submit(2, None, None, |_| AttemptResult::Done(1)));
        assert_eq!(v, JobVerdict::Done(1));
        sup.shutdown();
    }

    #[test]
    fn exhausted_schedule_degrades_with_best_partial() {
        let sup = Supervisor::start(quick_policy(3));
        let v = recv(
            sup.submit(3, Some(10), None, |attempt| AttemptResult::Retry {
                partial: Some(attempt.max_conflicts),
                reason: format!("attempt {} exhausted", attempt.index),
            }),
        );
        let JobVerdict::Degraded { partial, reason } = v else {
            panic!("expected degraded");
        };
        // The last attempt's escalated budget made it through as partial:
        // 10 * 4^2 with the default escalation factor.
        assert_eq!(partial, Some(Some(160)));
        assert_eq!(reason, "attempt 2 exhausted");
        sup.shutdown();
    }

    #[test]
    fn budgets_escalate_across_attempts() {
        let sup: Supervisor<()> = Supervisor::start(quick_policy(3));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        let _ = recv(sup.submit(4, Some(100), None, move |attempt| {
            s.lock().unwrap().push(attempt.max_conflicts);
            AttemptResult::Retry {
                partial: None,
                reason: "keep going".into(),
            }
        }));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![Some(100), Some(400), Some(1600)]
        );
        sup.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // One worker, depth 1: occupy the worker, fill the queue, then
        // the next submit must shed.
        let config = SupervisorConfig {
            workers: 1,
            queue_depth: 1,
            ..quick_policy(1)
        };
        let sup = Supervisor::start(config);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Open the gate even if an assertion below panics — otherwise the
        // supervisor's drain-on-drop joins a worker parked on it forever.
        struct OpenOnDrop(Arc<(Mutex<bool>, Condvar)>);
        impl Drop for OpenOnDrop {
            fn drop(&mut self) {
                *self.0 .0.lock().unwrap() = true;
                self.0 .1.notify_all();
            }
        }
        let opener = OpenOnDrop(gate.clone());
        let started = Arc::new(AtomicU32::new(0));
        let (g, st) = (gate.clone(), started.clone());
        let busy = sup.submit(0, None, None, move |_| {
            st.store(1, Ordering::SeqCst);
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            AttemptResult::Done(0)
        });
        assert!(matches!(busy, Submission::Queued(_)));
        // Wait until the worker has actually *popped* the job (submit alone
        // already bumps `outstanding`, so that counter can't tell us).
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let queued = sup.submit(1, None, None, |_| AttemptResult::Done(1));
        assert!(matches!(queued, Submission::Queued(_)));
        let shed = sup.submit(2, None, None, |_| AttemptResult::Done(2));
        assert!(matches!(shed, Submission::Overloaded));
        drop(opener);
        assert_eq!(recv(busy), JobVerdict::Done(0));
        assert_eq!(recv(queued), JobVerdict::Done(1));
        sup.shutdown();
    }

    #[test]
    fn expired_deadline_degrades_without_running() {
        let sup: Supervisor<u8> = Supervisor::start(quick_policy(3));
        let past = Instant::now() - Duration::from_secs(1);
        let v = recv(sup.submit(5, None, Some(past), |_| {
            panic!("must not launch");
        }));
        assert_eq!(
            v,
            JobVerdict::Degraded {
                partial: None,
                reason: "deadline expired".into()
            }
        );
        sup.shutdown();
    }

    #[test]
    fn metrics_count_admissions_retries_and_panics() {
        let config = quick_policy(2);
        let metrics = config.metrics.clone();
        let sup = Supervisor::start(config);
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let v = recv(sup.submit(0, None, None, move |_| {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt explodes");
            }
            AttemptResult::Done(1)
        }));
        assert_eq!(v, JobVerdict::Done(1));
        sup.shutdown();
        assert_eq!(metrics.admissions.get(), 1);
        assert_eq!(metrics.panics.get(), 1);
        assert_eq!(metrics.retries.get(), 1, "the second attempt is a retry");
        assert_eq!(metrics.sheds.get(), 0);
        assert_eq!(metrics.queue_depth.get(), 0, "queue drains back to zero");
        assert_eq!(metrics.jobs_inflight.get(), 0);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let sup = Supervisor::start(SupervisorConfig {
            workers: 1,
            queue_depth: 8,
            ..quick_policy(1)
        });
        let receivers: Vec<_> = (0..4)
            .map(
                |i| match sup.submit(i, None, None, move |_| AttemptResult::Done(i)) {
                    Submission::Queued(rx) => rx,
                    _ => panic!("admission"),
                },
            )
            .collect();
        sup.shutdown();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(
                rx.recv().expect("drained verdict"),
                JobVerdict::Done(i as u64)
            );
        }
    }
}
