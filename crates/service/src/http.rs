//! Minimal hand-rolled HTTP/1.1 exporter: `GET /metrics` on a dedicated
//! listener thread, serving the Prometheus exposition text.
//!
//! Deliberately tiny — one request per connection, `Connection: close`,
//! no keep-alive, no chunking — because its only client is a scraper
//! issuing `GET /metrics` every few seconds. Anything fancier would be
//! a dependency in disguise. The listener polls non-blockingly (the same
//! 25 ms cadence as the daemon's socket accept loops) so shutdown never
//! blocks on a quiet port, and runs independently of the serve loop so
//! scrapes keep answering while every worker is deep in a solve.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mm_telemetry::metrics::MetricsRegistry;

/// Largest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running `GET /metrics` listener. Dropping stops and joins it.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free one) and
    /// serves `registry` until [`shutdown`](Self::shutdown) or drop.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures; per-connection I/O errors
    /// only drop that connection.
    pub fn spawn(addr: &str, registry: Arc<MetricsRegistry>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mmsynthd-metrics".into())
            .spawn(move || accept_loop(&listener, &registry, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, registry: &Arc<MetricsRegistry>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are serialized: a metrics endpoint has one
                // client and a response is a few KiB.
                let _ = handle_connection(stream, registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Arc<MetricsRegistry>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until end of headers; the request has no body we care about.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return respond(
                &mut stream,
                "400 Bad Request",
                "request too large\n",
                "text/plain",
            );
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|t| t.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "only GET is served\n",
            "text/plain",
        );
    }
    // Tolerate a query string — scrapers sometimes append cache busters.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            &registry.render_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        ),
        _ => respond(&mut stream, "404 Not Found", "try /metrics\n", "text/plain"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let registry = Arc::new(MetricsRegistry::new());
        registry
            .counter("mm_http_test_total", "Visible through the exporter.")
            .add(3);
        let server = MetricsServer::spawn("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.local_addr();

        let response = get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("mm_http_test_total 3"));

        registry
            .counter("mm_http_test_total", "Visible through the exporter.")
            .inc();
        let response = get(addr, "/metrics?ts=1");
        assert!(response.contains("mm_http_test_total 4"), "{response}");

        let response = get(addr, "/nope");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        server.shutdown();
    }
}
