//! The persistent, content-addressed, NPN-canonical result cache.
//!
//! # Key derivation
//!
//! A cache key identifies the *verdict-determining facet* of a minimize
//! job: the canonical representative of the function under the
//! cost-preserving NPN subgroup ([`mm_boolfn::npn::canonicalize`]) plus
//! the ladder shape and conflict limit
//! ([`MinimizeRequest::cache_facet`]). The key is the FNV-1a hash (two
//! independent 64-bit streams, 32 hex chars) of that facet's canonical
//! JSON serialization. Hashes only *address* entries — every entry stores
//! its full key material, and [`lookup`](ResultCache::lookup) compares it
//! against the request, so a hash collision degrades into a miss, never a
//! wrong answer.
//!
//! # On-disk format
//!
//! `<dir>/entries/<key>.json`, written atomically
//! ([`mm_telemetry::atomic_write`]), two lines:
//!
//! ```text
//! {"cache_schema":1,"checksum":"<fnv1a64 of the payload line>"}
//! {...payload json...}
//! ```
//!
//! A reader validates the header schema and the payload checksum before
//! parsing the payload; any mismatch (torn write, truncation, bit flip,
//! schema bump) moves the file to `<dir>/quarantine/` and reports a miss.
//! [`ResultCache::open`] runs the same validation as a *recovery scan*
//! over every entry, deleting in-flight temp files a killed process left
//! behind ([`mm_telemetry::atomic::is_temp_artifact`]).
//!
//! # Paranoid mode
//!
//! With [`paranoid`](ResultCache::with_paranoid), every hit's circuit is
//! re-executed exhaustively on the nominal device model
//! ([`mm_device::LineArray`]) before being served; a circuit that does not
//! reproduce its function row-for-row is quarantined and the job falls
//! through to a fresh solve. A poisoned cache can therefore never emit a
//! wrong answer, only cost time.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mm_boolfn::MultiOutputFn;
use mm_circuit::{MmCircuit, Schedule};
use mm_device::{ElectricalParams, LineArray, MeasurementTrace};
use mm_sat::DratProof;
use mm_synth::request::{MinimizeMode, MinimizeRequest};
use mm_telemetry::atomic::is_temp_artifact;
use mm_telemetry::atomic_write;
use serde::{Deserialize, Serialize, Value};

use crate::metrics::ServiceMetrics;

/// Bump when [`CacheEntry`]'s serialization changes shape; readers
/// quarantine entries from other versions instead of guessing.
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// Seed used for the deterministic device re-execution that produces the
/// stored [`MeasurementTrace`] and backs paranoid verification.
const DEVICE_SEED: u64 = 0xCAC4E;

/// FNV-1a 64-bit.
fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content-address of one cacheable job facet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Derives the key for `(canonical function, request facet)`.
    pub fn derive(canonical: &MultiOutputFn, request: &MinimizeRequest) -> Self {
        let (mode, max_conflicts) = request.cache_facet();
        let material = serde_json::to_string(&KeyMaterial {
            tables: table_bits(canonical),
            n_inputs: u64::from(canonical.n_inputs()),
            mode,
            max_conflicts,
        })
        .expect("key material serializes");
        let a = fnv1a64(material.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let b = fnv1a64(material.as_bytes(), 0x6c62_272e_07bb_0142);
        Self(format!("{a:016x}{b:016x}"))
    }

    /// The hex form used as the entry file stem.
    pub fn as_hex(&self) -> &str {
        &self.0
    }
}

/// What the key hashes: canonical truth tables + ladder facet.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct KeyMaterial {
    tables: Vec<String>,
    n_inputs: u64,
    mode: MinimizeMode,
    max_conflicts: Option<u64>,
}

/// A function's output tables as bitstrings (row 0 first), the stable
/// textual form used in key material and collision checks.
fn table_bits(f: &MultiOutputFn) -> Vec<String> {
    f.outputs()
        .iter()
        .map(|t| {
            (0..t.n_rows())
                .map(|q| if t.get(q) { '1' } else { '0' })
                .collect()
        })
        .collect()
}

/// `Value` accessors the shim does not provide.
fn value_u64(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::UInt(x)) => Some(*x),
        _ => None,
    }
}

fn value_str(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// One cached result: the canonical function, the request facet it
/// answers, and the complete canonical verdict (circuit, proof, trace).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheEntry {
    /// The canonical representative the solver actually ran on.
    pub canonical: MultiOutputFn,
    /// Ladder shape of the cached run.
    pub mode: MinimizeMode,
    /// Conflict limit of the cached run (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// The minimal circuit for `canonical`, if one exists within budget.
    pub circuit: Option<MmCircuit>,
    /// Whether minimality was proved (UNSAT at the next smaller budget).
    pub proven_optimal: bool,
    /// The checker-accepted refutation of the rung below the optimum,
    /// when the run was certified and such a rung exists.
    pub proof: Option<DratProof>,
    /// Deterministic device-model execution trace of `circuit` (seed
    /// [`DEVICE_SEED`], nominal BFO parameters, input row 0).
    pub trace: Option<MeasurementTrace>,
    /// Solver calls the original run spent, kept so hit responses can
    /// report the work they saved.
    pub solver_calls: u64,
}

impl CacheEntry {
    /// Whether the stored key material matches the request — the
    /// collision guard behind content addressing. Compares truth tables,
    /// not [`MultiOutputFn`] equality: the function *name* is not key
    /// material (xor2 and xnor2 share one canonical entry, as do a named
    /// CLI function and the same tables sent over the wire).
    fn answers(&self, canonical: &MultiOutputFn, request: &MinimizeRequest) -> bool {
        let (mode, max_conflicts) = request.cache_facet();
        self.canonical.n_inputs() == canonical.n_inputs()
            && self.canonical.outputs() == canonical.outputs()
            && self.mode == mode
            && self.max_conflicts == max_conflicts
    }
}

/// Snapshot of the cache counters, kept as the `stats` op's wire type.
/// The live counts are lock-free [`ServiceMetrics`] counters; this struct
/// is assembled from one relaxed load per field at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries quarantined (at startup or on lookup).
    pub quarantined: u64,
}

/// What the startup recovery scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries that validated clean.
    pub valid: u64,
    /// Entries moved to quarantine (torn, truncated, bit-flipped, or from
    /// another schema version).
    pub quarantined: u64,
    /// Abandoned in-flight temp files deleted.
    pub temps_removed: u64,
}

/// Why a stored entry failed validation.
#[derive(Debug)]
enum EntryFault {
    Io(io::Error),
    Malformed(String),
}

impl std::fmt::Display for EntryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Malformed(m) => write!(f, "{m}"),
        }
    }
}

/// The persistent result cache. All methods are `&self` and thread-safe;
/// concurrent stores of the same key are resolved by last-rename-wins.
#[derive(Debug)]
pub struct ResultCache {
    entries: PathBuf,
    quarantine: PathBuf,
    index_path: PathBuf,
    paranoid: bool,
    /// Lock-free counters (hits/misses/stores/quarantined) and disk
    /// gauges. Detached by default; the daemon swaps in its scrapeable
    /// bundle via [`with_metrics`](Self::with_metrics).
    metrics: Arc<ServiceMetrics>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir` and runs the
    /// recovery scan: abandoned temp files are deleted and every entry is
    /// validated, with failures quarantined.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/listing failures. Per-entry faults
    /// never fail `open`; they are quarantined and counted.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        let cache = Self {
            entries: dir.join("entries"),
            quarantine: dir.join("quarantine"),
            index_path: dir.join("index.json"),
            paranoid: false,
            metrics: ServiceMetrics::detached(),
        };
        fs::create_dir_all(&cache.entries)?;
        fs::create_dir_all(&cache.quarantine)?;
        let report = cache.recovery_scan()?;
        cache.metrics.cache_quarantined.add(report.quarantined);
        cache.refresh_disk_gauges();
        Ok((cache, report))
    }

    /// Enables paranoid mode: hits are re-executed on the device model
    /// before being served.
    pub fn with_paranoid(mut self, paranoid: bool) -> Self {
        self.paranoid = paranoid;
        self
    }

    /// Whether paranoid verification is active.
    pub fn is_paranoid(&self) -> bool {
        self.paranoid
    }

    /// Swaps in a shared metrics bundle (the daemon's scrapeable
    /// registry), carrying over counts accumulated so far — notably the
    /// recovery scan's quarantine count from [`open`](Self::open).
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        metrics.cache_hits.add(self.metrics.cache_hits.get());
        metrics.cache_misses.add(self.metrics.cache_misses.get());
        metrics.cache_stores.add(self.metrics.cache_stores.get());
        metrics
            .cache_quarantined
            .add(self.metrics.cache_quarantined.get());
        self.metrics = metrics;
        self.refresh_disk_gauges();
        self
    }

    /// Snapshot of the hit/miss/store/quarantine counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.cache_hits.get(),
            misses: self.metrics.cache_misses.get(),
            stores: self.metrics.cache_stores.get(),
            quarantined: self.metrics.cache_quarantined.get(),
        }
    }

    /// Re-counts the entry files and their total size into the
    /// `mmsynth_cache_entries` / `mmsynth_cache_disk_bytes` gauges.
    /// Called on open, store, and quarantine — the paths that change the
    /// directory — never on the hit path.
    fn refresh_disk_gauges(&self) {
        let (mut entries, mut bytes) = (0i64, 0i64);
        if let Ok(dir) = fs::read_dir(&self.entries) {
            for item in dir.filter_map(Result::ok) {
                if let Ok(meta) = item.metadata() {
                    if meta.is_file() {
                        entries += 1;
                        bytes += meta.len() as i64;
                    }
                }
            }
        }
        self.metrics.cache_entries.set(entries);
        self.metrics.cache_disk_bytes.set(bytes);
    }

    /// Number of (currently valid) entries on disk.
    pub fn len(&self) -> u64 {
        fs::read_dir(&self.entries)
            .map(|d| d.filter_map(Result::ok).count() as u64)
            .unwrap_or(0)
    }

    /// Whether the entry directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn recovery_scan(&self) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        // Temp droppings can sit next to the index as well as the entries.
        for dir in [
            self.entries.parent().unwrap_or(&self.entries),
            &self.entries,
        ] {
            for item in fs::read_dir(dir)? {
                let item = item?;
                let name = item.file_name().to_string_lossy().into_owned();
                if is_temp_artifact(&name) && item.path().is_file() {
                    fs::remove_file(item.path())?;
                    report.temps_removed += 1;
                }
            }
        }
        for item in fs::read_dir(&self.entries)? {
            let path = item?.path();
            if !path.is_file() {
                continue;
            }
            match self.read_entry(&path) {
                Ok(_) => report.valid += 1,
                Err(fault) => {
                    self.quarantine_file(&path, &fault);
                    report.quarantined += 1;
                }
            }
        }
        Ok(report)
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.entries.join(format!("{}.json", key.as_hex()))
    }

    /// Parses + validates one entry file: header schema, payload
    /// checksum, payload shape.
    fn read_entry(&self, path: &Path) -> Result<CacheEntry, EntryFault> {
        let text = fs::read_to_string(path).map_err(EntryFault::Io)?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| EntryFault::Malformed("missing header/payload split".into()))?;
        let header: Value = serde_json::from_str(header)
            .map_err(|e| EntryFault::Malformed(format!("bad header: {e}")))?;
        let schema = value_u64(header.get("cache_schema"))
            .ok_or_else(|| EntryFault::Malformed("header missing cache_schema".into()))?;
        if schema != CACHE_SCHEMA_VERSION {
            return Err(EntryFault::Malformed(format!(
                "schema {schema}, expected {CACHE_SCHEMA_VERSION}"
            )));
        }
        let recorded = value_str(header.get("checksum"))
            .ok_or_else(|| EntryFault::Malformed("header missing checksum".into()))?
            .to_string();
        let payload = payload.trim_end_matches('\n');
        let actual = format!(
            "{:016x}",
            fnv1a64(payload.as_bytes(), 0xcbf2_9ce4_8422_2325)
        );
        if recorded != actual {
            return Err(EntryFault::Malformed(format!(
                "checksum mismatch: header {recorded}, payload {actual}"
            )));
        }
        let value: Value = serde_json::from_str(payload)
            .map_err(|e| EntryFault::Malformed(format!("bad payload json: {e}")))?;
        CacheEntry::from_value(&value)
            .map_err(|e| EntryFault::Malformed(format!("bad payload shape: {e}")))
    }

    fn quarantine_file(&self, path: &Path, fault: &EntryFault) {
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".into());
        let dest = self.quarantine.join(&name);
        // Rename keeps the evidence; if even that fails, remove so the
        // poison cannot be served.
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        } else {
            let note = self.quarantine.join(format!("{name}.reason"));
            let _ = atomic_write(&note, format!("{fault}\n"));
        }
    }

    fn note_quarantine(&self) {
        self.metrics.cache_quarantined.inc();
        self.refresh_disk_gauges();
    }

    /// Looks up the entry answering `(canonical, request)`. Invalid or
    /// mismatching entries are quarantined and reported as a miss; in
    /// paranoid mode the stored circuit must additionally reproduce
    /// `canonical` on the device model.
    pub fn lookup(
        &self,
        canonical: &MultiOutputFn,
        request: &MinimizeRequest,
    ) -> Option<CacheEntry> {
        let key = CacheKey::derive(canonical, request);
        let path = self.entry_path(&key);
        if !path.exists() {
            self.metrics.cache_misses.inc();
            return None;
        }
        let entry = match self.read_entry(&path) {
            Ok(entry) => entry,
            Err(fault) => {
                self.quarantine_file(&path, &fault);
                self.note_quarantine();
                self.metrics.cache_misses.inc();
                return None;
            }
        };
        if !entry.answers(canonical, request) {
            // A hash collision: the entry is valid, just not ours. Leave
            // it for its rightful owner and miss.
            self.metrics.cache_misses.inc();
            return None;
        }
        if self.paranoid && !paranoid_check(&entry) {
            let fault = EntryFault::Malformed(
                "paranoid re-execution: circuit does not implement its function".into(),
            );
            self.quarantine_file(&path, &fault);
            self.note_quarantine();
            self.metrics.cache_misses.inc();
            return None;
        }
        self.metrics.cache_hits.inc();
        Some(entry)
    }

    /// Atomically persists `entry` under its derived key.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn store(&self, request: &MinimizeRequest, entry: &CacheEntry) -> io::Result<()> {
        let key = CacheKey::derive(&entry.canonical, request);
        let payload = serde_json::to_string(entry).map_err(io::Error::other)?;
        let checksum = format!(
            "{:016x}",
            fnv1a64(payload.as_bytes(), 0xcbf2_9ce4_8422_2325)
        );
        let text = format!(
            "{}\n{payload}\n",
            serde_json::to_string(&Value::Object(vec![
                ("cache_schema".into(), Value::UInt(CACHE_SCHEMA_VERSION)),
                ("checksum".into(), Value::Str(checksum)),
            ]))
            .map_err(io::Error::other)?
        );
        atomic_write(self.entry_path(&key), text)?;
        self.metrics.cache_stores.inc();
        self.refresh_disk_gauges();
        Ok(())
    }

    /// Writes the informational `index.json` (schema version, entry
    /// count, counters) atomically. The index is advisory — recovery
    /// rebuilds the truth from the entry files — but flushing it on
    /// shutdown gives operators a cheap health snapshot.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn flush_index(&self) -> io::Result<()> {
        let stats = self.stats();
        let index = Value::Object(vec![
            ("cache_schema".into(), Value::UInt(CACHE_SCHEMA_VERSION)),
            ("entries".into(), Value::UInt(self.len())),
            ("stats".into(), Serialize::to_value(&stats)),
        ]);
        let text = serde_json::to_string_pretty(&index).map_err(io::Error::other)?;
        atomic_write(&self.index_path, format!("{text}\n"))
    }
}

/// Executes `circuit` on a fresh nominal-parameter device array and
/// returns its measurement trace. Shared by entry creation (the stored
/// trace) and paranoid verification, so both observe the same model.
pub fn device_trace(circuit: &MmCircuit) -> Option<MeasurementTrace> {
    let schedule = Schedule::compile(circuit).ok()?;
    let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), DEVICE_SEED);
    schedule.execute(0, &mut array);
    Some(array.trace().clone())
}

/// Exhaustive device-model re-execution: every input row must reproduce
/// the stored canonical function. Entries without a circuit pass
/// trivially (there is nothing executable to poison).
fn paranoid_check(entry: &CacheEntry) -> bool {
    let Some(circuit) = &entry.circuit else {
        return true;
    };
    let Ok(schedule) = Schedule::compile(circuit) else {
        return false;
    };
    let f = &entry.canonical;
    for q in 0..f.n_rows() as u32 {
        let mut array = LineArray::bfo(schedule.n_cells(), ElectricalParams::bfo(), DEVICE_SEED);
        let got = schedule.execute(q, &mut array);
        let want: Vec<bool> = (0..f.n_outputs())
            .map(|i| f.output(i).expect("output in range").get(q as usize))
            .collect();
        if got != want {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;
    use mm_boolfn::npn::canonicalize;
    use mm_synth::{EncodeOptions, Synthesizer};

    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm_cache_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn solved_entry(f: &MultiOutputFn, request: &MinimizeRequest) -> CacheEntry {
        let run = mm_synth::request::minimize_canonical(
            request,
            &Synthesizer::new(),
            f,
            &EncodeOptions::recommended(),
            2,
        )
        .expect("solve");
        let circuit = run.report.best;
        CacheEntry {
            canonical: run.canonical,
            mode: request.cache_facet().0,
            max_conflicts: request.max_conflicts,
            trace: circuit.as_ref().and_then(device_trace),
            circuit,
            proven_optimal: run.report.proven_optimal,
            proof: None,
            solver_calls: run.report.calls.len() as u64,
        }
    }

    #[test]
    fn store_then_lookup_roundtrips_bit_identically() {
        let dir = temp_dir("roundtrip");
        let (cache, recovery) = ResultCache::open(&dir).unwrap();
        assert_eq!(recovery, RecoveryReport::default());
        let f = generators::xor_gate(2);
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&f, &request);
        cache.store(&request, &entry).unwrap();

        let (canonical, _) = canonicalize(&f);
        let hit = cache.lookup(&canonical, &request).expect("hit");
        assert_eq!(hit.canonical, entry.canonical);
        assert_eq!(hit.circuit, entry.circuit);
        assert_eq!(hit.proven_optimal, entry.proven_optimal);
        assert_eq!(hit.trace, entry.trace);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 0, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn npn_equivalent_functions_share_one_entry() {
        let dir = temp_dir("npn_share");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&generators::xor_gate(2), &request);
        cache.store(&request, &entry).unwrap();
        // XNOR canonicalizes to the same representative as XOR.
        let (canonical, _) = canonicalize(&generators::xnor_gate(2));
        assert!(cache.lookup(&canonical, &request).is_some());
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_budgets_address_different_entries() {
        let f = generators::and_gate(2);
        let mut limited = MinimizeRequest::mixed_mode(3, 3, false);
        limited.max_conflicts = Some(10);
        let unlimited = MinimizeRequest::mixed_mode(3, 3, false);
        let (canonical, _) = canonicalize(&f);
        assert_ne!(
            CacheKey::derive(&canonical, &limited),
            CacheKey::derive(&canonical, &unlimited)
        );
        // Deadlines do not split the address space.
        let mut with_deadline = unlimited.clone();
        with_deadline.deadline = Some(std::time::Duration::from_secs(5));
        assert_eq!(
            CacheKey::derive(&canonical, &unlimited),
            CacheKey::derive(&canonical, &with_deadline)
        );
    }

    #[test]
    fn truncated_entry_is_quarantined_on_lookup() {
        let dir = temp_dir("truncate");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let f = generators::or_gate(2);
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&f, &request);
        cache.store(&request, &entry).unwrap();
        let (canonical, _) = canonicalize(&f);
        let key = CacheKey::derive(&canonical, &request);
        let path = cache.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();

        assert!(cache.lookup(&canonical, &request).is_none());
        assert!(!path.exists(), "torn entry removed from entries/");
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(
            fs::read_dir(dir.join("quarantine")).unwrap().count(),
            2,
            "quarantine holds the entry plus its .reason note"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_scan_quarantines_corruption_and_sweeps_temps() {
        let dir = temp_dir("recovery");
        let f = generators::xor_gate(2);
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&f, &request);
        {
            let (cache, _) = ResultCache::open(&dir).unwrap();
            cache.store(&request, &entry).unwrap();
        }
        // Simulate a crash: a second entry bit-flipped, a torn temp file.
        let bad = dir.join("entries/deadbeefdeadbeefdeadbeefdeadbeef.json");
        let good_path = fs::read_dir(dir.join("entries"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut corrupted = fs::read(&good_path).unwrap();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        fs::write(&bad, &corrupted).unwrap();
        fs::write(dir.join("entries/.x.json.tmp-1-2"), b"partial").unwrap();

        let (cache, recovery) = ResultCache::open(&dir).unwrap();
        assert_eq!(recovery.valid, 1);
        assert_eq!(recovery.quarantined, 1);
        assert_eq!(recovery.temps_removed, 1);
        assert_eq!(cache.len(), 1);
        let (canonical, _) = canonicalize(&f);
        assert!(cache.lookup(&canonical, &request).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_bump_quarantines_instead_of_parsing() {
        let dir = temp_dir("schema");
        let f = generators::and_gate(2);
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&f, &request);
        {
            let (cache, _) = ResultCache::open(&dir).unwrap();
            cache.store(&request, &entry).unwrap();
        }
        let path = fs::read_dir(dir.join("entries"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            text.replacen("\"cache_schema\":1", "\"cache_schema\":99", 1),
        )
        .unwrap();
        let (_, recovery) = ResultCache::open(&dir).unwrap();
        assert_eq!(recovery.quarantined, 1);
        assert_eq!(recovery.valid, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paranoid_mode_rejects_poisoned_circuits() {
        let dir = temp_dir("paranoid");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let cache = cache.with_paranoid(true);
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        // Poison: store AND's canonical entry but with OR's circuit.
        let and_entry = solved_entry(&generators::and_gate(2), &request);
        let or_entry = solved_entry(&generators::or_gate(2), &request);
        let poisoned = CacheEntry {
            circuit: or_entry.circuit,
            ..and_entry.clone()
        };
        cache.store(&request, &poisoned).unwrap();
        let (canonical, _) = canonicalize(&generators::and_gate(2));
        assert!(
            cache.lookup(&canonical, &request).is_none(),
            "paranoid hit must re-execute and reject"
        );
        assert_eq!(cache.stats().quarantined, 1);
        // The honest entry passes paranoid verification.
        cache.store(&request, &and_entry).unwrap();
        assert!(cache.lookup(&canonical, &request).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_flush_reports_counts() {
        let dir = temp_dir("index");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let request = MinimizeRequest::mixed_mode(3, 3, false);
        let entry = solved_entry(&generators::and_gate(2), &request);
        cache.store(&request, &entry).unwrap();
        cache.flush_index().unwrap();
        let index: Value =
            serde_json::from_str(&fs::read_to_string(dir.join("index.json")).unwrap()).unwrap();
        assert_eq!(value_u64(index.get("entries")), Some(1));
        assert_eq!(
            value_u64(index.get("cache_schema")),
            Some(CACHE_SCHEMA_VERSION)
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
