//! Crash-safe synthesis service: the long-running counterpart to the
//! `mmsynth` CLI.
//!
//! The crate packages four robustness layers around the synthesis stack:
//!
//! - [`cache`] — a persistent, content-addressed result cache keyed by
//!   the NPN-canonical form of the requested function
//!   ([`mm_boolfn::npn`]). Entries are written atomically with a
//!   checksum and schema version; a startup recovery scan quarantines
//!   anything torn or corrupt instead of serving it.
//! - [`supervisor`] — a bounded worker pool with per-job deadlines,
//!   panic isolation (`catch_unwind`), bounded retry with escalating
//!   conflict budgets, and an explicit `overloaded` shed when the
//!   admission queue is full.
//! - [`engine`] — the job executor: canonicalize → cache lookup → solve
//!   miss on the portfolio → store → de-canonicalize, so a cache hit is
//!   bit-identical to a cold solve.
//! - [`daemon`] — JSON-lines serve loops (stdio, Unix socket, TCP) with
//!   pipelined per-connection reader/writer threads and a SIGTERM drain
//!   that never abandons an accepted job.
//!
//! [`backoff`] holds the pure, clock-free retry schedule and [`proto`]
//! the wire types. The only `unsafe` in the crate is the SIGTERM latch
//! in its dedicated module.
#![deny(unsafe_code)]

pub mod backoff;
pub mod cache;
pub mod daemon;
pub mod engine;
pub mod http;
pub mod metrics;
pub mod progress;
pub mod proto;
mod signal;
pub mod supervisor;

pub use backoff::{Attempt, RetryPolicy};
pub use cache::{CacheEntry, CacheKey, CacheStats, RecoveryReport, ResultCache};
pub use daemon::{Daemon, DaemonConfig};
pub use engine::Engine;
pub use http::MetricsServer;
pub use metrics::{MetricsBridgeSink, ServiceMetrics};
pub use proto::{CacheOutcome, JobRequest, JobResponse, Op, PROTO_VERSION};
pub use supervisor::{AttemptResult, JobVerdict, Submission, Supervisor, SupervisorConfig};
