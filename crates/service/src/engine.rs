//! Job execution: the bridge from wire requests to the synthesis stack
//! and the result cache.
//!
//! # Hit ≡ miss, bit for bit
//!
//! The engine only ever *solves canonical representatives*. On a miss it
//! canonicalizes, runs the ladder on the canonical function, stores the
//! canonical result, then de-canonicalizes for the reply; on a hit it
//! loads the same canonical result and de-canonicalizes identically. A
//! cache hit is therefore bit-identical (circuit, proof, verdict) to a
//! cold solve of the same request — and since the portfolio's verdicts
//! are worker-count-invariant for conflict-limited budgets (see
//! `mm_synth::optimize::parallel`), that identity holds at any `--jobs`.
//!
//! # What gets cached
//!
//! Only *deterministic, conclusive, first-attempt* results: no deadline
//! on the request, `OptimizeStatus::Complete`, and the attempt ran at the
//! request's own conflict budget (a supervisor retry's escalated budget
//! answers a different question than the key describes). Degraded results
//! are served but never stored, so the cache can only contain verdicts a
//! cold solve would reproduce.

use std::sync::Arc;

use mm_boolfn::npn::canonicalize;
use mm_circuit::campaign::run_campaign_traced;
use mm_circuit::{CampaignConfig, DeviceState, FaultPlan, MmCircuit, Schedule};
use mm_sat::{Budget, DratProof};
use mm_synth::optimize::{CallRecord, OptimizeReport, OptimizeStatus, SynthResultKind};
use mm_synth::request::{decanonicalize_circuit, MinimizeRequest};
use mm_synth::{EncodeOptions, SynthResult, Synthesizer};
use mm_telemetry::{kv, Telemetry, TelemetrySink};

use crate::backoff::Attempt;
use crate::cache::{device_trace, CacheEntry, ResultCache};
use crate::metrics::ServiceMetrics;
use crate::proto::{function_from_tables, CacheOutcome, JobResponse, Op, PROTO_VERSION};
use crate::supervisor::AttemptResult;

/// Shared, thread-safe job executor.
pub struct Engine {
    /// The persistent cache, when a cache dir was configured.
    pub cache: Option<ResultCache>,
    /// Portfolio width per solve.
    pub solve_jobs: usize,
    /// Telemetry handle for job spans/points.
    pub telemetry: Telemetry,
    /// Live-metrics handles: per-op attempt latency and outcome counts.
    pub metrics: Arc<ServiceMetrics>,
    /// Encoding options for every solve.
    pub options: EncodeOptions,
}

impl Engine {
    /// An engine with the recommended encoding and no cache.
    pub fn new(solve_jobs: usize) -> Self {
        Self {
            cache: None,
            solve_jobs: solve_jobs.max(1),
            telemetry: Telemetry::disabled(),
            metrics: ServiceMetrics::detached(),
            options: EncodeOptions::recommended(),
        }
    }

    /// Attaches the persistent cache.
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches telemetry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches the daemon's shared metrics bundle.
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Executes one attempt of `op`. Only `Minimize` is retry-aware; the
    /// other ops complete on the first attempt.
    pub fn run_attempt(
        self: &Arc<Self>,
        id: &str,
        op: &Op,
        attempt: &Attempt,
    ) -> AttemptResult<JobResponse> {
        self.run_attempt_with(id, op, attempt, None)
    }

    /// Like [`run_attempt`](Self::run_attempt), additionally teeing this
    /// job's telemetry into `progress` (the per-job frame sink of a
    /// `subscribe: true` request). The sink observes exactly what the
    /// trace does; non-subscribed jobs take the `None` path, which is the
    /// pre-streaming code path unchanged.
    pub fn run_attempt_with(
        self: &Arc<Self>,
        id: &str,
        op: &Op,
        attempt: &Attempt,
        progress: Option<Arc<dyn TelemetrySink>>,
    ) -> AttemptResult<JobResponse> {
        let telemetry = match progress {
            Some(sink) => self.telemetry.with_extra_sink(sink),
            None => self.telemetry.clone(),
        };
        let started = std::time::Instant::now();
        let result = self.dispatch(id, op, attempt, &telemetry);
        if let AttemptResult::Retry { reason, .. } = &result {
            telemetry.point(
                "job.retry",
                vec![
                    kv("id", id),
                    kv("attempt", u64::from(attempt.index)),
                    kv("reason", reason.as_str()),
                ],
            );
        }
        // `mmsynth_jobs_total{op,status}` counts attempts: a retried job
        // contributes one `retry` sample per inconclusive attempt plus
        // one final-status sample, so outcome mix and latency always add
        // up against `mmsynth_retries_total`.
        let status = match &result {
            AttemptResult::Done(resp) => resp.status.as_str(),
            AttemptResult::Retry { .. } => "retry",
        };
        self.metrics
            .observe_job(op.name(), status, started.elapsed().as_micros() as u64);
        result
    }

    fn dispatch(
        self: &Arc<Self>,
        id: &str,
        op: &Op,
        attempt: &Attempt,
        telemetry: &Telemetry,
    ) -> AttemptResult<JobResponse> {
        let _span = telemetry.span_with(
            "job.attempt",
            vec![kv("id", id), kv("attempt", u64::from(attempt.index))],
        );
        match op {
            Op::Ping => AttemptResult::Done(JobResponse {
                proto_version: Some(PROTO_VERSION),
                ..JobResponse::new(id, "ok")
            }),
            Op::Stats => AttemptResult::Done(self.stats_response(id)),
            // The daemon answers drain and metrics snapshots itself;
            // answering here keeps the protocol total.
            Op::Shutdown | Op::Metrics => AttemptResult::Done(JobResponse::new(id, "ok")),
            Op::Minimize {
                tables,
                request,
                no_cache,
            } => self.minimize(id, tables, request, *no_cache, attempt, telemetry),
            Op::Synthesize {
                tables,
                n_rops,
                n_legs,
                n_vsteps,
                max_conflicts,
            } => AttemptResult::Done(self.synthesize(
                id,
                tables,
                *n_rops,
                *n_legs,
                *n_vsteps,
                *max_conflicts,
                telemetry,
            )),
            Op::Faultsim {
                tables,
                n_rops,
                n_vsteps,
                trials,
                seed,
                stuck_lrs,
            } => AttemptResult::Done(self.faultsim(
                id, tables, *n_rops, *n_vsteps, *trials, *seed, stuck_lrs, telemetry,
            )),
        }
    }

    /// The `stats` op: cache counters + entry count.
    pub fn stats_response(&self, id: &str) -> JobResponse {
        JobResponse {
            proto_version: Some(PROTO_VERSION),
            cache_stats: self.cache.as_ref().map(ResultCache::stats),
            cache_entries: self.cache.as_ref().map(ResultCache::len),
            ..JobResponse::new(id, "ok")
        }
    }

    fn minimize(
        self: &Arc<Self>,
        id: &str,
        tables: &[String],
        request: &MinimizeRequest,
        no_cache: bool,
        attempt: &Attempt,
        telemetry: &Telemetry,
    ) -> AttemptResult<JobResponse> {
        let f = match function_from_tables(tables) {
            Ok(f) => f,
            Err(e) => return AttemptResult::Done(JobResponse::error(id, e.to_string())),
        };
        let (canonical, transform) = canonicalize(&f);
        let cacheable = !no_cache && request.is_deterministic();
        if cacheable {
            if let Some(cache) = &self.cache {
                if let Some(entry) = cache.lookup(&canonical, request) {
                    telemetry.point("job.cache", vec![kv("id", id), kv("outcome", "hit")]);
                    let mut resp = entry_response(id, &entry, &transform);
                    resp.cache = Some(CacheOutcome::Hit);
                    return AttemptResult::Done(resp);
                }
            }
        }

        // Miss (or bypass): solve the canonical representative at this
        // attempt's budget. Attempt 0 runs the request verbatim; retries
        // escalate the conflict limit.
        let mut effective = request.clone();
        if attempt.index > 0 {
            effective.max_conflicts = attempt.max_conflicts;
        }
        let synth = Synthesizer::new().with_telemetry(telemetry.clone());
        let report = match effective.run(&synth, &canonical, &self.options, self.solve_jobs) {
            Ok(report) => report,
            Err(e) => return AttemptResult::Done(JobResponse::error(id, e.to_string())),
        };
        let entry = entry_from_report(&canonical, request, &report);
        let first_attempt = attempt.index == 0;
        let conclusive = !report.status.is_degraded();
        if cacheable && conclusive && first_attempt {
            if let Some(cache) = &self.cache {
                if let Err(e) = cache.store(request, &entry) {
                    // A failed store must not fail the job; the solve is
                    // still good.
                    telemetry.point(
                        "job.cache",
                        vec![kv("id", id), kv("store_error", e.to_string())],
                    );
                }
            }
        }
        let outcome = if self.cache.is_some() && cacheable {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Bypass
        };
        telemetry.point(
            "job.cache",
            vec![
                kv("id", id),
                kv(
                    "outcome",
                    if outcome == CacheOutcome::Miss {
                        "miss"
                    } else {
                        "bypass"
                    },
                ),
            ],
        );
        let mut resp = entry_response(id, &entry, &transform);
        resp.cache = Some(outcome);
        resp.solver_calls = Some(report.calls.len() as u64);
        match &report.status {
            OptimizeStatus::Complete => AttemptResult::Done(resp),
            OptimizeStatus::Degraded { reason } => {
                resp.status = "degraded".into();
                resp.degraded_reason = Some(reason.to_string());
                // Budget exhaustion on a conflict-limited request is worth
                // another attempt at an escalated budget; a deadline expiry
                // or an unlimited-budget degrade is final.
                let retryable = matches!(
                    reason,
                    mm_synth::optimize::DegradeReason::BudgetExhausted
                        | mm_synth::optimize::DegradeReason::WorkerPanicked { .. }
                ) && request.max_conflicts.is_some();
                if retryable {
                    AttemptResult::Retry {
                        partial: Some(resp),
                        reason: reason.to_string(),
                    }
                } else {
                    AttemptResult::Done(resp)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire op's fields
    fn synthesize(
        &self,
        id: &str,
        tables: &[String],
        n_rops: usize,
        n_legs: Option<usize>,
        n_vsteps: usize,
        max_conflicts: Option<u64>,
        telemetry: &Telemetry,
    ) -> JobResponse {
        let f = match function_from_tables(tables) {
            Ok(f) => f,
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let n_legs = n_legs.unwrap_or_else(|| mm_synth::SynthSpec::paper_legs(&f, n_rops, false));
        let spec = match mm_synth::SynthSpec::mixed_mode(&f, n_rops, n_legs, n_vsteps) {
            Ok(spec) => spec.with_options(self.options.clone()),
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let mut synth = Synthesizer::new().with_telemetry(telemetry.clone());
        if let Some(c) = max_conflicts {
            synth = synth.with_budget(Budget::new().with_max_conflicts(c));
        }
        match synth.run(&spec) {
            Ok(outcome) => match outcome.result {
                SynthResult::Realizable(circuit) => JobResponse {
                    verdict: Some("sat".into()),
                    metrics: Some(circuit.metrics()),
                    circuit: Some(circuit),
                    ..JobResponse::new(id, "ok")
                },
                SynthResult::Unrealizable => JobResponse {
                    verdict: Some("unsat".into()),
                    ..JobResponse::new(id, "ok")
                },
                SynthResult::Unknown => JobResponse {
                    verdict: Some("unknown".into()),
                    degraded_reason: Some("budget exhausted".into()),
                    ..JobResponse::new(id, "degraded")
                },
            },
            Err(e) => JobResponse::error(id, e.to_string()),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire op's fields
    fn faultsim(
        &self,
        id: &str,
        tables: &[String],
        n_rops: usize,
        n_vsteps: usize,
        trials: u32,
        seed: u64,
        stuck_lrs: &[usize],
        telemetry: &Telemetry,
    ) -> JobResponse {
        let f = match function_from_tables(tables) {
            Ok(f) => f,
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let n_legs = mm_synth::SynthSpec::paper_legs(&f, n_rops, false);
        let spec = match mm_synth::SynthSpec::mixed_mode(&f, n_rops, n_legs, n_vsteps) {
            Ok(spec) => spec.with_options(self.options.clone()),
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let outcome = match Synthesizer::new()
            .with_telemetry(telemetry.clone())
            .run(&spec)
        {
            Ok(outcome) => outcome,
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let SynthResult::Realizable(circuit) = outcome.result else {
            return JobResponse::error(
                id,
                "faultsim needs a realizable circuit at the given budgets",
            );
        };
        let schedule = match Schedule::compile(&circuit) {
            Ok(s) => s,
            Err(e) => return JobResponse::error(id, e.to_string()),
        };
        let mut plans = vec![FaultPlan::named("control")];
        if !stuck_lrs.is_empty() {
            let mut injected = FaultPlan::named("injected");
            for &cell in stuck_lrs {
                injected = injected.with_stuck(cell, DeviceState::Lrs);
            }
            plans.push(injected);
        }
        let config = CampaignConfig {
            trials,
            seed,
            ..CampaignConfig::default()
        };
        match run_campaign_traced(&schedule, &plans, &config, telemetry) {
            Ok(campaign) => JobResponse {
                campaign: Some(campaign),
                metrics: Some(circuit.metrics()),
                ..JobResponse::new(id, "ok")
            },
            Err(e) => JobResponse::error(id, e.to_string()),
        }
    }
}

/// Builds the response fields every minimize path (hit and miss) shares:
/// the de-canonicalized circuit, its metrics, the optimality flag and
/// the stored proof.
fn entry_response(
    id: &str,
    entry: &CacheEntry,
    transform: &mm_boolfn::npn::NpnTransform,
) -> JobResponse {
    let circuit = entry.circuit.as_ref().map(|c| {
        decanonicalize_circuit(c, transform).expect("stored circuits are structurally valid")
    });
    JobResponse {
        metrics: circuit.as_ref().map(MmCircuit::metrics),
        circuit,
        proven_optimal: Some(entry.proven_optimal),
        proof: entry.proof.clone(),
        solver_calls: Some(0),
        ..JobResponse::new(id, "ok")
    }
}

/// Folds an [`OptimizeReport`] for the canonical function into a cache
/// entry. Shared with `mmsynth --cache-dir`, which is the same
/// solve-store-decanonicalize path without the daemon around it.
pub fn entry_from_report(
    canonical: &mm_boolfn::MultiOutputFn,
    request: &MinimizeRequest,
    report: &OptimizeReport,
) -> CacheEntry {
    let (mode, max_conflicts) = request.cache_facet();
    CacheEntry {
        canonical: canonical.clone(),
        mode,
        max_conflicts,
        trace: report.best.as_ref().and_then(device_trace),
        circuit: report.best.clone(),
        proven_optimal: report.proven_optimal,
        proof: optimality_proof(&report.calls),
        solver_calls: report.calls.len() as u64,
    }
}

/// The certified refutation backing the optimality claim: the UNSAT call
/// at the *largest* budget point. That point always completes and its
/// cold certified solve is deterministic, so the choice (unlike "last in
/// `calls`") is invariant under portfolio scheduling.
pub fn optimality_proof(calls: &[CallRecord]) -> Option<DratProof> {
    calls
        .iter()
        .filter(|c| c.result == SynthResultKind::Unrealizable && c.certified)
        .max_by_key(|c| (c.n_rops, c.n_legs, c.n_vsteps))
        .and_then(|c| c.proof.clone())
}

#[cfg(test)]
mod tests {
    use mm_boolfn::generators;
    use mm_synth::request::MinimizeMode;

    use super::*;
    use crate::cache::RecoveryReport;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mm_engine_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn attempt0(max_conflicts: Option<u64>) -> Attempt {
        Attempt {
            index: 0,
            max_conflicts,
            backoff: std::time::Duration::ZERO,
        }
    }

    fn done(result: AttemptResult<JobResponse>) -> JobResponse {
        match result {
            AttemptResult::Done(r) => r,
            AttemptResult::Retry { .. } => panic!("expected a final response"),
        }
    }

    fn minimize_op(tables: Vec<String>) -> Op {
        Op::Minimize {
            tables,
            request: MinimizeRequest {
                mode: MinimizeMode::MixedMode {
                    max_rops: 3,
                    max_vsteps: 3,
                    is_adder: false,
                },
                max_conflicts: None,
                deadline: None,
                certify: false,
            },
            no_cache: false,
        }
    }

    #[test]
    fn miss_then_hit_serve_identical_answers() {
        let dir = temp_dir("hit_identity");
        let (cache, recovery) = ResultCache::open(&dir).unwrap();
        assert_eq!(recovery, RecoveryReport::default());
        let engine = Arc::new(Engine::new(2).with_cache(cache));
        // XNOR exercises a non-identity transform (it canonicalizes onto
        // XOR's representative).
        let tables = vec![generators::xnor_gate(2).outputs()[0].to_bitstring()];
        let op = minimize_op(tables);
        let miss = done(engine.run_attempt("a", &op, &attempt0(None)));
        assert_eq!(miss.cache, Some(CacheOutcome::Miss));
        assert_eq!(miss.status, "ok");
        let hit = done(engine.run_attempt("b", &op, &attempt0(None)));
        assert_eq!(hit.cache, Some(CacheOutcome::Hit));
        assert_eq!(
            hit.circuit, miss.circuit,
            "hit serves the identical circuit"
        );
        assert_eq!(hit.proven_optimal, miss.proven_optimal);
        assert_eq!(hit.proof.is_some(), miss.proof.is_some());
        assert_eq!(hit.solver_calls, Some(0));
        let circuit = hit.circuit.expect("xnor is realizable");
        let f = generators::xnor_gate(2);
        assert!(
            circuit.implements(&f),
            "served circuit implements the *requested* fn"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_requests_bypass_and_do_not_store() {
        let dir = temp_dir("bypass");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let engine = Arc::new(Engine::new(2).with_cache(cache));
        let Op::Minimize {
            tables, request, ..
        } = minimize_op(vec!["0110".into()])
        else {
            unreachable!()
        };
        let op = Op::Minimize {
            tables,
            request,
            no_cache: true,
        };
        let resp = done(engine.run_attempt("x", &op, &attempt0(None)));
        assert_eq!(resp.cache, Some(CacheOutcome::Bypass));
        assert_eq!(engine.cache.as_ref().unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_budget_runs_are_retryable_and_never_cached() {
        let dir = temp_dir("degraded");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let engine = Arc::new(Engine::new(2).with_cache(cache));
        let op = Op::Minimize {
            tables: vec![generators::gf22_multiplier().outputs()[0].to_bitstring()],
            request: MinimizeRequest {
                mode: MinimizeMode::MixedMode {
                    max_rops: 4,
                    max_vsteps: 3,
                    is_adder: false,
                },
                max_conflicts: Some(1),
                deadline: None,
                certify: false,
            },
            no_cache: false,
        };
        match engine.run_attempt("d", &op, &attempt0(Some(1))) {
            AttemptResult::Retry { partial, reason } => {
                let partial = partial.expect("best-known response travels with the retry");
                assert_eq!(partial.status, "degraded");
                assert!(reason.contains("budget"), "reason: {reason}");
            }
            AttemptResult::Done(resp) => {
                // A 1-conflict budget can conceivably still conclude on a
                // tiny canonical function; accept but require honesty.
                assert_eq!(resp.status, "ok");
            }
        }
        assert_eq!(
            engine.cache.as_ref().unwrap().len(),
            0,
            "degraded results must never be stored"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthesize_and_faultsim_round_trip() {
        let engine = Arc::new(Engine::new(2));
        let op = Op::Synthesize {
            tables: vec!["0001".into()],
            n_rops: 1,
            n_legs: None,
            n_vsteps: 3,
            max_conflicts: None,
        };
        let resp = done(engine.run_attempt("s", &op, &attempt0(None)));
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.verdict.as_deref(), Some("sat"));
        assert!(resp.circuit.is_some());

        let op = Op::Faultsim {
            tables: vec!["0001".into()],
            n_rops: 1,
            n_vsteps: 3,
            trials: 4,
            seed: 7,
            stuck_lrs: vec![0],
        };
        let resp = done(engine.run_attempt("f", &op, &attempt0(None)));
        assert_eq!(resp.status, "ok");
        let campaign = resp.campaign.expect("campaign report");
        assert_eq!(campaign.plans.len(), 2);
        let _ = &campaign;
    }

    #[test]
    fn bad_tables_yield_error_responses_not_panics() {
        let engine = Arc::new(Engine::new(1));
        let op = minimize_op(vec!["junk".into()]);
        let resp = done(engine.run_attempt("e", &op, &attempt0(None)));
        assert_eq!(resp.status, "error");
        assert!(resp.error.is_some());
    }
}
