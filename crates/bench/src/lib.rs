//! Shared harness utilities for regenerating every table and figure of
//! *Optimal Synthesis of Memristive Mixed-Mode Circuits* (DATE 2025).
//!
//! One binary per experiment:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table II (V-op-only 4-input gates) | `table2` |
//! | Table III (universality census) | `table3` |
//! | Table IV (optimal MM vs R-only synthesis) | `table4` |
//! | Table V (adder comparison with literature) | `table5` |
//! | Fig. 1 (GF(2²) multiplier circuit) | `fig1_circuit` |
//! | Fig. 2 (electrical line-array trace) | `fig2_trace` |
//! | §I/§II-B reliability claims (extension) | `reliability` |
//!
//! Criterion benches cover the machinery itself: census throughput,
//! encoder ablations (folded vs faithful, mutex encodings, symmetry
//! breaking), solver performance, device simulation, and the
//! heuristic-vs-optimal gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod literature;
pub mod report;
pub mod table4;

use std::time::Duration;

/// Parses a `--budget <seconds>` argument from a raw arg list, returning
/// the remaining args and the budget (default 60 s).
pub fn parse_budget(args: &[String], default_secs: u64) -> (Vec<String>, Duration) {
    let mut budget = Duration::from_secs(default_secs);
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--budget" {
            if let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) {
                budget = Duration::from_secs(v);
            }
        } else {
            rest.push(a.clone());
        }
    }
    (rest, budget)
}

/// Whether a `--full` flag is present (enables the long-running rows).
pub fn has_full_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--full")
}

/// Right-pads a cell to a column width.
pub fn cell(s: impl ToString, width: usize) -> String {
    let s = s.to_string();
    format!("{s:<width$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parsing() {
        let args: Vec<String> = ["--full", "--budget", "120", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, budget) = parse_budget(&args, 60);
        assert_eq!(budget, Duration::from_secs(120));
        assert_eq!(rest, vec!["--full".to_string(), "x".to_string()]);
        assert!(has_full_flag(&rest));
        let (_, d) = parse_budget(&[], 60);
        assert_eq!(d, Duration::from_secs(60));
    }

    #[test]
    fn cell_pads() {
        assert_eq!(cell("ab", 4), "ab  ");
    }
}
