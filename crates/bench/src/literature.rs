//! Published adder designs compared against in the paper's Table V.
//!
//! These are *citations*, not measurements: `(N_St, N_Dev)` pairs for 1-,
//! 2- and 3-bit adders as reported by the cited works. Entries whose values
//! could not be recovered unambiguously from the paper's (two-column,
//! OCR-mangled) table are `None` and printed as `-`; the legible entries
//! are internally consistent with the per-bit cost formulas of the cited
//! designs (e.g. the serial IMPLY adder of Kvatinsky et al. costs 29 steps
//! per bit).

/// One row of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderDesign {
    /// Citation tag as printed in the paper.
    pub reference: &'static str,
    /// Short description of the design.
    pub description: &'static str,
    /// `(N_St, N_Dev)` for n = 1, 2, 3 bits (`None` = not recovered).
    pub costs: [Option<(u32, u32)>; 3],
}

/// The literature rows of Table V (excluding the paper's own MM adders,
/// which are synthesized live by the `table5` binary).
pub const TABLE5_DESIGNS: &[AdderDesign] = &[
    AdderDesign {
        reference: "[16]",
        description: "IMPLY serial full adder (Kvatinsky et al.)",
        costs: [Some((29, 11)), Some((58, 14)), Some((87, 17))],
    },
    AdderDesign {
        reference: "[17]",
        description: "stateful three-input logic (Siemon et al.)",
        costs: [Some((17, 18)), None, None],
    },
    AdderDesign {
        reference: "[18]",
        description: "improved IMPLY full adder (Rohani, TaheriNejad)",
        costs: [Some((22, 7)), Some((44, 9)), Some((66, 11))],
    },
    AdderDesign {
        reference: "[19]",
        description: "MemALU in-memory adder (Cheng et al.)",
        costs: [Some((11, 12)), Some((22, 18)), Some((33, 24))],
    },
    AdderDesign {
        reference: "[20]",
        description: "semi-parallel IMPLY full adder (Rohani et al.)",
        costs: [Some((17, 7)), Some((34, 9)), Some((51, 11))],
    },
];

/// The paper's own MM adder results from Table IV, used when the `table5`
/// binary runs without a live synthesis budget: `(N_St, N_Dev)` for
/// n = 1, 2, 3.
pub const PAPER_MM_ADDERS: [(u32, u32); 3] = [(5, 5), (9, 10), (11, 14)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_designs_scale_linearly_in_steps() {
        for d in TABLE5_DESIGNS {
            if let (Some((s1, _)), Some((s2, _)), Some((s3, _))) =
                (d.costs[0], d.costs[1], d.costs[2])
            {
                assert_eq!(s2, 2 * s1, "{}", d.reference);
                assert_eq!(s3, 3 * s1, "{}", d.reference);
            }
        }
    }

    #[test]
    fn mm_adders_beat_all_recovered_literature_rows() {
        // The paper's headline: MM adders dominate on steps at every width.
        for (i, &(mm_st, _)) in PAPER_MM_ADDERS.iter().enumerate() {
            for d in TABLE5_DESIGNS {
                if let Some((st, _)) = d.costs[i] {
                    assert!(mm_st < st, "{} at n = {}", d.reference, i + 1);
                }
            }
        }
    }
}
