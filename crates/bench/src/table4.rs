//! Shared driver for the Table IV reproduction: the benchmark set, the
//! paper's reference values, and budgeted row runners.

use std::time::Duration;

use mm_boolfn::{generators, MultiOutputFn};
use mm_sat::Budget;
use mm_synth::{EncodeOptions, SynthResult, SynthSpec, Synthesizer};

/// The paper's reference values for one Table IV row.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// `N_R` as printed.
    pub n_rops: usize,
    /// Whether the printed `N_R` carries the "≤" marker (optimality proof
    /// timed out on the paper's machine).
    pub upper_bound_only: bool,
    /// `N_L` (0 for R-only rows).
    pub n_legs: usize,
    /// `N_VS` (0 for R-only rows).
    pub n_vsteps: usize,
    /// `N_St` as printed.
    pub n_steps: usize,
    /// `N_Dev` as printed.
    pub n_devices: usize,
    /// SLIME 5 runtime in seconds as printed.
    pub time_s: f64,
}

/// One benchmark circuit of Table IV with both of its paper rows.
pub struct Benchmark {
    /// Row label as printed in the paper.
    pub name: &'static str,
    /// The specified function.
    pub function: MultiOutputFn,
    /// Whether the adder leg convention (`N_L = N_R + N_O − 1`) applies.
    pub is_adder: bool,
    /// The paper's mixed-mode row.
    pub paper_mm: PaperRow,
    /// The paper's R-only row.
    pub paper_r_only: PaperRow,
}

/// The five Table IV benchmarks with the paper's printed reference values.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "1-bit adder",
            function: generators::ripple_adder(1),
            is_adder: true,
            paper_mm: PaperRow {
                n_rops: 2,
                upper_bound_only: false,
                n_legs: 3,
                n_vsteps: 3,
                n_steps: 5,
                n_devices: 5,
                time_s: 3.0,
            },
            paper_r_only: PaperRow {
                n_rops: 9,
                upper_bound_only: false,
                n_legs: 0,
                n_vsteps: 0,
                n_steps: 9,
                n_devices: 20,
                time_s: 2.0,
            },
        },
        Benchmark {
            name: "2-bit adder",
            function: generators::ripple_adder(2),
            is_adder: true,
            paper_mm: PaperRow {
                n_rops: 4,
                upper_bound_only: false,
                n_legs: 6,
                n_vsteps: 5,
                n_steps: 9,
                n_devices: 10,
                time_s: 109.0,
            },
            paper_r_only: PaperRow {
                n_rops: 18,
                upper_bound_only: true,
                n_legs: 0,
                n_vsteps: 0,
                n_steps: 18,
                n_devices: 39,
                time_s: 343_233.0,
            },
        },
        Benchmark {
            name: "3-bit adder",
            function: generators::ripple_adder(3),
            is_adder: true,
            paper_mm: PaperRow {
                n_rops: 5,
                upper_bound_only: false,
                n_legs: 8,
                n_vsteps: 6,
                n_steps: 11,
                n_devices: 14,
                time_s: 24_154.0,
            },
            paper_r_only: PaperRow {
                n_rops: 25,
                upper_bound_only: true,
                n_legs: 0,
                n_vsteps: 0,
                n_steps: 25,
                n_devices: 54,
                time_s: 162_433.0,
            },
        },
        Benchmark {
            name: "GF(2^4) inversion",
            function: generators::gf16_inversion(),
            is_adder: false,
            paper_mm: PaperRow {
                n_rops: 7,
                upper_bound_only: false,
                n_legs: 11,
                n_vsteps: 4,
                n_steps: 11,
                n_devices: 18,
                time_s: 1539.0,
            },
            paper_r_only: PaperRow {
                n_rops: 30,
                upper_bound_only: true,
                n_legs: 0,
                n_vsteps: 0,
                n_steps: 30,
                n_devices: 64,
                time_s: 78_187.0,
            },
        },
        Benchmark {
            name: "GF(2^2) multipl.",
            function: generators::gf22_multiplier(),
            is_adder: false,
            paper_mm: PaperRow {
                n_rops: 4,
                upper_bound_only: false,
                n_legs: 6,
                n_vsteps: 3,
                n_steps: 7,
                n_devices: 10,
                time_s: 6.0,
            },
            paper_r_only: PaperRow {
                n_rops: 14,
                upper_bound_only: true,
                n_legs: 0,
                n_vsteps: 0,
                n_steps: 14,
                n_devices: 30,
                time_s: 15.0,
            },
        },
    ]
}

/// Outcome of reproducing one row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// What the call concluded.
    pub status: RowStatus,
    /// Cost metrics of the found circuit, if any.
    pub metrics: Option<mm_circuit::Metrics>,
    /// CNF variables of the instance at the paper's budgets.
    pub n_vars: u32,
    /// CNF clauses of the instance at the paper's budgets.
    pub n_clauses: usize,
    /// Encode + solve wall-clock time.
    pub time: Duration,
}

/// Row reproduction status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// SAT at the paper's budgets, circuit verified.
    Reproduced,
    /// UNSAT at the paper's budgets — would contradict the paper.
    Contradiction,
    /// Budget exhausted before an answer.
    BudgetExceeded,
}

/// Runs one benchmark's MM (or R-only) instance at the paper's budgets.
pub fn run_row(bench: &Benchmark, r_only: bool, budget: Duration) -> RowResult {
    let paper = if r_only {
        &bench.paper_r_only
    } else {
        &bench.paper_mm
    };
    let spec = if r_only {
        SynthSpec::r_only(&bench.function, paper.n_rops)
    } else {
        SynthSpec::mixed_mode(&bench.function, paper.n_rops, paper.n_legs, paper.n_vsteps)
    }
    .expect("paper budgets are structurally valid")
    .with_options(EncodeOptions::recommended());
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_time(budget));
    let outcome = synth.run(&spec).expect("paper specs never fail to encode");
    RowResult {
        status: match outcome.result {
            SynthResult::Realizable(_) => RowStatus::Reproduced,
            SynthResult::Unrealizable => RowStatus::Contradiction,
            SynthResult::Unknown => RowStatus::BudgetExceeded,
        },
        metrics: outcome.circuit().map(|c| c.metrics()),
        n_vars: outcome.encode_stats.n_vars,
        n_clauses: outcome.encode_stats.n_clauses,
        time: outcome.total_time(),
    }
}

/// Checks the optimality certificate of a mixed-mode row: UNSAT at
/// `N_VS − 1` and (for `N_R > 0`) at `N_R − 1`.
pub fn check_optimality(bench: &Benchmark, budget: Duration) -> (RowStatus, RowStatus) {
    let paper = &bench.paper_mm;
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_time(budget));
    let probe = |n_r: usize, n_l: usize, n_vs: usize| -> RowStatus {
        let spec = SynthSpec::mixed_mode(&bench.function, n_r, n_l, n_vs)
            .expect("probe budgets are valid")
            .with_options(EncodeOptions::recommended());
        match synth.run(&spec).expect("probe specs encode").result {
            SynthResult::Unrealizable => RowStatus::Reproduced,
            SynthResult::Realizable(_) => RowStatus::Contradiction,
            SynthResult::Unknown => RowStatus::BudgetExceeded,
        }
    };
    let fewer_steps = probe(paper.n_rops, paper.n_legs, paper.n_vsteps - 1);
    let fewer_rops = probe(
        paper.n_rops - 1,
        SynthSpec::paper_legs(&bench.function, paper.n_rops - 1, bench.is_adder),
        paper.n_vsteps,
    );
    (fewer_steps, fewer_rops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_set_matches_table4_dimensions() {
        let set = benchmarks();
        assert_eq!(set.len(), 5);
        let dims: Vec<(u8, usize)> = set
            .iter()
            .map(|b| (b.function.n_inputs(), b.function.n_outputs()))
            .collect();
        assert_eq!(dims, vec![(3, 2), (5, 3), (7, 4), (4, 4), (4, 2)]);
        for b in &set {
            // Paper consistency: N_St = N_VS + N_R and the leg convention.
            let p = &b.paper_mm;
            assert_eq!(p.n_steps, p.n_vsteps + p.n_rops, "{}", b.name);
            assert_eq!(
                p.n_legs,
                SynthSpec::paper_legs(&b.function, p.n_rops, b.is_adder),
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn one_bit_adder_row_reproduces_quickly() {
        let set = benchmarks();
        let adder = &set[0];
        let result = run_row(adder, false, Duration::from_secs(120));
        assert_eq!(result.status, RowStatus::Reproduced);
        let m = result.metrics.expect("reproduced rows carry metrics");
        assert_eq!(m.n_steps, adder.paper_mm.n_steps);
        assert_eq!(m.n_devices_structural, adder.paper_mm.n_devices);
    }
}
