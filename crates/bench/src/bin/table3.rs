//! Reproduces the paper's Table III: the number of 3- and 4-input
//! functions realizable by `k_pre` R-ops, a V-op fixed point, and `k_post`
//! further R-ops (plus the `k_TEBE` electrode-driver variant).
//!
//! The paper's `k_post` column is offset by one relative to NOR rounds
//! (see `mm_synth::universality::CensusConfig::k_post`); the mapping is
//! applied here so the printed rows compare 1:1 with the paper.

use std::time::Instant;

use mm_synth::universality::{census, CensusConfig};

const ROWS: &[(u32, u32, u32, usize, usize)] = &[
    // (k_pre, k_post [paper convention], k_TEBE, paper N_3, paper N_4)
    (0, 0, 0, 104, 1850),
    (1, 0, 0, 104, 1850),
    (2, 0, 0, 158, 3590),
    (3, 0, 0, 186, 6170),
    (4, 0, 0, 256, 63424),
    (5, 0, 0, 256, 65536),
    (0, 1, 0, 104, 1850),
    (0, 2, 0, 246, 32178),
    (0, 3, 0, 256, 65536),
    (1, 1, 0, 104, 1850),
    (2, 1, 0, 158, 3590),
    (3, 1, 0, 186, 6170),
    (1, 2, 0, 246, 32178),
    (1, 3, 0, 256, 65536),
    (2, 2, 0, 256, 53278),
    (0, 0, 1, 254, 57558),
    (0, 0, 2, 256, 65534),
];

fn main() {
    println!("Table III: numbers N_3 and N_4 of realizable 3-/4-input functions");
    println!(
        "{:>5} {:>6} {:>6} | {:>5} {:>9} {:>5} | {:>6} {:>9} {:>5} | {:>9}",
        "k_pre", "k_post", "k_TEBE", "N_3", "paper", "ok", "N_4", "paper", "ok", "time"
    );
    let mut mismatches = 0;
    for &(kp, ko, kt, p3, p4) in ROWS {
        let mk = |n: u8| {
            CensusConfig::new(n)
                .with_pre(kp)
                .with_post(ko.saturating_sub(1))
                .with_tebe(kt)
        };
        let t = Instant::now();
        let n3 = census(&mk(3));
        let n4 = census(&mk(4));
        let dt = t.elapsed();
        let ok3 = n3 == p3;
        let ok4 = n4 == p4;
        if !ok3 || !ok4 {
            mismatches += 1;
        }
        println!(
            "{kp:>5} {ko:>6} {kt:>6} | {n3:>5} {p3:>9} {:>5} | {n4:>6} {p4:>9} {:>5} | {dt:>9.2?}",
            if ok3 { "OK" } else { "DIFF" },
            if ok4 { "OK" } else { "DIFF" },
        );
    }
    println!(
        "\ntotal # functions: 256 (n=3), 65536 (n=4); rows mismatching the paper: {mismatches}"
    );
}
