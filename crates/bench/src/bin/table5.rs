//! Reproduces the paper's Table V: mixed-mode adders against published
//! memristive adder designs.
//!
//! The literature rows are citations recorded in
//! [`mm_bench::literature`]; the "Ours" row is synthesized live at the
//! paper's Table IV budgets (falling back to the paper's printed values,
//! marked `†`, when the `--budget` limit strikes — e.g. the 3-bit adder,
//! which took the paper 6.7 hours).

use mm_bench::literature::{AdderDesign, PAPER_MM_ADDERS, TABLE5_DESIGNS};
use mm_bench::table4::{benchmarks, run_row, RowStatus};

fn fmt(cost: Option<(u32, u32)>) -> String {
    match cost {
        Some((st, dev)) => format!("{st:>5} {dev:>5}"),
        None => format!("{:>5} {:>5}", "-", "-"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, budget) = mm_bench::parse_budget(&args, 120);

    println!("Table V: comparison of MM adders with published adder designs");
    println!(
        "{:<6} {:<46} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "ref", "design", "St(1)", "Dev1", "St(2)", "Dev2", "St(3)", "Dev3"
    );
    for AdderDesign {
        reference,
        description,
        costs,
    } in TABLE5_DESIGNS
    {
        println!(
            "{reference:<6} {description:<46} {} {} {}",
            fmt(costs[0]),
            fmt(costs[1]),
            fmt(costs[2])
        );
    }

    // Synthesize our MM adders live.
    let mut ours = Vec::new();
    let set = benchmarks();
    for (i, bench) in set.iter().take(3).enumerate() {
        let result = run_row(bench, false, budget);
        match (result.status, result.metrics) {
            (RowStatus::Reproduced, Some(m)) => {
                ours.push(format!("{:>5} {:>5}", m.n_steps, m.n_devices_structural));
            }
            _ => {
                let (st, dev) = PAPER_MM_ADDERS[i];
                ours.push(format!("{st:>4}† {dev:>4}†"));
            }
        }
    }
    println!(
        "{:<6} {:<46} {} {} {}",
        "Ours", "mixed-mode, SAT-synthesized (this run)", ours[0], ours[1], ours[2]
    );
    println!("\n† paper value (live synthesis exceeded --budget; raise it to re-derive)");
    println!("note: [18]/[20] use IMPLY gates needing fewer devices per gate than the");
    println!("3-device MAGIC R-op assumed here (paper, §IV).");
}
