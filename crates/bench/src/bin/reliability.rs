//! Extension experiment backing the paper's motivating reliability claims
//! (§I, §II-B): under device-to-device and cycle-to-cycle variation,
//! stateful R-ops fail more often than V-ops, and cascaded R-ops fail more
//! often still.
//!
//! Sweeps the variation corner and prints Monte-Carlo error rates for a
//! single V-op, a single MAGIC NOR, and NOR cascades of increasing depth.

use mm_device::{monte_carlo, ElectricalParams, Variability};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trials: u32 = if mm_bench::has_full_flag(&args) {
        20_000
    } else {
        4_000
    };
    let max_depth = 5;

    println!("Reliability under variation ({trials} Monte-Carlo trials per cell)");
    println!(
        "{:>8} {:>8} | {:>9} {:>9} | cascade err (cumulative, depth 1..5)",
        "d2d σ", "c2c σ", "V-op err", "R-op err"
    );
    for (d2d, c2c) in [
        (0.0, 0.0),
        (0.05, 0.02),
        (0.15, 0.05),
        (0.25, 0.08),
        (0.4, 0.1),
        (0.5, 0.0),
        (0.0, 0.15),
    ] {
        let params = ElectricalParams::bfo().with_variability(Variability {
            d2d_sigma: d2d,
            c2c_sigma: c2c,
        });
        let v = monte_carlo::v_op_error_rate(params, trials, 1);
        let r = monte_carlo::r_op_error_rate(params, trials, 1);
        let casc = monte_carlo::cascade_cumulative_error_rates(params, max_depth, trials, 1);
        let casc_str: Vec<String> = casc.iter().map(|e| format!("{:.4}", e)).collect();
        println!(
            "{d2d:>8.2} {c2c:>8.2} | {v:>9.4} {r:>9.4} | {}",
            casc_str.join("  ")
        );
    }
    println!("\nexpected shape (paper §I/§II-B): V-op column ≤ R-op column; cascade");
    println!("columns non-decreasing with depth; pure D2D (c2c = 0) leaves V-ops at 0.");
}
