//! Reproduces the paper's Table II: 4-input AND, NAND, OR and NOR realized
//! simultaneously by V-ops only on a line array with a shared bottom
//! electrode.
//!
//! The paper presents hand-derived schedules; here the SAT synthesizer
//! re-derives them (N_R = 0, N_L = 4, N_VS = 5) and the state evolution of
//! every leg is printed in the paper's format.

use mm_boolfn::{generators, MultiOutputFn};
use mm_sat::Budget;
use mm_synth::{EncodeOptions, SynthSpec, Synthesizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, budget) = mm_bench::parse_budget(&args, 300);

    let f = MultiOutputFn::new(
        "table2",
        vec![
            generators::and_gate(4)
                .output(0)
                .expect("single output")
                .clone(),
            generators::nand_gate(4)
                .output(0)
                .expect("single output")
                .clone(),
            generators::or_gate(4)
                .output(0)
                .expect("single output")
                .clone(),
            generators::nor_gate(4)
                .output(0)
                .expect("single output")
                .clone(),
        ],
    )
    .expect("four 4-input outputs")
    .with_output_names(["f1=AND4", "f2=NAND4", "f3=OR4", "f4=NOR4"]);

    println!("Table II: V-op-only realization of 4-input AND/NAND/OR/NOR");
    println!("(shared BE across all four legs; re-derived by SAT, not copied)\n");

    let spec = SynthSpec::mixed_mode(&f, 0, 4, 5)
        .expect("valid spec")
        .with_options(EncodeOptions::recommended());
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_time(budget));
    let outcome = synth
        .run(&spec)
        .expect("encoding Table II spec never fails");
    let Some(circuit) = outcome.circuit() else {
        println!("budget exhausted or unrealizable — rerun with a larger --budget");
        return;
    };
    println!(
        "synthesized in {:.2?} ({} vars, {} clauses)\n",
        outcome.total_time(),
        outcome.encode_stats.n_vars,
        outcome.encode_stats.n_clauses
    );

    // Print per-leg schedules and state evolution, paper-style. The solver
    // is free to permute which leg realizes which gate; the tap list below
    // gives the association.
    for (t, leg) in circuit.legs().iter().enumerate() {
        println!("leg V{}:", t + 1);
        println!("  s0      {}", "0".repeat(16));
        let traj = circuit.leg_trajectory(t);
        for (k, op) in leg.ops().iter().enumerate() {
            println!(
                "  TE={:<8} BE={:<8} -> s{} = {}",
                op.te.to_string(),
                op.be.to_string(),
                k + 1,
                traj[k]
            );
        }
        println!();
    }
    for (i, (&o, name)) in circuit.outputs().iter().zip(f.output_names()).enumerate() {
        println!(
            "output {} ({name}) taps {o}: {}",
            i + 1,
            circuit.signal_value(o).to_bitstring()
        );
    }
    let ok = circuit.implements(&f);
    println!(
        "verified against the gate truth tables: {}",
        if ok { "OK" } else { "MISMATCH" }
    );
    println!("\npaper comparison: the paper's hand schedules use 5 steps (AND, NOR)");
    println!("and 4 steps (NAND, OR) padded by dummy cycles; any SAT solution at");
    println!("N_VS = 5 with shared BE is an equally valid realization.");
}
