//! Reproduces the paper's Fig. 1: the optimal mixed-mode GF(2²)
//! multiplier — 18 V-ops in 6 legs of 3 steps, 4 MAGIC NOR R-ops,
//! 10 devices, 7 compute steps.
//!
//! The exact gate-level solution is not unique (any satisfying assignment
//! of Φ(f_GFMUL, 18, 4) is a valid Fig. 1); the printed circuit is this
//! run's witness, verified against the GF(2²) multiplication table.
//! Pass `--dot` to emit Graphviz instead of text.

use mm_boolfn::generators;
use mm_sat::Budget;
use mm_synth::{EncodeOptions, SynthSpec, Synthesizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, budget) = mm_bench::parse_budget(&args, 300);
    let dot = rest.iter().any(|a| a == "--dot");

    let f = generators::gf22_multiplier();
    let spec = SynthSpec::mixed_mode(&f, 4, 6, 3)
        .expect("Fig. 1 budgets are valid")
        .with_options(EncodeOptions::recommended());
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_time(budget));
    let outcome = synth.run(&spec).expect("encoding never fails here");
    let Some(circuit) = outcome.circuit() else {
        eprintln!("budget exhausted — rerun with a larger --budget");
        std::process::exit(1);
    };

    if dot {
        print!("{}", circuit.to_dot());
        return;
    }

    println!("Fig. 1: mixed-mode GF(2^2) multiplier, Φ(f_GFMUL, 18, 4)");
    println!(
        "synthesized in {:.2?} ({} vars, {} clauses)\n",
        outcome.total_time(),
        outcome.encode_stats.n_vars,
        outcome.encode_stats.n_clauses
    );
    print!("{}", circuit.to_text());
    let m = circuit.metrics();
    println!(
        "\nmetrics: N_R={} N_L={} N_VS={} N_St={} N_Dev={} (paper: 4/6/3/7/10)",
        m.n_rops, m.n_legs, m.n_vsteps, m.n_steps, m.n_devices_structural
    );
    println!(
        "verified: {}",
        if circuit.implements(&f) {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
