//! Extension experiment for the paper's future work (§VI): how much
//! latency do "potentially parallel R-ops" on a 2D crossbar buy over the
//! 1D line array?
//!
//! For each benchmark circuit the harness reports the line-array step
//! count (`N_VS + N_R`) against the crossbar bound (`N_VS + depth of the
//! R-op DAG`), and validates the crossbar device model by executing the
//! GF(2²) multiplier schedule inside one crossbar column for every input.

use mm_bench::table4::{benchmarks, run_row, RowStatus};
use mm_circuit::{parallel, Schedule};
use mm_device::Crossbar;
use mm_synth::heuristic;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, budget) = mm_bench::parse_budget(&args, 120);

    println!("Crossbar extension: serialized vs parallel R-op latency");
    println!(
        "{:<18} {:<10} {:>4} {:>6} {:>11} {:>14} {:>8}",
        "circuit", "source", "N_R", "depth", "line N_St", "crossbar N_St", "speedup"
    );
    for bench in benchmarks() {
        // Prefer the exactly synthesized circuit; fall back to the
        // heuristic mapper when the SAT budget expires.
        let (circuit, source) = match run_row(&bench, false, budget) {
            r if r.status == RowStatus::Reproduced => {
                // Re-synthesize to get the circuit itself (run_row returns
                // metrics only); cheap relative to the solve already done.
                let spec = mm_synth::SynthSpec::mixed_mode(
                    &bench.function,
                    bench.paper_mm.n_rops,
                    bench.paper_mm.n_legs,
                    bench.paper_mm.n_vsteps,
                )
                .expect("valid")
                .with_options(mm_synth::EncodeOptions::recommended());
                let outcome = mm_synth::Synthesizer::new()
                    .with_budget(mm_sat::Budget::new().with_max_time(budget))
                    .run(&spec)
                    .expect("runs");
                match outcome.result {
                    mm_synth::SynthResult::Realizable(c) => (c, "optimal"),
                    _ => (heuristic::map(&bench.function).expect("maps"), "heuristic"),
                }
            }
            _ => (heuristic::map(&bench.function).expect("maps"), "heuristic"),
        };
        let m = circuit.metrics();
        let depth = parallel::crossbar_rop_depth(&circuit);
        let line = m.n_steps;
        let xbar = parallel::crossbar_steps_bound(&circuit);
        println!(
            "{:<18} {:<10} {:>4} {:>6} {:>11} {:>14} {:>7.2}x",
            bench.name,
            source,
            m.n_rops,
            depth,
            line,
            xbar,
            line as f64 / xbar as f64
        );
    }

    // Device-model validation: run the GF(2^2) multiplier inside a crossbar
    // column for every input.
    let f = mm_boolfn::generators::gf22_multiplier();
    let circuit = heuristic::map(&f).expect("maps");
    let schedule = Schedule::compile(&circuit).expect("schedulable");
    let mut ok = true;
    for x in 0..16u32 {
        let mut xbar = Crossbar::ideal(schedule.n_cells(), 2);
        let got = schedule.execute_on_crossbar(x, &mut xbar, 0);
        let want: Vec<bool> = (0..2)
            .map(|i| f.output(i).expect("two outputs").eval(x))
            .collect();
        if got != want {
            ok = false;
        }
    }
    println!(
        "\ncrossbar column executes the GF(2^2) multiplier for all 16 inputs: {}",
        if ok { "OK" } else { "MISMATCH" }
    );
    println!("(the bound assumes free operand routing; realizing it costs copy cycles —");
    println!(" the 'new complexities' the paper anticipates)");
}
