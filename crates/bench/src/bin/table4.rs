//! Reproduces the paper's Table IV: optimal synthesis results for
//! mixed-mode (MM) and R-only circuits.
//!
//! For every benchmark the harness solves `Φ(f, N_V, N_R)` at the paper's
//! reported optimum and — time permitting — re-proves optimality by
//! showing UNSAT at the next smaller budgets. Rows whose paper runtime is
//! hours (SLIME 5 on a 16-core Ryzen 9 with 128 GB RAM) are attempted
//! under the `--budget` limit and reported as `budget exceeded` when the
//! limit strikes; pass a larger `--budget <seconds>` (and `--full` to also
//! attempt the R-only optimality proofs the paper itself could not finish).

use mm_bench::table4::{benchmarks, check_optimality, run_row, RowStatus};

fn status_str(s: RowStatus) -> &'static str {
    match s {
        RowStatus::Reproduced => "OK",
        RowStatus::Contradiction => "CONTRADICTS",
        RowStatus::BudgetExceeded => "budget",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, budget) = mm_bench::parse_budget(&args, 120);
    let full = mm_bench::has_full_flag(&rest);

    println!(
        "Table IV: optimal synthesis, MM vs R-only (budget {budget:?}/call{})",
        if full { ", --full" } else { "" }
    );
    println!(
        "{:<18} {:<7} {:>3} {:>3} {:>4} {:>5} {:>5} {:>8} {:>9} {:>9} | {:>9} {:>8}",
        "circuit",
        "mode",
        "N_R",
        "N_L",
        "N_VS",
        "N_St",
        "N_Dev",
        "vars",
        "clauses",
        "T[s]",
        "paperT[s]",
        "status"
    );

    for bench in benchmarks() {
        for r_only in [false, true] {
            let paper = if r_only {
                &bench.paper_r_only
            } else {
                &bench.paper_mm
            };
            let result = run_row(&bench, r_only, budget);
            let (n_st, n_dev) = match &result.metrics {
                Some(m) => (m.n_steps.to_string(), m.n_devices_structural.to_string()),
                None => ("-".into(), "-".into()),
            };
            println!(
                "{:<18} {:<7} {:>3} {:>3} {:>4} {:>5} {:>5} {:>8} {:>9} {:>9.2} | {:>9} {:>8}",
                bench.name,
                if r_only { "R-only" } else { "MM" },
                format!(
                    "{}{}",
                    if paper.upper_bound_only { "<=" } else { "" },
                    paper.n_rops
                ),
                paper.n_legs,
                paper.n_vsteps,
                n_st,
                n_dev,
                result.n_vars,
                result.n_clauses,
                result.time.as_secs_f64(),
                paper.time_s,
                status_str(result.status),
            );
        }
        // Optimality certificates for the MM row.
        if full || bench.paper_mm.time_s <= 10.0 {
            let (steps, rops) = check_optimality(&bench, budget);
            println!(
                "{:<18} optimality: UNSAT at N_VS-1: {:<12} UNSAT at N_R-1: {}",
                "",
                status_str(steps),
                status_str(rops)
            );
        }
    }

    println!("\nShape check (the paper's 3-5x claim): MM rows must beat R-only rows");
    println!("on both N_St and N_Dev for every circuit where both rows solved.");
}
