//! Extension experiment for the paper's endurance discussion (§III):
//! "for technologies with low endurance, V-ops are problematic because, in
//! the worst case, every V-op switches the cell (in practice, many cells
//! will retain their old values)".
//!
//! For each benchmark the harness compares the write-pulse and
//! actual-switch counts of the mixed-mode circuit against the R-only-style
//! heuristic baseline, and reports the switch efficiency (switches per
//! pulse) that backs the paper's parenthetical.

use mm_bench::table4::benchmarks;
use mm_circuit::{ActivityReport, Schedule};
use mm_synth::heuristic;

fn main() {
    println!("Endurance analysis: write pulses and state switches per execution");
    println!("(averaged over all 2^n inputs; heuristic-mapped circuits)");
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>10} {:>14}",
        "circuit", "cells", "pulses/run", "switch/run", "eff.", "hottest cell"
    );
    for bench in benchmarks() {
        let circuit = heuristic::map(&bench.function).expect("maps");
        let schedule = Schedule::compile(&circuit).expect("schedulable");
        let report = ActivityReport::analyze(&schedule);
        let runs = f64::from(1u32 << bench.function.n_inputs());
        let (hot_cell, hot_pulses) = report.hottest_cell().expect("non-empty");
        println!(
            "{:<18} {:>6} {:>12.2} {:>12.2} {:>10.3} {:>8} ({:.1}/run)",
            bench.name,
            schedule.n_cells(),
            report.total_write_pulses() as f64 / runs,
            report.switches_per_run(),
            report.switch_efficiency(),
            hot_cell,
            hot_pulses as f64 / runs,
        );
    }
    println!("\nexpected shape: switch efficiency well below 1 — most write pulses");
    println!("hit cells already in the target state, as the paper observes.");
}
