//! Extension experiment for the paper's yield motivation (§I): discrete
//! line arrays allow devices to be "easily replaced after manufacturing or
//! upon failure", and a placement step can route around known-dead cells.
//!
//! Monte-Carlo over per-cell defect probability: the probability that the
//! GF(2²) multiplier still computes correctly on (a) a naive placement
//! that uses cells 0..N as-is, versus (b) a yield-aware placement on an
//! array with spare cells that avoids the defects.

use mm_boolfn::generators;
use mm_circuit::Schedule;
use mm_device::{DeviceState, LineArray};
use mm_synth::heuristic;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trials: u32 = if mm_bench::has_full_flag(&args) {
        2000
    } else {
        400
    };

    let f = generators::gf22_multiplier();
    let circuit = heuristic::map(&f).expect("maps");
    let schedule = Schedule::compile(&circuit).expect("schedulable");
    let n_used = schedule.n_cells();
    let spares = 6;
    let array_size = n_used + spares;

    println!("Yield repair: GF(2^2) multiplier, {n_used} logical cells, {spares} spares");
    println!(
        "{:>10} | {:>14} {:>16} {:>14}",
        "p(defect)", "naive works", "placed works", "unplaceable"
    );
    for &p_defect in &[0.01f64, 0.02, 0.05, 0.1, 0.2] {
        let mut naive_ok = 0u32;
        let mut placed_ok = 0u32;
        let mut unplaceable = 0u32;
        let mut rng = SmallRng::seed_from_u64((p_defect * 1e6) as u64);
        for t in 0..trials {
            // Fabricate an array with random stuck cells.
            let mut defects: Vec<(usize, DeviceState)> = Vec::new();
            for i in 0..array_size {
                if rng.gen_bool(p_defect) {
                    let stuck = if rng.gen_bool(0.5) {
                        DeviceState::Lrs
                    } else {
                        DeviceState::Hrs
                    };
                    defects.push((i, stuck));
                }
            }
            let dead: Vec<usize> = defects.iter().map(|&(i, _)| i).collect();

            // Naive: use cells 0..n_used regardless of defects.
            let naive_works = (0..16u32).all(|x| {
                let mut array = LineArray::ideal_with_faults(n_used, &clip(&defects, n_used));
                let out = schedule.execute(x, &mut array);
                out_word(&out) == f.eval(x)
            });
            if naive_works {
                naive_ok += 1;
            }

            // Yield-aware: re-place onto working cells if enough survive.
            match schedule.place_avoiding(array_size, &dead) {
                Ok(placed) => {
                    let works = (0..16u32).all(|x| {
                        let mut array = LineArray::ideal_with_faults(array_size, &defects);
                        let out = placed.execute(x, &mut array);
                        out_word(&out) == f.eval(x)
                    });
                    if works {
                        placed_ok += 1;
                    } else {
                        eprintln!("trial {t}: placed schedule failed unexpectedly");
                    }
                }
                Err(_) => unplaceable += 1,
            }
        }
        println!(
            "{:>10.2} | {:>13.1}% {:>15.1}% {:>13.1}%",
            p_defect,
            100.0 * f64::from(naive_ok) / f64::from(trials),
            100.0 * f64::from(placed_ok) / f64::from(trials),
            100.0 * f64::from(unplaceable) / f64::from(trials),
        );
    }
    println!("\nexpected shape: placed yield ≈ P(≥{n_used} of {array_size} cells alive),");
    println!("far above the naive yield P(all {n_used} used cells alive).");
}

fn out_word(out: &[bool]) -> u32 {
    out.iter().fold(0, |acc, &b| (acc << 1) | u32::from(b))
}

fn clip(defects: &[(usize, DeviceState)], n: usize) -> Vec<(usize, DeviceState)> {
    defects.iter().copied().filter(|&(i, _)| i < n).collect()
}
