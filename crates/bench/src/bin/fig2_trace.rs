//! Reproduces the paper's Fig. 2: the electrical execution record of the
//! GF(2²) multiplier on a 10-cell BiFeO₃ line array for input
//! `x1 x2 x3 x4 = 1011`.
//!
//! The paper measured a physical array with a Keithley 2400 source meter;
//! here the synthesized circuit is compiled to a cycle-accurate schedule
//! and executed on the simulated BFO array, producing the same
//! observables: per-cell resistance per cycle, applied TE/BE voltages,
//! |I| across each cell, and the final readouts (expected:
//! out1 = 0, out2 = 1).

use mm_boolfn::generators;
use mm_circuit::Schedule;
use mm_device::{ElectricalParams, LineArray, Variability};
use mm_sat::Budget;
use mm_synth::{EncodeOptions, SynthSpec, Synthesizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, budget) = mm_bench::parse_budget(&args, 300);
    let noisy = rest.iter().any(|a| a == "--noisy");

    let f = generators::gf22_multiplier();
    let spec = SynthSpec::mixed_mode(&f, 4, 6, 3)
        .expect("Fig. 1 budgets are valid")
        .with_options(EncodeOptions::recommended());
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_time(budget));
    let outcome = synth.run(&spec).expect("encoding never fails here");
    let Some(circuit) = outcome.circuit() else {
        eprintln!("budget exhausted — rerun with a larger --budget");
        std::process::exit(1);
    };
    let schedule = Schedule::compile(circuit).expect("decoded circuits are schedulable");

    // Paper input: x1 x2 x3 x4 = 1011 (a = 10₂ = x, b = 11₂ = x+1 in GF(4)).
    let x: u32 = 0b1011;
    let expected = f.eval(x);
    let params = if noisy {
        ElectricalParams::bfo().with_variability(Variability::LOW)
    } else {
        ElectricalParams::bfo()
    };
    let mut array = LineArray::bfo(schedule.n_cells(), params, 2025);
    let outputs = schedule.execute(x, &mut array);

    println!("Fig. 2: electrical execution of the GF(2^2) multiplier, input x = 1011");
    println!(
        "array: {} BFO cells ({} legs + {} R-op outputs), {}\n",
        schedule.n_cells(),
        circuit.legs().len(),
        circuit.rops().len(),
        if noisy {
            "LOW variability corner"
        } else {
            "nominal devices"
        }
    );
    print!("{}", array.trace().to_table());
    println!();
    for (i, out) in outputs.iter().enumerate() {
        println!("readout out{} = {}", i + 1, u8::from(*out));
    }
    let want: Vec<bool> = (0..f.n_outputs())
        .map(|i| (expected >> (f.n_outputs() - 1 - i)) & 1 == 1)
        .collect();
    println!(
        "expected (GF multiplication table): out1 = {}, out2 = {} -> {}",
        u8::from(want[0]),
        u8::from(want[1]),
        if outputs == want {
            "MATCH (paper reads 0 / 1)"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "\ncycle count: {} total ({} V-op steps + {} R-ops + readouts; paper: 9 incl. readouts)",
        array.trace().len(),
        circuit.metrics().n_vsteps,
        circuit.metrics().n_rops
    );
}
