//! Emits the performance-trajectory report (`BENCH_<n>.json`).
//!
//! Runs a fixed probe set — serial synthesis ladders with telemetry
//! attached, a seeded fuzz sweep, and a Monte-Carlo device sweep — and
//! folds the results into a [`BenchReport`]: deterministic workload
//! counters (solver conflicts, CNF sizes, synthesis-call and rung counts,
//! degraded-scenario counts) plus advisory wall-clock timings. CI diffs
//! the emitted file against the committed baseline with
//! `scripts/bench_diff.py`.
//!
//! ```text
//! bench_report --pr 7 --out BENCH_7.json
//! ```

use std::sync::Arc;
use std::time::Instant;

use mm_bench::report::{BenchReport, Direction};
use mm_boolfn::{generators, MultiOutputFn};
use mm_device::ElectricalParams;
use mm_service::{Attempt, AttemptResult, Engine, JobRequest, ResultCache};
use mm_synth::fuzz::{run_fuzz, FuzzConfig};
use mm_synth::optimize::minimize_mixed_mode;
use mm_synth::{EncodeOptions, Synthesizer};
use mm_telemetry::{MemorySink, RunReport, Telemetry};

/// Fuzz probe parameters: small enough to finish in seconds, large enough
/// to hit every scenario regime (budget regimes, fault plans, repair).
const FUZZ_SEED: u64 = 42;
const FUZZ_BUDGET: usize = 20;

/// Monte-Carlo probe size.
const MC_TRIALS: u32 = 256;
const MC_SEED: u64 = 7;

fn ladder_probe(report: &mut BenchReport, tag: &str, f: &MultiOutputFn, max_rops: usize) {
    let sink = Arc::new(MemorySink::new());
    let synth = Synthesizer::new().with_telemetry(Telemetry::new(sink.clone()));
    let started = Instant::now();
    let out = minimize_mixed_mode(&synth, f, max_rops, 3, false, &EncodeOptions::default())
        .expect("probe ladder must synthesize");
    let elapsed = started.elapsed();
    assert!(out.proven_optimal, "probe ladder must prove optimality");
    let run = RunReport::from_events(&sink.snapshot());

    let conflicts: u64 = run.rungs.iter().map(|r| r.conflicts).sum();
    let vars: u64 = out.calls.iter().map(|c| c.n_vars as u64).max().unwrap_or(0);
    let clauses: u64 = out
        .calls
        .iter()
        .map(|c| c.n_clauses as u64)
        .max()
        .unwrap_or(0);
    let lower = Direction::Lower;
    report.push(
        format!("ladder_{tag}_conflicts"),
        conflicts as f64,
        "count",
        lower,
        true,
    );
    report.push(
        format!("ladder_{tag}_max_vars"),
        vars as f64,
        "count",
        lower,
        true,
    );
    report.push(
        format!("ladder_{tag}_max_clauses"),
        clauses as f64,
        "count",
        lower,
        true,
    );
    report.push(
        format!("ladder_{tag}_calls"),
        out.calls.len() as f64,
        "count",
        lower,
        true,
    );
    report.push(
        format!("ladder_{tag}_time_us"),
        elapsed.as_micros() as f64,
        "us",
        lower,
        false,
    );
}

fn fuzz_probe(report: &mut BenchReport) {
    let started = Instant::now();
    let summary = run_fuzz(
        FUZZ_SEED,
        FUZZ_BUDGET,
        None,
        &FuzzConfig::default(),
        |_, _| {},
    );
    let elapsed = started.elapsed();
    assert!(
        summary.violations.is_empty(),
        "fuzz probe found violations: {:?}",
        summary.violations
    );
    report.push(
        "fuzz_seed42_degraded",
        summary.degraded as f64,
        "count",
        Direction::None,
        true,
    );
    report.push(
        "fuzz_seed42_scenarios_per_s",
        summary.scenarios as f64 / elapsed.as_secs_f64(),
        "rate",
        Direction::Higher,
        false,
    );
    report.push(
        "fuzz_seed42_time_us",
        elapsed.as_micros() as f64,
        "us",
        Direction::Lower,
        false,
    );
}

fn device_probe(report: &mut BenchReport) {
    let started = Instant::now();
    let v_rate =
        mm_device::monte_carlo::v_op_error_rate(ElectricalParams::bfo(), MC_TRIALS, MC_SEED);
    let r_rate =
        mm_device::monte_carlo::r_op_error_rate(ElectricalParams::bfo(), MC_TRIALS, MC_SEED);
    let elapsed = started.elapsed();
    report.push(
        "mc_vop_error_rate_bfo",
        v_rate,
        "rate",
        Direction::Lower,
        true,
    );
    report.push(
        "mc_rop_error_rate_bfo",
        r_rate,
        "rate",
        Direction::Lower,
        true,
    );
    report.push(
        "mc_sweep_time_us",
        elapsed.as_micros() as f64,
        "us",
        Direction::Lower,
        false,
    );
}

/// The service-cache probe: one deterministic minimize request served
/// three ways — cold miss, warm hit, and warm hit with `--paranoid`
/// device re-execution. Deterministic gates: a hit must not invoke the
/// solver, and a hit must serve the same circuit step count as the cold
/// solve. The timings are advisory wall-clock.
fn service_cache_probe(report: &mut BenchReport) {
    let dir = std::env::temp_dir().join(format!("bench_service_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let line = r#"{"op":"minimize","id":"bench","tables":["0110"],"max_rops":3,"max_steps":3}"#;
    let request = JobRequest::parse(line).expect("probe request parses");
    let attempt = Attempt {
        index: 0,
        max_conflicts: None,
        backoff: std::time::Duration::ZERO,
    };
    let run = |engine: &Arc<Engine>| {
        let started = Instant::now();
        let response = match engine.run_attempt("bench", &request.op, &attempt) {
            AttemptResult::Done(r) => r,
            AttemptResult::Retry { reason, .. } => {
                panic!("probe request must be conclusive, got retry: {reason}")
            }
        };
        (response, started.elapsed())
    };

    let (cache, _) = ResultCache::open(&dir).expect("probe cache opens");
    let engine = Arc::new(Engine::new(1).with_cache(cache));
    let (cold, cold_t) = run(&engine);
    let (warm, warm_t) = run(&engine);
    drop(engine);
    let (cache, recovery) = ResultCache::open(&dir).expect("probe cache reopens");
    assert_eq!(recovery.quarantined, 0, "probe cache must survive reopen");
    let engine = Arc::new(Engine::new(1).with_cache(cache.with_paranoid(true)));
    let (paranoid, paranoid_t) = run(&engine);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(cold.cache.map(|c| c.as_str()), Some("miss"));
    assert_eq!(warm.cache.map(|c| c.as_str()), Some("hit"));
    assert_eq!(paranoid.cache.map(|c| c.as_str()), Some("hit"));
    let steps = |r: &mm_service::JobResponse| {
        r.metrics
            .as_ref()
            .map(|m| m.n_steps as f64)
            .expect("probe solve yields a circuit")
    };
    assert_eq!(steps(&warm), steps(&cold), "hit must match the cold solve");

    let lower = Direction::Lower;
    report.push(
        "service_cache_hit_solver_calls",
        warm.solver_calls.unwrap_or(u64::MAX) as f64,
        "count",
        lower,
        true,
    );
    report.push(
        "service_cache_cold_solver_calls",
        cold.solver_calls.unwrap_or(0) as f64,
        "count",
        lower,
        true,
    );
    report.push("service_cache_steps", steps(&cold), "count", lower, true);
    report.push(
        "service_cache_cold_us",
        cold_t.as_micros() as f64,
        "us",
        lower,
        false,
    );
    report.push(
        "service_cache_hit_us",
        warm_t.as_micros() as f64,
        "us",
        lower,
        false,
    );
    report.push(
        "service_cache_paranoid_hit_us",
        paranoid_t.as_micros() as f64,
        "us",
        lower,
        false,
    );
}

/// Inprocessing probe: the 1-bit adder's warm mixed-mode ladder run
/// serially with inprocessing on and off. The inprocessing activity
/// counters and per-run conflict totals are deterministic (serial warm
/// ladder, canonical diversity); the on/off wall-clock ratio is the
/// advisory speedup headline. Both runs must agree on the verdict — that
/// is the same invariant `tests/inprocess_differential.rs` locks down,
/// re-checked here on the exact workload the trajectory tracks.
fn inprocess_probe(report: &mut BenchReport) {
    use mm_sat::Budget;

    let f = generators::ripple_adder(1);
    let run = |inprocess: bool| {
        let sink = Arc::new(MemorySink::new());
        let synth = Synthesizer::new()
            .with_incremental(true)
            .with_budget(Budget::new().with_inprocess(inprocess))
            .with_telemetry(Telemetry::new(sink.clone()));
        let started = Instant::now();
        let out = minimize_mixed_mode(&synth, &f, 4, 4, true, &EncodeOptions::default())
            .expect("probe ladder must synthesize");
        let elapsed = started.elapsed();
        assert!(out.proven_optimal, "probe ladder must prove optimality");
        (out, RunReport::from_events(&sink.snapshot()), elapsed)
    };
    let (on, on_run, on_t) = run(true);
    let (off, off_run, off_t) = run(false);
    let metrics = |o: &mm_synth::optimize::OptimizeReport| {
        let b = o.best.as_ref().expect("adder1 is MM-realizable");
        (b.metrics().n_rops, b.metrics().n_vsteps, b.metrics().n_legs)
    };
    assert_eq!(
        metrics(&on),
        metrics(&off),
        "inprocessing changed a verdict"
    );
    assert_eq!(
        off_run.counter("solver.inprocess.eliminated")
            + off_run.counter("solver.inprocess.subsumed")
            + off_run.counter("solver.inprocess.vivified"),
        0,
        "--no-inprocess run must not inprocess"
    );

    let none = Direction::None;
    report.push(
        "inprocess_adder1_eliminated",
        on_run.counter("solver.inprocess.eliminated") as f64,
        "count",
        none,
        true,
    );
    report.push(
        "inprocess_adder1_subsumed",
        on_run.counter("solver.inprocess.subsumed") as f64,
        "count",
        none,
        true,
    );
    report.push(
        "inprocess_adder1_vivified",
        on_run.counter("solver.inprocess.vivified") as f64,
        "count",
        none,
        true,
    );
    report.push(
        "inprocess_adder1_conflicts",
        on_run.counter("solver.conflicts") as f64,
        "count",
        Direction::Lower,
        true,
    );
    report.push(
        "noinprocess_adder1_conflicts",
        off_run.counter("solver.conflicts") as f64,
        "count",
        Direction::Lower,
        true,
    );
    report.push(
        "inprocess_adder1_time_us",
        on_t.as_micros() as f64,
        "us",
        Direction::Lower,
        false,
    );
    report.push(
        "inprocess_adder1_speedup",
        off_t.as_secs_f64() / on_t.as_secs_f64().max(f64::EPSILON),
        "ratio",
        Direction::Higher,
        false,
    );
}

/// Metrics-registry overhead probe: the hot-path cost the observability
/// layer adds to every job — one counter increment and one histogram
/// observation per attempt — plus a full Prometheus render with the
/// daemon's family set registered. The registered-family count is the
/// deterministic gate (it moves only when instrumentation is added or
/// removed); the per-op timings are advisory wall-clock.
fn metrics_overhead_probe(report: &mut BenchReport) {
    use mm_service::ServiceMetrics;
    use mm_telemetry::metrics::MetricsRegistry;

    let registry = Arc::new(MetricsRegistry::new());
    let _service = ServiceMetrics::register(registry.clone());
    let counter = registry.counter("bench_probe_total", "Overhead probe counter.");
    let histogram = registry.histogram("bench_probe_us", "Overhead probe histogram.");

    const OPS: u64 = 1_000_000;
    let started = Instant::now();
    for _ in 0..OPS {
        counter.inc();
    }
    let inc_ns = started.elapsed().as_nanos() as f64 / OPS as f64;
    let started = Instant::now();
    for i in 0..OPS {
        histogram.observe(i % 1_000_000);
    }
    let observe_ns = started.elapsed().as_nanos() as f64 / OPS as f64;
    assert_eq!(counter.get(), OPS, "probe counter must not drop increments");
    assert_eq!(
        histogram.count(),
        OPS,
        "probe histogram must not drop observations"
    );

    const RENDERS: u32 = 1_000;
    let started = Instant::now();
    let mut rendered_len = 0usize;
    for _ in 0..RENDERS {
        rendered_len = registry.render_prometheus().len();
    }
    let render_us = started.elapsed().as_micros() as f64 / f64::from(RENDERS);
    assert!(rendered_len > 0, "render must produce output");

    let families = match registry.to_value() {
        serde::Value::Object(fields) => fields
            .into_iter()
            .find(|(k, _)| k == "families")
            .map(|(_, v)| match v {
                serde::Value::Array(items) => items.len(),
                _ => 0,
            })
            .unwrap_or(0),
        _ => 0,
    };
    report.push(
        "metrics_overhead_families",
        families as f64,
        "count",
        Direction::None,
        true,
    );
    report.push(
        "metrics_overhead_counter_inc_ns",
        inc_ns,
        "ns",
        Direction::Lower,
        false,
    );
    report.push(
        "metrics_overhead_histogram_observe_ns",
        observe_ns,
        "ns",
        Direction::Lower,
        false,
    );
    report.push(
        "metrics_overhead_render_us",
        render_us,
        "us",
        Direction::Lower,
        false,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr: u64 = 0;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pr" => pr = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report --pr <n> [--out BENCH_<n>.json]");
                std::process::exit(2);
            }
        }
    }

    let mut report = BenchReport::new(pr);
    ladder_probe(&mut report, "xor2", &generators::xor_gate(2), 3);
    ladder_probe(&mut report, "maj3", &generators::majority_gate(3), 4);
    inprocess_probe(&mut report);
    fuzz_probe(&mut report);
    device_probe(&mut report);
    service_cache_probe(&mut report);
    metrics_overhead_probe(&mut report);

    let json = report.to_json().expect("bench report serializes");
    match out_path {
        Some(path) => {
            mm_telemetry::atomic_write(&path, format!("{json}\n")).expect("write bench report");
            eprintln!("wrote {path} ({} metrics)", report.metrics.len());
        }
        None => println!("{json}"),
    }
}
