//! Schema-versioned performance-trajectory reports (`BENCH_<n>.json`).
//!
//! Each PR lands one `BENCH_<n>.json` at the repo root: a flat list of
//! named metrics folded from two sources — wall-clock probe timings
//! measured by the `bench_report` binary, and *deterministic* workload
//! counters (solver conflicts, CNF sizes, call counts) extracted from
//! telemetry [`RunReport`](mm_telemetry::RunReport)s of the same probes.
//! CI diffs the candidate report against the committed baseline
//! (`scripts/bench_diff.py`): deterministic metrics gate the build when
//! they regress past a threshold in their bad direction; time metrics are
//! advisory, because container wall clocks are noisy.

use serde::{Deserialize, Serialize};

/// Version of the `BENCH_<n>.json` schema. Bump on incompatible change.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller values are better (times, conflicts, CNF sizes).
    Lower,
    /// Larger values are better (throughputs, coverage counts).
    Higher,
    /// Informational only; never gated.
    None,
}

/// One named measurement in a bench report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMetric {
    /// Stable metric name (diffed by name across reports).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label (`us`, `count`, `rate`).
    pub unit: String,
    /// Which way "better" points.
    pub direction: Direction,
    /// Whether the value is a deterministic function of the workload
    /// (seeded counters, CNF sizes) rather than a wall-clock sample.
    /// Only deterministic metrics gate CI; times are advisory.
    pub deterministic: bool,
}

/// A full performance-trajectory report for one PR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA_VERSION`] for reports built by this crate.
    pub schema_version: u64,
    /// PR number the report belongs to (the `<n>` in `BENCH_<n>.json`).
    pub pr: u64,
    /// Metrics, sorted by name so reports diff cleanly as text.
    pub metrics: Vec<BenchMetric>,
}

impl BenchReport {
    /// Creates an empty report for `pr`.
    pub fn new(pr: u64) -> Self {
        Self {
            schema_version: BENCH_SCHEMA_VERSION,
            pr,
            metrics: Vec::new(),
        }
    }

    /// Adds a metric row.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        value: f64,
        unit: &str,
        direction: Direction,
        deterministic: bool,
    ) {
        self.metrics.push(BenchMetric {
            name: name.into(),
            value,
            unit: unit.to_string(),
            direction,
            deterministic,
        });
    }

    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&BenchMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Sorts metrics by name and serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization error (not expected for this
    /// type).
    pub fn to_json(&self) -> Result<String, String> {
        let mut sorted = self.clone();
        sorted.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        serde_json::to_string_pretty(&sorted).map_err(|e| e.to_string())
    }

    /// Parses a report back from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a schema-version mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: Self = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench schema version {} (expected {})",
                report.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new(7);
        r.push("zeta_time_us", 123.0, "us", Direction::Lower, false);
        r.push("alpha_conflicts", 42.0, "count", Direction::Lower, true);
        r
    }

    #[test]
    fn roundtrips_through_json_sorted() {
        let r = sample();
        let text = r.to_json().unwrap();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.pr, 7);
        assert_eq!(back.metrics.len(), 2);
        // to_json sorts by name; first metric out is alpha_conflicts.
        assert_eq!(back.metrics[0].name, "alpha_conflicts");
        assert_eq!(back.metric("zeta_time_us").unwrap().value, 123.0);
        assert!(back.metric("alpha_conflicts").unwrap().deterministic);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let mut r = sample();
        r.schema_version = 99;
        let text = serde_json::to_string_pretty(&r).unwrap();
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
