//! Criterion benches for the fault-injection campaign engine: campaign
//! throughput across fault classes, and one full repair cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_boolfn::generators;
use mm_circuit::campaign::{run_campaign, CampaignConfig};
use mm_circuit::{DeviceState, FaultPlan, Schedule};
use mm_device::Variability;
use mm_synth::repair::{synthesize_with_repair, RepairConfig};
use mm_synth::{heuristic, SynthSpec, Synthesizer};

fn bench_fault_campaign(c: &mut Criterion) {
    let f = generators::gf22_multiplier();
    let circuit = heuristic::map(&f).expect("GF(2^2) maps");
    let schedule = Schedule::compile(&circuit)
        .expect("schedulable")
        .place_avoiding(32, &[])
        .expect("fits on 32 cells");
    let plans = vec![
        FaultPlan::named("control"),
        FaultPlan::named("stuck").with_stuck(0, DeviceState::Lrs),
        FaultPlan::named("transient").with_transient(1, 2),
        FaultPlan::named("noisy").with_variability(Variability::HIGH),
    ];

    let mut g = c.benchmark_group("fault_campaign");
    g.sample_size(10);
    g.bench_function("gf22_4plans_8trials", |b| {
        let config = CampaignConfig::default();
        b.iter(|| run_campaign(&schedule, &plans, &config).expect("in range"));
    });
    g.finish();

    let mut g = c.benchmark_group("repair");
    g.sample_size(10);
    g.bench_function("xor2_one_stuck_cell", |b| {
        let f = generators::xor_gate(2);
        let spec = SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid spec");
        let plans = vec![FaultPlan::named("stuck").with_stuck(0, DeviceState::Lrs)];
        let synth = Synthesizer::new();
        b.iter(|| {
            synthesize_with_repair(&synth, &spec, &plans, &RepairConfig::new(8))
                .expect("repairable")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fault_campaign);
criterion_main!(benches);
