//! Criterion benches for the Table III universality census.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_synth::universality::{census, CensusConfig};

fn bench_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("census");
    g.bench_function("n3_v_only", |b| b.iter(|| census(&CensusConfig::new(3))));
    g.bench_function("n4_v_only", |b| b.iter(|| census(&CensusConfig::new(4))));
    g.bench_function("n4_pre3", |b| {
        b.iter(|| census(&CensusConfig::new(4).with_pre(3)))
    });
    g.bench_function("n4_post1", |b| {
        b.iter(|| census(&CensusConfig::new(4).with_post(1)))
    });
    g.bench_function("n4_tebe1", |b| {
        b.iter(|| census(&CensusConfig::new(4).with_tebe(1)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_census
}
criterion_main!(benches);
