//! Criterion benches for the device substrate: line-array schedule
//! execution and Monte-Carlo reliability throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_boolfn::generators;
use mm_circuit::Schedule;
use mm_device::{monte_carlo, ElectricalParams, LineArray, Variability};
use mm_synth::heuristic;

fn bench_device(c: &mut Criterion) {
    let f = generators::gf22_multiplier();
    let circuit = heuristic::map(&f).expect("GF(2^2) maps");
    let schedule = Schedule::compile(&circuit).expect("schedulable");

    let mut g = c.benchmark_group("line_array");
    g.bench_function("gf22_execute_ideal", |b| {
        let mut array = LineArray::ideal(schedule.n_cells());
        b.iter(|| schedule.execute(0b1011, &mut array));
    });
    g.bench_function("gf22_execute_bfo_noisy", |b| {
        let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
        let mut array = LineArray::bfo(schedule.n_cells(), params, 7);
        b.iter(|| schedule.execute(0b1011, &mut array));
    });
    g.bench_function("gf22_full_verify_all_inputs", |b| {
        b.iter(|| schedule.verify(&f));
    });
    g.finish();

    let mut g = c.benchmark_group("monte_carlo");
    g.sample_size(10);
    g.bench_function("r_op_error_rate_1k", |b| {
        let params = ElectricalParams::bfo().with_variability(Variability::HIGH);
        b.iter(|| monte_carlo::r_op_error_rate(params, 1000, 3));
    });
    g.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
