//! Ablation benches over the encoding choices DESIGN.md calls out:
//! folded vs paper-faithful literal handling, the three exactly-one
//! encodings of the paper's mutex μ, shared-BE realizations, and symmetry
//! breaking.
//!
//! Each variant is measured end-to-end on the same instance so the
//! relative costs are directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_boolfn::generators;
use mm_sat::ExactlyOne;
use mm_synth::{EncodeMode, EncodeOptions, SharedBe, SynthSpec, Synthesizer};

fn bench_modes(c: &mut Criterion) {
    let f = generators::ripple_adder(1);
    let mut g = c.benchmark_group("encode_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("folded", EncodeMode::Folded),
        ("faithful", EncodeMode::Faithful),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                let spec = SynthSpec::mixed_mode(&f, 2, 3, 3)
                    .expect("valid")
                    .with_options(EncodeOptions {
                        mode,
                        ..EncodeOptions::recommended()
                    });
                Synthesizer::new().run(&spec).expect("runs")
            });
        });
    }
    g.finish();
}

fn bench_mutex(c: &mut Criterion) {
    let f = generators::ripple_adder(1);
    let mut g = c.benchmark_group("mutex_encoding");
    g.sample_size(10);
    for (name, mutex) in [
        ("pairwise", ExactlyOne::Pairwise),
        ("sequential", ExactlyOne::Sequential),
        ("commander", ExactlyOne::Commander),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mutex, |b, &mutex| {
            b.iter(|| {
                let spec = SynthSpec::mixed_mode(&f, 2, 3, 3)
                    .expect("valid")
                    .with_options(EncodeOptions {
                        mutex,
                        ..EncodeOptions::recommended()
                    });
                Synthesizer::new().run(&spec).expect("runs")
            });
        });
    }
    g.finish();
}

fn bench_shared_be_and_symmetry(c: &mut Criterion) {
    let f = generators::ripple_adder(1);
    let mut g = c.benchmark_group("shared_be");
    g.sample_size(10);
    for (name, shared_be) in [
        ("per_step_var", SharedBe::PerStepVar),
        ("equality_clauses", SharedBe::EqualityClauses),
        ("free", SharedBe::Free),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &shared_be,
            |b, &shared_be| {
                b.iter(|| {
                    let spec = SynthSpec::mixed_mode(&f, 2, 3, 3)
                        .expect("valid")
                        .with_options(EncodeOptions {
                            shared_be,
                            ..EncodeOptions::recommended()
                        });
                    Synthesizer::new().run(&spec).expect("runs")
                });
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("symmetry_breaking");
    g.sample_size(10);
    for (name, on) in [("on", true), ("off", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &on, |b, &on| {
            b.iter(|| {
                let spec = SynthSpec::mixed_mode(&f, 2, 3, 3)
                    .expect("valid")
                    .with_options(EncodeOptions {
                        symmetry_breaking: on,
                        ..EncodeOptions::default()
                    });
                Synthesizer::new().run(&spec).expect("runs")
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_modes,
    bench_mutex,
    bench_shared_be_and_symmetry
);
criterion_main!(benches);
