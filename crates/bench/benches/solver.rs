//! Criterion benches for the CDCL SAT solver substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_sat::{CnfFormula, Lit, Solver};

#[allow(clippy::needless_range_loop)] // h indexes a 2-D structure
fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_lit()).collect())
        .collect();
    for p in &vars {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
            }
        }
    }
    cnf
}

fn random_3sat(n_vars: usize, n_clauses: usize, seed: u64) -> CnfFormula {
    let mut state = seed;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut cnf = CnfFormula::new();
    let vars: Vec<Lit> = (0..n_vars).map(|_| cnf.new_lit()).collect();
    for _ in 0..n_clauses {
        let mut picked: Vec<usize> = Vec::new();
        while picked.len() < 3 {
            let v = (rng() % n_vars as u64) as usize;
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        cnf.add_clause(
            picked
                .iter()
                .map(|&v| if rng() % 2 == 0 { vars[v] } else { !vars[v] }),
        );
    }
    cnf
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    g.sample_size(10);
    g.bench_function("php_7_6_unsat", |b| {
        let cnf = pigeonhole(7, 6);
        b.iter(|| Solver::new(cnf.clone()).solve());
    });
    g.bench_function("random3sat_150_sat_region", |b| {
        let cnf = random_3sat(150, 570, 42); // ratio 3.8: usually SAT
        b.iter(|| Solver::new(cnf.clone()).solve());
    });
    g.bench_function("random3sat_120_phase_transition", |b| {
        let cnf = random_3sat(120, 510, 7); // ratio 4.25
        b.iter(|| Solver::new(cnf.clone()).solve());
    });
    g.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
