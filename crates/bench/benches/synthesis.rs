//! Criterion benches for end-to-end synthesis of small Table IV-class
//! instances (encode + solve + decode + verify).

use criterion::{criterion_group, criterion_main, Criterion};
use mm_boolfn::generators;
use mm_synth::{SynthSpec, Synthesizer};

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.bench_function("and2_v_only", |b| {
        let f = generators::and_gate(2);
        b.iter(|| {
            Synthesizer::new()
                .run(&SynthSpec::mixed_mode(&f, 0, 1, 1).expect("valid"))
                .expect("runs")
        });
    });
    g.bench_function("xor2_mm", |b| {
        let f = generators::xor_gate(2);
        b.iter(|| {
            Synthesizer::new()
                .run(&SynthSpec::mixed_mode(&f, 1, 2, 2).expect("valid"))
                .expect("runs")
        });
    });
    g.bench_function("xor2_r_only_unsat_at_2", |b| {
        let f = generators::xor_gate(2);
        b.iter(|| {
            Synthesizer::new()
                .run(&SynthSpec::r_only(&f, 2).expect("valid"))
                .expect("runs")
        });
    });
    g.bench_function("maj3_mm", |b| {
        let f = generators::majority_gate(3);
        b.iter(|| {
            Synthesizer::new()
                .run(&SynthSpec::mixed_mode(&f, 1, 2, 3).expect("valid"))
                .expect("runs")
        });
    });
    g.finish();

    let mut g = c.benchmark_group("synthesis_table4");
    g.sample_size(10);
    g.bench_function("adder1_mm_paper_optimum", |b| {
        let f = generators::ripple_adder(1);
        b.iter(|| {
            Synthesizer::new()
                .run(&SynthSpec::mixed_mode(&f, 2, 3, 3).expect("valid"))
                .expect("runs")
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_synthesis
}
criterion_main!(benches);
