//! Warm (incremental) vs cold minimality-ladder descent on Table IV
//! workloads.
//!
//! The cold engine re-encodes and re-solves `Φ(f)` from scratch at every
//! rung; the warm engine encodes once at the top rung with disable-literal
//! guards, then walks the whole two-phase ladder (outer `N_R`, inner
//! `N_VS`) on one long-lived solver, flipping assumptions between rungs so
//! every learned clause carries over. This bench measures end-to-end
//! ladder wall-clock for both engines on the same minimization — the
//! acceptance target is warm ≥ 1.3× faster. Reference numbers on the dev
//! container: 1-bit adder ≈ 1.7× (serial and 4-worker portfolio alike),
//! GF(2^2) multiplier mixed-mode ≈ 1.5×, its inner step ladder ≈ 1.2×.
//!
//! Run with `cargo bench --bench ladder_warm_vs_cold`. The serial ladders
//! isolate the reuse effect (no portfolio overlap to hide it behind); the
//! final groups add the 4-worker portfolio with bus clause sharing and the
//! inprocessing on/off comparison on the warm engine (restart-boundary
//! subsumption + vivification on the long-lived solver; reference: ≈ 2.2×
//! further descent speedup on the adder's warm mixed-mode ladder, with
//! the diversified portfolio ≈ 1.5×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_bench::table4;
use mm_sat::Budget;
use mm_synth::optimize::{self, parallel};
use mm_synth::{EncodeOptions, Synthesizer};

fn engines() -> [(&'static str, Synthesizer); 2] {
    [
        ("cold", Synthesizer::new()),
        ("warm", Synthesizer::new().with_incremental(true)),
    ]
}

fn table4_function(name: &str) -> mm_boolfn::MultiOutputFn {
    table4::benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("Table IV contains {name}"))
        .function
}

fn ladder_warm_vs_cold(c: &mut Criterion) {
    let opts = EncodeOptions::recommended();
    let adder1 = table4_function("1-bit adder");
    let gf22 = table4_function("GF(2^2) multipl.");

    // Full two-phase mixed-mode ladder on the 1-bit adder: 5 outer rungs +
    // the inner step descent, all on one warm solver.
    let mut group = c.benchmark_group("ladder_warm_vs_cold/adder1_serial");
    group.sample_size(10);
    for (name, synth) in engines() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &synth, |b, synth| {
            b.iter(|| {
                optimize::minimize_mixed_mode(synth, &adder1, 4, 4, true, &opts)
                    .expect("adder specs encode")
            })
        });
    }
    group.finish();

    // The GF(2^2) multiplier's inner step ladder at the paper's optimal
    // N_R = 4: the heaviest UNSAT rung (N_VS = 2) dominates, and the warm
    // engine attacks it with every clause learned above it.
    let mut group = c.benchmark_group("ladder_warm_vs_cold/gf22_vsteps_serial");
    group.sample_size(2);
    for (name, synth) in engines() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &synth, |b, synth| {
            b.iter(|| {
                optimize::minimize_vsteps(synth, &gf22, 4, 6, 3, &opts).expect("gf22 specs encode")
            })
        });
    }
    group.finish();

    // Portfolio variant: per-worker solver reuse plus bus clause sharing.
    let mut group = c.benchmark_group("ladder_warm_vs_cold/adder1_portfolio_j4");
    group.sample_size(10);
    for (name, synth) in engines() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &synth, |b, synth| {
            b.iter(|| {
                parallel::minimize_mixed_mode(synth, &adder1, 4, 4, true, &opts, 4)
                    .expect("adder specs encode")
            })
        });
    }
    group.finish();

    // Inprocessing ablation on the warm engine: the same adder ladder with
    // restart-boundary inprocessing enabled (default) vs disabled via the
    // budget knob. Serial isolates the clause-database effect; the j4
    // portfolio adds per-worker diversification (seed/phase/restart
    // policy) on top.
    let inprocess_engines = |jobs_label: &'static str| {
        [
            (
                format!("{jobs_label}/inprocess"),
                Synthesizer::new().with_incremental(true),
            ),
            (
                format!("{jobs_label}/no-inprocess"),
                Synthesizer::new()
                    .with_incremental(true)
                    .with_budget(Budget::new().with_inprocess(false)),
            ),
        ]
    };
    let mut group = c.benchmark_group("ladder_warm_vs_cold/adder1_inprocess");
    group.sample_size(10);
    for (name, synth) in inprocess_engines("serial") {
        group.bench_with_input(BenchmarkId::from_parameter(name), &synth, |b, synth| {
            b.iter(|| {
                optimize::minimize_mixed_mode(synth, &adder1, 4, 4, true, &opts)
                    .expect("adder specs encode")
            })
        });
    }
    for (name, synth) in inprocess_engines("j4") {
        group.bench_with_input(BenchmarkId::from_parameter(name), &synth, |b, synth| {
            b.iter(|| {
                parallel::minimize_mixed_mode(synth, &adder1, 4, 4, true, &opts, 4)
                    .expect("adder specs encode")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ladder_warm_vs_cold);
criterion_main!(benches);
