//! Benches for the scalable heuristic mapper (the paper's future work),
//! including functions far beyond the reach of exact synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_boolfn::generators;
use mm_synth::heuristic;

fn bench_heuristic(c: &mut Criterion) {
    let mut g = c.benchmark_group("heuristic_map");
    g.bench_function("gf22_multiplier", |b| {
        let f = generators::gf22_multiplier();
        b.iter(|| heuristic::map(&f).expect("maps"));
    });
    g.bench_function("adder3_n7", |b| {
        let f = generators::ripple_adder(3);
        b.iter(|| heuristic::map(&f).expect("maps"));
    });
    g.bench_function("gf16_inversion", |b| {
        let f = generators::gf16_inversion();
        b.iter(|| heuristic::map(&f).expect("maps"));
    });
    g.sample_size(10);
    g.bench_function("adder4_n9_beyond_exact", |b| {
        // 9 inputs — out of reach for optimal synthesis (the paper stops
        // at 7), trivial for the heuristic.
        let f = generators::ripple_adder(4);
        b.iter(|| heuristic::map(&f).expect("maps"));
    });
    g.finish();
}

criterion_group!(benches, bench_heuristic);
criterion_main!(benches);
