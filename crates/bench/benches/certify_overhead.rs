//! Cost of certification, measured in three configurations on the same
//! UNSAT workload: proof logging off (the default hot path), logging on
//! (DRAT emission into memory), and logging plus an in-tree checker pass.
//!
//! The first two configurations bound the overhead the `--certify` flag
//! adds to every solve; the acceptance bar for the certification PR is
//! that configuration one is indistinguishable from the pre-certification
//! solver (the logging hooks are a single predictable branch when no
//! writer is installed).

use criterion::{criterion_group, criterion_main, Criterion};
use mm_sat::{drat, Budget, CnfFormula, Lit, SatResult, Solver};
use mm_synth::{SynthSpec, Synthesizer};

/// Pigeonhole `pigeons` into `holes`: the classic hard UNSAT family.
fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_lit()).collect())
        .collect();
    for p in &vars {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
            }
        }
    }
    cnf
}

fn certify_overhead(c: &mut Criterion) {
    let cnf = pigeonhole(8, 7);
    let mut group = c.benchmark_group("certify_overhead/php_8_7");

    group.bench_function("logging_off", |b| {
        b.iter(|| {
            let (result, _) = Solver::new(cnf.clone()).solve_with_budget(Budget::new());
            assert_eq!(result, SatResult::Unsat);
        })
    });
    group.bench_function("logging_on", |b| {
        b.iter(|| {
            let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
            assert_eq!(result, SatResult::Unsat);
            proof.expect("log present")
        })
    });
    group.bench_function("logging_plus_check", |b| {
        b.iter(|| {
            let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
            assert_eq!(result, SatResult::Unsat);
            drat::check(&cnf, &proof.expect("log present")).expect("proof checks")
        })
    });
    group.finish();

    // The same three configurations through the full synthesis stack, on a
    // Table III boundary instance (XOR2 is V-op unrealizable).
    let f = mm_boolfn::generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 0, 2, 3).expect("valid spec");
    let mut group = c.benchmark_group("certify_overhead/xor2_unrealizable");
    group.bench_function("plain", |b| {
        b.iter(|| {
            let outcome = Synthesizer::new().run(&spec).expect("runs");
            assert!(outcome.is_unrealizable());
        })
    });
    group.bench_function("certified", |b| {
        b.iter(|| {
            let outcome = Synthesizer::new()
                .with_certification(true)
                .run(&spec)
                .expect("runs");
            assert!(outcome.certificate.is_some());
        })
    });
    group.finish();
}

criterion_group!(benches, certify_overhead);
criterion_main!(benches);
