//! Cost of telemetry, measured in three configurations on the same
//! workloads: no handle installed (the default hot path), a disabled
//! handle (the single-branch `is_enabled` check), and an enabled handle
//! draining into a [`NoopSink`].
//!
//! The acceptance bar mirrors `certify_overhead`: the disabled-handle and
//! no-op-sink configurations must be within measurement noise of the
//! baseline — the solver samples its counters at the existing cancel-poll
//! cadence, so an enabled sink adds no per-propagation work.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_sat::{Budget, CnfFormula, Lit, SatResult, Solver};
use mm_synth::{SynthSpec, Synthesizer};
use mm_telemetry::{NoopSink, Telemetry};

/// Pigeonhole `pigeons` into `holes`: the classic hard UNSAT family.
#[allow(clippy::needless_range_loop)]
fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_lit()).collect())
        .collect();
    for p in &vars {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!vars[p1][h], !vars[p2][h]]);
            }
        }
    }
    cnf
}

fn telemetry_overhead(c: &mut Criterion) {
    let cnf = pigeonhole(8, 7);
    let mut group = c.benchmark_group("telemetry_overhead/php_8_7");

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let (result, _) = Solver::new(cnf.clone()).solve_with_budget(Budget::new());
            assert_eq!(result, SatResult::Unsat);
        })
    });
    group.bench_function("disabled_handle", |b| {
        b.iter(|| {
            let (result, _) = Solver::new(cnf.clone())
                .with_telemetry(Telemetry::disabled())
                .solve_with_budget(Budget::new());
            assert_eq!(result, SatResult::Unsat);
        })
    });
    group.bench_function("noop_sink", |b| {
        b.iter(|| {
            let (result, _) = Solver::new(cnf.clone())
                .with_telemetry(Telemetry::with_sink(NoopSink))
                .solve_with_budget(Budget::new());
            assert_eq!(result, SatResult::Unsat);
        })
    });
    group.finish();

    // The same configurations through the full synthesis stack, on a
    // Table III boundary instance (XOR2 is V-op unrealizable).
    let f = mm_boolfn::generators::xor_gate(2);
    let spec = SynthSpec::mixed_mode(&f, 0, 2, 3).expect("valid spec");
    let mut group = c.benchmark_group("telemetry_overhead/xor2_unrealizable");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let outcome = Synthesizer::new().run(&spec).expect("runs");
            assert!(outcome.is_unrealizable());
        })
    });
    group.bench_function("noop_sink", |b| {
        b.iter(|| {
            let outcome = Synthesizer::new()
                .with_telemetry(Telemetry::with_sink(NoopSink))
                .run(&spec)
                .expect("runs");
            assert!(outcome.is_unrealizable());
        })
    });
    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
