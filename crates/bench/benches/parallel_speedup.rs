//! Wall-clock comparison of the portfolio minimization engine at different
//! worker counts, on a Table IV workload.
//!
//! The workload is the 2-bit adder's mixed-mode `N_R` ladder (the paper's
//! outer minimization loop) under a per-call conflict cap. The cap bounds
//! each ladder point to roughly equal solver effort, which is the regime
//! where the portfolio helps most: with one worker the points run back to
//! back, with `N` workers they overlap and the wall-clock approaches the
//! single hardest point. The conflict cap (rather than a time limit) also
//! keeps the reported optimum deterministic across worker counts.
//!
//! On a single-core machine the configurations tie (modulo scheduling
//! noise); any speedup requires real hardware parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_bench::table4;
use mm_sat::Budget;
use mm_synth::optimize::parallel;
use mm_synth::{EncodeOptions, Synthesizer};

fn parallel_speedup(c: &mut Criterion) {
    let bench = table4::benchmarks()
        .into_iter()
        .find(|b| b.name == "2-bit adder")
        .expect("Table IV contains the 2-bit adder");
    let synth = Synthesizer::new().with_budget(Budget::new().with_max_conflicts(20_000));
    let opts = EncodeOptions::recommended();

    let mut job_counts = vec![1, 2, parallel::default_jobs()];
    job_counts.sort_unstable();
    job_counts.dedup();

    let mut group = c.benchmark_group("parallel_speedup/adder2_rops_ladder");
    // Each iteration is seconds of solver work; a couple of samples is
    // enough to compare configurations.
    group.sample_size(2);
    for jobs in job_counts {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                parallel::minimize_mixed_mode(&synth, &bench.function, 4, 5, true, &opts, jobs)
                    .expect("adder specs encode")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_speedup);
criterion_main!(benches);
