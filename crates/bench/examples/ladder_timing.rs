//! Quick warm-vs-cold ladder timing probe (developer tool, not a bench).
//!
//! ```text
//! cargo run --release -p mm-bench --example ladder_timing -- [serial|parallel] [jobs]
//! ```

use std::time::Instant;

use mm_bench::table4;
use mm_boolfn::generators;
use mm_synth::optimize::{self, parallel};
use mm_synth::{EncodeOptions, Synthesizer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("serial");
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let opts = EncodeOptions::recommended();
    let gf22 = table4::benchmarks()
        .into_iter()
        .find(|b| b.name == "GF(2^2) multipl.")
        .unwrap()
        .function;
    let adder1 = generators::ripple_adder(1);

    let workloads: Vec<(&str, Box<dyn Fn(&Synthesizer)>)> = vec![
        (
            "gf22 mm ladder (max_rops=4, max_steps=3)",
            Box::new({
                let f = gf22.clone();
                let opts = opts.clone();
                move |s: &Synthesizer| {
                    if mode == "serial" {
                        optimize::minimize_mixed_mode(s, &f, 4, 3, false, &opts).unwrap();
                    } else {
                        parallel::minimize_mixed_mode(s, &f, 4, 3, false, &opts, jobs).unwrap();
                    }
                }
            }),
        ),
        (
            "adder1 mm ladder (max_rops=4, max_steps=4)",
            Box::new({
                let f = adder1.clone();
                let opts = opts.clone();
                move |s: &Synthesizer| {
                    if mode == "serial" {
                        optimize::minimize_mixed_mode(s, &f, 4, 4, true, &opts).unwrap();
                    } else {
                        parallel::minimize_mixed_mode(s, &f, 4, 4, true, &opts, jobs).unwrap();
                    }
                }
            }),
        ),
        (
            "gf22 vsteps ladder (nR=4, nL=6, max_steps=3)",
            Box::new({
                let f = gf22.clone();
                let opts = opts.clone();
                move |s: &Synthesizer| {
                    if mode == "serial" {
                        optimize::minimize_vsteps(s, &f, 4, 6, 3, &opts).unwrap();
                    } else {
                        parallel::minimize_vsteps(s, &f, 4, 6, 3, &opts, jobs).unwrap();
                    }
                }
            }),
        ),
    ];

    for (name, run) in &workloads {
        for (engine, synth) in [
            ("cold", Synthesizer::new()),
            ("warm", Synthesizer::new().with_incremental(true)),
        ] {
            let t = Instant::now();
            run(&synth);
            println!("{name} [{mode} j{jobs}] {engine}: {:.2?}", t.elapsed());
        }
    }
}
