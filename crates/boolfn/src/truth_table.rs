use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use serde::{Deserialize, Serialize};

use crate::{BoolFnError, MAX_INPUTS};

/// A bit-packed truth table of an `n`-input Boolean function.
///
/// Row `q` (with `q ∈ 0..2^n`) stores `f(x_1, …, x_n)` where input `x_i`
/// (1-based) is bit `n - i` of `q`; see the crate-level documentation for the
/// ordering rationale. Bits are packed into `u64` words, row `q` living at
/// bit `q % 64` of word `q / 64`. All unused bits of the last word are kept
/// at zero, so equality and hashing are structural.
///
/// # Example
///
/// ```
/// use mm_boolfn::TruthTable;
///
/// # fn main() -> Result<(), mm_boolfn::BoolFnError> {
/// let xor = TruthTable::from_index_fn(2, |q| (q.count_ones() & 1) == 1)?;
/// assert_eq!(xor.to_bitstring(), "0110");
/// assert_eq!(xor.count_ones(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    n_inputs: u8,
    words: Vec<u64>,
}

impl TruthTable {
    /// Creates the constant-0 function of `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::TooManyInputs`] if `n > MAX_INPUTS`.
    pub fn new_false(n: u8) -> Result<Self, BoolFnError> {
        if n > MAX_INPUTS {
            return Err(BoolFnError::TooManyInputs {
                requested: n.into(),
            });
        }
        let n_words = Self::word_count(n);
        Ok(Self {
            n_inputs: n,
            words: vec![0; n_words],
        })
    }

    /// Creates the constant-1 function of `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::TooManyInputs`] if `n > MAX_INPUTS`.
    pub fn new_true(n: u8) -> Result<Self, BoolFnError> {
        let mut tt = Self::new_false(n)?;
        for w in &mut tt.words {
            *w = u64::MAX;
        }
        tt.mask_tail();
        Ok(tt)
    }

    /// Creates the projection function `x_i` of an `n`-input function.
    ///
    /// `var` is 1-based, matching the paper's `x_1 … x_n`.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::VariableOutOfRange`] when `var` is zero or
    /// exceeds `n`, and [`BoolFnError::TooManyInputs`] when `n > MAX_INPUTS`.
    pub fn var(n: u8, var: u8) -> Result<Self, BoolFnError> {
        if var == 0 || var > n {
            return Err(BoolFnError::VariableOutOfRange {
                var: var.into(),
                n_inputs: n,
            });
        }
        let shift = n - var; // x_1 is the most significant index bit
        Self::from_index_fn(n, |q| (q >> shift) & 1 == 1)
    }

    /// Builds a table by evaluating `f` on every row index.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::TooManyInputs`] if `n > MAX_INPUTS`.
    pub fn from_index_fn(n: u8, mut f: impl FnMut(u32) -> bool) -> Result<Self, BoolFnError> {
        let mut tt = Self::new_false(n)?;
        for q in 0..tt.n_rows() {
            if f(q as u32) {
                tt.words[q / 64] |= 1u64 << (q % 64);
            }
        }
        Ok(tt)
    }

    /// Parses a table from a bitstring such as `"0110"`.
    ///
    /// The string length must be a power of two; character `i` becomes row
    /// `i`, so the leftmost character is the all-zero input row (as printed
    /// in the paper's tables).
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::ParseBitstring`] for characters other than
    /// `0`/`1` or a length that is not a power of two, and
    /// [`BoolFnError::TooManyInputs`] if the implied input count is too big.
    pub fn from_bitstring(s: &str) -> Result<Self, BoolFnError> {
        let len = s.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(BoolFnError::ParseBitstring {
                reason: format!("length {len} is not a positive power of two"),
            });
        }
        let n = len.trailing_zeros();
        if n > MAX_INPUTS as u32 {
            return Err(BoolFnError::TooManyInputs { requested: n });
        }
        let mut tt = Self::new_false(n as u8)?;
        for (q, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => tt.words[q / 64] |= 1u64 << (q % 64),
                other => {
                    return Err(BoolFnError::ParseBitstring {
                        reason: format!("unexpected character {other:?} at position {q}"),
                    })
                }
            }
        }
        Ok(tt)
    }

    /// Builds an `n ≤ 6` input table from a packed word (bit `q` = row `q`).
    ///
    /// This is the fast path used by the universality census, where 3- and
    /// 4-input functions are manipulated as raw `u64` masks.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::TooManyInputs`] if `n > 6` (the packed form
    /// only holds 64 rows).
    pub fn from_packed(n: u8, word: u64) -> Result<Self, BoolFnError> {
        if n > 6 {
            return Err(BoolFnError::TooManyInputs {
                requested: n.into(),
            });
        }
        let mut tt = Self::new_false(n)?;
        tt.words[0] = word;
        tt.mask_tail();
        Ok(tt)
    }

    /// Returns the packed `u64` form for tables with at most 6 inputs.
    ///
    /// Returns `None` for larger tables.
    pub fn to_packed(&self) -> Option<u64> {
        (self.n_inputs <= 6).then(|| self.words[0])
    }

    /// Number of inputs `n`.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// Number of rows `2^n`.
    pub fn n_rows(&self) -> usize {
        1usize << self.n_inputs
    }

    /// Returns the value of row `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= 2^n`.
    pub fn get(&self, q: usize) -> bool {
        assert!(
            q < self.n_rows(),
            "row {q} out of range for {} rows",
            self.n_rows()
        );
        (self.words[q / 64] >> (q % 64)) & 1 == 1
    }

    /// Sets the value of row `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= 2^n`.
    pub fn set(&mut self, q: usize, value: bool) {
        assert!(
            q < self.n_rows(),
            "row {q} out of range for {} rows",
            self.n_rows()
        );
        let bit = 1u64 << (q % 64);
        if value {
            self.words[q / 64] |= bit;
        } else {
            self.words[q / 64] &= !bit;
        }
    }

    /// Evaluates the function on an input assignment packed as a row index.
    ///
    /// Bit `n - i` of `assignment` is the value of `x_i`, identical to the
    /// row-index convention.
    ///
    /// # Panics
    ///
    /// Panics if `assignment >= 2^n`.
    pub fn eval(&self, assignment: u32) -> bool {
        self.get(assignment as usize)
    }

    /// Number of rows on which the function is 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the function is constant 0.
    pub fn is_false(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant 1.
    pub fn is_true(&self) -> bool {
        self.count_ones() == self.n_rows()
    }

    /// Whether the function depends on variable `x_i` (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::VariableOutOfRange`] when `var` is zero or
    /// exceeds `n`.
    pub fn depends_on(&self, var: u8) -> Result<bool, BoolFnError> {
        if var == 0 || var > self.n_inputs {
            return Err(BoolFnError::VariableOutOfRange {
                var: var.into(),
                n_inputs: self.n_inputs,
            });
        }
        let shift = self.n_inputs - var;
        for q in 0..self.n_rows() {
            if (q >> shift) & 1 == 0 {
                let q1 = q | (1 << shift);
                if self.get(q) != self.get(q1) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// The cofactor of the function with `x_i` fixed to `value`.
    ///
    /// The result still has `n` inputs (with `x_i` now irrelevant), which
    /// keeps cofactors composable with the original inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::VariableOutOfRange`] when `var` is zero or
    /// exceeds `n`.
    pub fn cofactor(&self, var: u8, value: bool) -> Result<Self, BoolFnError> {
        if var == 0 || var > self.n_inputs {
            return Err(BoolFnError::VariableOutOfRange {
                var: var.into(),
                n_inputs: self.n_inputs,
            });
        }
        let shift = self.n_inputs - var;
        Self::from_index_fn(self.n_inputs, |q| {
            let q = q as usize;
            let fixed = if value {
                q | (1 << shift)
            } else {
                q & !(1 << shift)
            };
            self.get(fixed)
        })
    }

    /// The NOR of two functions — the logical behaviour of the paper's
    /// MAGIC R-op on BiFeO₃ devices.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn nor(&self, other: &Self) -> Self {
        self.check_same(other);
        !(self | other)
    }

    /// The negated implication `self · ~other` — the R-op exhibited by
    /// Ta₂O₅ devices (IMPLY family), per the paper §II-A.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn nimp(&self, other: &Self) -> Self {
        self.check_same(other);
        self & &!other
    }

    /// The voltage-input operation `V(self, te, be)` of the paper's Table I:
    /// the device keeps its state when `TE = BE` and otherwise assumes the
    /// TE value.
    ///
    /// This identity is validated against the paper's worked Table II
    /// example and the algebraic laws (1)–(2):
    /// `f·l = V(f, l, 1) = V(f, 0, ~l)` and `f+l = V(f, l, 0) = V(f, 1, ~l)`.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn v_op(&self, te: &Self, be: &Self) -> Self {
        self.check_same(te);
        self.check_same(be);
        let mut out = self.clone();
        for i in 0..out.words.len() {
            let s = self.words[i];
            let t = te.words[i];
            let b = be.words[i];
            // keep s where t == b, take t where t != b
            out.words[i] = (t & !b) | (s & !(t ^ b));
        }
        out.mask_tail();
        out
    }

    /// Iterator over the row values, from row 0 upward.
    pub fn iter(&self) -> Iter<'_> {
        Iter { tt: self, q: 0 }
    }

    /// Renders the table as a `0`/`1` string, row 0 first (paper style).
    pub fn to_bitstring(&self) -> String {
        (0..self.n_rows())
            .map(|q| if self.get(q) { '1' } else { '0' })
            .collect()
    }

    /// Indices of the rows on which the function is 1 (its minterms).
    pub fn minterms(&self) -> Vec<u32> {
        (0..self.n_rows() as u32)
            .filter(|&q| self.get(q as usize))
            .collect()
    }

    fn word_count(n: u8) -> usize {
        (1usize << n).div_ceil(64)
    }

    fn mask_tail(&mut self) {
        let rows = self.n_rows();
        if rows < 64 {
            let mask = (1u64 << rows) - 1;
            self.words[0] &= mask;
        }
    }

    fn check_same(&self, other: &Self) {
        assert_eq!(
            self.n_inputs, other.n_inputs,
            "truth tables must have the same number of inputs ({} vs {})",
            self.n_inputs, other.n_inputs
        );
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bitstring())
    }
}

/// Iterator over the rows of a [`TruthTable`]; see [`TruthTable::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    tt: &'a TruthTable,
    q: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.q >= self.tt.n_rows() {
            return None;
        }
        let v = self.tt.get(self.q);
        self.q += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.tt.n_rows() - self.q;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;

            fn $method(self, rhs: &TruthTable) -> TruthTable {
                self.check_same(rhs);
                let mut out = self.clone();
                for (w, r) in out.words.iter_mut().zip(&rhs.words) {
                    *w $assign *r;
                }
                out.mask_tail();
                out
            }
        }

        impl $trait for TruthTable {
            type Output = TruthTable;

            fn $method(self, rhs: TruthTable) -> TruthTable {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &=);
impl_binop!(BitOr, bitor, |=);
impl_binop!(BitXor, bitxor, ^=);

impl Not for &TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }
}

impl Not for TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        !&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_matches_paper_ordering() {
        // Paper Table II: for n = 4, the table of x4 is 0101…, x2 is 00001111….
        let x4 = TruthTable::var(4, 4).unwrap();
        assert_eq!(x4.to_bitstring(), "0101010101010101");
        let x2 = TruthTable::var(4, 2).unwrap();
        assert_eq!(x2.to_bitstring(), "0000111100001111");
        let x1 = TruthTable::var(4, 1).unwrap();
        assert_eq!(x1.to_bitstring(), "0000000011111111");
    }

    #[test]
    fn literal_example_from_paper_eq4() {
        // Paper §III-A: literal ~x1 of a 2-input function has entries 1,1,0,0.
        let nx1 = !TruthTable::var(2, 1).unwrap();
        assert_eq!(nx1.to_bitstring(), "1100");
    }

    #[test]
    fn v_op_identities_eq1_eq2() {
        let n = 3;
        let f = TruthTable::from_bitstring("01100101").unwrap();
        let c0 = TruthTable::new_false(n).unwrap();
        let c1 = TruthTable::new_true(n).unwrap();
        for v in 1..=n {
            let l = TruthTable::var(n, v).unwrap();
            let nl = !&l;
            let and = &f & &l;
            let or = &f | &l;
            assert_eq!(f.v_op(&l, &c1), and, "Eq.(1) first form");
            assert_eq!(f.v_op(&c0, &nl), and, "Eq.(1) second form");
            assert_eq!(f.v_op(&l, &c0), or, "Eq.(2) first form");
            assert_eq!(f.v_op(&c1, &nl), or, "Eq.(2) second form");
        }
    }

    #[test]
    fn v_op_reproduces_table2_transitions() {
        // Paper Table II, f1 = x1x2x3x4, transition s1 -> s2. The shared-BE
        // row is labeled "~x3" but prints the pattern 0011001100110011,
        // which is x3 under the table's own variable ordering; the paper's
        // worked example ("for input (0,0,1,0): BE = 1") confirms the
        // printed pattern is the authoritative one (label erratum).
        let s1 = TruthTable::from_bitstring("0101010101010101").unwrap();
        let te = TruthTable::var(4, 2).unwrap();
        let be = TruthTable::from_bitstring("0011001100110011").unwrap();
        assert_eq!(be, TruthTable::var(4, 3).unwrap());
        let s2 = s1.v_op(&te, &be);
        assert_eq!(s2.to_bitstring(), "0100110101001101");

        // Same step of f2 = NAND: s1 = 1010…, TE = x1, shared BE, and the
        // paper's s2 = 1000100011101110.
        let s1 = TruthTable::from_bitstring("1010101010101010").unwrap();
        let te = TruthTable::var(4, 1).unwrap();
        let s2 = s1.v_op(&te, &be);
        assert_eq!(s2.to_bitstring(), "1000100011101110");
    }

    #[test]
    fn nor_and_nimp() {
        let a = TruthTable::var(2, 1).unwrap();
        let b = TruthTable::var(2, 2).unwrap();
        assert_eq!(a.nor(&b).to_bitstring(), "1000");
        assert_eq!(a.nimp(&b).to_bitstring(), "0010");
    }

    #[test]
    fn packed_round_trip() {
        let tt = TruthTable::from_bitstring("01100101").unwrap();
        let packed = tt.to_packed().unwrap();
        let back = TruthTable::from_packed(3, packed).unwrap();
        assert_eq!(tt, back);
    }

    #[test]
    fn bitstring_round_trip_and_errors() {
        let tt = TruthTable::from_bitstring("0110").unwrap();
        assert_eq!(TruthTable::from_bitstring(&tt.to_bitstring()).unwrap(), tt);
        assert!(TruthTable::from_bitstring("011").is_err());
        assert!(TruthTable::from_bitstring("01a0").is_err());
        assert!(TruthTable::from_bitstring("").is_err());
    }

    #[test]
    fn large_tables_span_words() {
        // n = 7 → 128 rows → 2 words; exercised by the paper's 3-bit adder.
        let x7 = TruthTable::var(7, 7).unwrap();
        assert_eq!(x7.count_ones(), 64);
        assert!(x7.get(1));
        assert!(!x7.get(126));
        assert!(x7.get(127));
        let neg = !&x7;
        assert_eq!(neg.count_ones(), 64);
        assert!((&x7 & &neg).is_false());
        assert!((&x7 | &neg).is_true());
    }

    #[test]
    fn cofactor_and_depends_on() {
        let x1 = TruthTable::var(3, 1).unwrap();
        let x2 = TruthTable::var(3, 2).unwrap();
        let f = &x1 ^ &x2;
        assert!(f.depends_on(1).unwrap());
        assert!(f.depends_on(2).unwrap());
        assert!(!f.depends_on(3).unwrap());
        let f0 = f.cofactor(1, false).unwrap();
        assert_eq!(f0, x2);
        let f1 = f.cofactor(1, true).unwrap();
        assert_eq!(f1, !&x2);
        assert!(f.cofactor(0, false).is_err());
        assert!(f.cofactor(4, false).is_err());
    }

    #[test]
    fn minterms_listing() {
        let f = TruthTable::from_bitstring("0110").unwrap();
        assert_eq!(f.minterms(), vec![1, 2]);
    }

    #[test]
    fn eval_matches_get() {
        let f = TruthTable::from_bitstring("00010010").unwrap();
        for q in 0..8 {
            assert_eq!(f.eval(q), f.get(q as usize));
        }
    }

    #[test]
    fn zero_input_tables() {
        let t = TruthTable::new_true(0).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert!(t.get(0));
        assert_eq!(t.to_bitstring(), "1");
    }
}
