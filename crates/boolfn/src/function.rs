use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BoolFnError, TruthTable};

/// A named multi-output Boolean specification — the `f` handed to the
/// synthesis formula `Φ(f, N_V, N_R)`.
///
/// All outputs share the same `n` inputs. The paper synthesizes multi-output
/// functions monolithically from the truth tables of all outputs (§IV notes
/// the 2- and 3-bit adders "are not modular but are synthesized based on
/// truth tables of all outputs").
///
/// # Example
///
/// ```
/// use mm_boolfn::generators;
///
/// let f = generators::gf22_multiplier();
/// assert_eq!(f.n_inputs(), 4);
/// assert_eq!(f.n_outputs(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiOutputFn {
    name: String,
    n_inputs: u8,
    outputs: Vec<TruthTable>,
    output_names: Vec<String>,
}

impl MultiOutputFn {
    /// Creates a multi-output function from its output truth tables.
    ///
    /// Output names default to `y1, y2, …`; use
    /// [`with_output_names`](Self::with_output_names) to override them.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::EmptyFunction`] when `outputs` is empty and
    /// [`BoolFnError::InputCountMismatch`] when the outputs disagree on the
    /// number of inputs.
    pub fn new(name: impl Into<String>, outputs: Vec<TruthTable>) -> Result<Self, BoolFnError> {
        let first = outputs.first().ok_or(BoolFnError::EmptyFunction)?;
        let n_inputs = first.n_inputs();
        for tt in &outputs {
            if tt.n_inputs() != n_inputs {
                return Err(BoolFnError::InputCountMismatch {
                    left: n_inputs,
                    right: tt.n_inputs(),
                });
            }
        }
        let output_names = (1..=outputs.len()).map(|i| format!("y{i}")).collect();
        Ok(Self {
            name: name.into(),
            n_inputs,
            outputs,
            output_names,
        })
    }

    /// Replaces the default output names.
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from the number of outputs.
    pub fn with_output_names<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(
            names.len(),
            self.outputs.len(),
            "expected {} output names, got {}",
            self.outputs.len(),
            names.len()
        );
        self.output_names = names;
        self
    }

    /// The function's name (e.g. `"gf22_mul"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of inputs `n`.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// Number of outputs `N_O`.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of truth-table rows `N_T = 2^n`.
    pub fn n_rows(&self) -> usize {
        1usize << self.n_inputs
    }

    /// The output truth tables, in declaration order.
    pub fn outputs(&self) -> &[TruthTable] {
        &self.outputs
    }

    /// The truth table of output `i` (0-based), or `None` out of range.
    pub fn output(&self, i: usize) -> Option<&TruthTable> {
        self.outputs.get(i)
    }

    /// The output names, in declaration order.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Evaluates all outputs on an input assignment packed as a row index,
    /// returning output `i` in bit position `N_O - 1 - i` (first output =
    /// most significant bit, matching how the generators pack result words).
    ///
    /// # Panics
    ///
    /// Panics if `assignment >= 2^n`.
    pub fn eval(&self, assignment: u32) -> u32 {
        let mut word = 0;
        for tt in &self.outputs {
            word = (word << 1) | u32::from(tt.eval(assignment));
        }
        word
    }
}

impl fmt::Display for MultiOutputFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} inputs, {} outputs)",
            self.name,
            self.n_inputs,
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn construction_and_accessors() {
        let a = TruthTable::var(2, 1).unwrap();
        let b = TruthTable::var(2, 2).unwrap();
        let f = MultiOutputFn::new("pair", vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(f.n_inputs(), 2);
        assert_eq!(f.n_outputs(), 2);
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.output(0), Some(&a));
        assert_eq!(f.output(2), None);
        assert_eq!(f.output_names(), ["y1", "y2"]);
        assert_eq!(f.to_string(), "pair (2 inputs, 2 outputs)");
    }

    #[test]
    fn eval_packs_first_output_msb() {
        let a = TruthTable::from_bitstring("0001").unwrap(); // AND
        let b = TruthTable::from_bitstring("0111").unwrap(); // OR
        let f = MultiOutputFn::new("andor", vec![a, b]).unwrap();
        assert_eq!(f.eval(0), 0b00);
        assert_eq!(f.eval(1), 0b01);
        assert_eq!(f.eval(3), 0b11);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert_eq!(
            MultiOutputFn::new("e", vec![]),
            Err(BoolFnError::EmptyFunction)
        );
        let a = TruthTable::new_false(2).unwrap();
        let b = TruthTable::new_false(3).unwrap();
        assert!(matches!(
            MultiOutputFn::new("m", vec![a, b]),
            Err(BoolFnError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn output_names_override() {
        let a = TruthTable::new_false(1).unwrap();
        let f = MultiOutputFn::new("f", vec![a])
            .unwrap()
            .with_output_names(["sum"]);
        assert_eq!(f.output_names(), ["sum"]);
    }

    #[test]
    #[should_panic(expected = "expected 1 output names")]
    fn output_names_wrong_arity_panics() {
        let a = TruthTable::new_false(1).unwrap();
        let _ = MultiOutputFn::new("f", vec![a])
            .unwrap()
            .with_output_names(["s", "c"]);
    }
}
