use serde::{Deserialize, Serialize};

use crate::BoolFnError;

/// The finite field GF(2^m), represented by polynomials over GF(2) modulo an
/// irreducible polynomial.
///
/// Elements are packed into `u16` words: bit `i` is the coefficient of
/// `x^i`, so the element `x + 1` of GF(2²) is `0b11`. The paper's benchmark
/// circuits multiply in GF(2²) (with an earlier memristive implementation in
/// its ref. \[14\]) and invert in GF(2⁴); both fields are provided by
/// [`Gf2m::gf4`] and [`Gf2m::gf16`].
///
/// # Example
///
/// ```
/// use mm_boolfn::Gf2m;
///
/// # fn main() -> Result<(), mm_boolfn::BoolFnError> {
/// let field = Gf2m::gf4()?; // GF(2^2) mod x^2 + x + 1
/// assert_eq!(field.mul(0b10, 0b10), 0b11); // x * x = x + 1
/// assert_eq!(field.inv(0b10), 0b11); // x^{-1} = x + 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gf2m {
    m: u8,
    poly: u32,
}

impl Gf2m {
    /// Creates GF(2^m) with the given modulus polynomial.
    ///
    /// `poly` must have degree exactly `m` (bit `m` set) and be irreducible
    /// over GF(2); both properties are checked.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::InvalidFieldPolynomial`] when `m` is 0 or
    /// greater than 8, when the degree is wrong, or when `poly` factors.
    pub fn new(m: u8, poly: u32) -> Result<Self, BoolFnError> {
        let err = BoolFnError::InvalidFieldPolynomial { m, poly };
        if m == 0 || m > 8 {
            return Err(err);
        }
        if poly >> m != 1 {
            return Err(err); // degree must be exactly m
        }
        if !Self::is_irreducible(m, poly) {
            return Err(err);
        }
        Ok(Self { m, poly })
    }

    /// GF(2²) with modulus `x² + x + 1` — the field of the paper's Fig. 1
    /// multiplier.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is kept fallible for
    /// uniformity with [`Gf2m::new`].
    pub fn gf4() -> Result<Self, BoolFnError> {
        Self::new(2, 0b111)
    }

    /// GF(2⁴) with modulus `x⁴ + x + 1` — the field of the paper's
    /// Table IV inversion benchmark.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is kept fallible for
    /// uniformity with [`Gf2m::new`].
    pub fn gf16() -> Result<Self, BoolFnError> {
        Self::new(4, 0b10011)
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> u8 {
        self.m
    }

    /// The modulus polynomial (bit `i` = coefficient of `x^i`).
    pub fn modulus(&self) -> u32 {
        self.poly
    }

    /// Number of field elements, `2^m`.
    pub fn order(&self) -> u32 {
        1 << self.m
    }

    /// Field addition (polynomial XOR).
    pub fn add(&self, a: u16, b: u16) -> u16 {
        debug_assert!(self.contains(a) && self.contains(b));
        a ^ b
    }

    /// Field multiplication modulo the irreducible polynomial.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an operand is not a field element.
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!(self.contains(a) && self.contains(b));
        let mut acc: u32 = 0;
        let mut a = a as u32;
        let mut b = b as u32;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a >> self.m != 0 {
                a ^= self.poly;
            }
        }
        acc as u16
    }

    /// Field exponentiation by squaring.
    pub fn pow(&self, mut a: u16, mut e: u32) -> u16 {
        let mut acc = 1u16;
        while e != 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, computed as `a^(2^m - 2)` (Fermat).
    ///
    /// As in hardware GF-inverter blocks, the non-invertible element 0 maps
    /// to 0; the paper's inversion benchmark needs a total function over all
    /// `2^m` inputs.
    pub fn inv(&self, a: u16) -> u16 {
        if a == 0 {
            return 0;
        }
        self.pow(a, self.order() - 2)
    }

    /// Whether `a` is an element of the field (fits in `m` bits).
    pub fn contains(&self, a: u16) -> bool {
        u32::from(a) < self.order()
    }

    fn is_irreducible(m: u8, poly: u32) -> bool {
        // Trial division by all polynomials of degree 1..=m/2.
        for d in 1..=(m / 2).max(1) {
            if d > m / 2 {
                break;
            }
            for cand in (1u32 << d)..(1u32 << (d + 1)) {
                if Self::poly_mod(poly, cand) == 0 {
                    return false;
                }
            }
        }
        // Degree-1 check also catches even polynomials / x | poly for m >= 2.
        m == 1 || poly & 1 == 1
    }

    fn poly_mod(mut a: u32, b: u32) -> u32 {
        let db = 31 - b.leading_zeros();
        loop {
            let da = 31u32.wrapping_sub(a.leading_zeros());
            if a == 0 || da < db {
                return a;
            }
            a ^= b << (da - db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf4_multiplication_table() {
        // Elements: 0, 1, A = x (0b10), B = x+1 (0b11).
        let f = Gf2m::gf4().unwrap();
        assert_eq!(f.mul(0b10, 0b10), 0b11); // A*A = B
        assert_eq!(f.mul(0b10, 0b11), 0b01); // A*B = 1
        assert_eq!(f.mul(0b11, 0b11), 0b10); // B*B = A
        for a in 0..4u16 {
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.mul(a, 1), a);
        }
    }

    #[test]
    fn gf16_inverse_is_total_and_correct() {
        let f = Gf2m::gf16().unwrap();
        assert_eq!(f.inv(0), 0);
        for a in 1..16u16 {
            let ai = f.inv(a);
            assert_eq!(f.mul(a, ai), 1, "a = {a}");
        }
    }

    #[test]
    fn field_axioms_hold_in_gf16() {
        let f = Gf2m::gf16().unwrap();
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                assert_eq!(f.add(a, b), f.add(b, a));
                for c in 0..16u16 {
                    assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity {a} {b} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_reducible_and_malformed_polynomials() {
        // x^2 + 1 = (x+1)^2 is reducible.
        assert!(Gf2m::new(2, 0b101).is_err());
        // x^2 + x = x(x+1) is reducible.
        assert!(Gf2m::new(2, 0b110).is_err());
        // degree mismatch
        assert!(Gf2m::new(3, 0b111).is_err());
        assert!(Gf2m::new(0, 0b11).is_err());
        assert!(Gf2m::new(9, 1 << 9 | 1).is_err());
        // x^4 + x^3 + x^2 + x + 1 is irreducible over GF(2).
        assert!(Gf2m::new(4, 0b11111).is_ok());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf2m::gf16().unwrap();
        for a in 0..16u16 {
            let mut acc = 1u16;
            for e in 0..10u32 {
                assert_eq!(f.pow(a, e), acc);
                acc = f.mul(acc, a);
            }
        }
    }
}
