//! Generators for the benchmark functions of the paper's evaluation and for
//! common gate primitives.
//!
//! Every generator returns a [`MultiOutputFn`] whose input ordering follows
//! the crate's row-index convention (`x_1` most significant). The paper's
//! Table IV benchmark set is covered by [`ripple_adder`] (1-, 2- and 3-bit),
//! [`gf22_multiplier`] and [`gf16_inversion`]; Table II's 4-input gates by
//! [`and_gate`], [`nand_gate`], [`or_gate`] and [`nor_gate`].

use crate::{BoolFnError, Gf2m, MultiOutputFn, TruthTable};

/// An `width`-bit ripple-carry adder with carry-in:
/// `n = 2·width + 1` inputs, `width + 1` outputs.
///
/// Inputs are ordered `a_{width-1} … a_0, b_{width-1} … b_0, c_in` (so
/// `x_1` is the MSB of `a` and `x_n` is the carry-in); outputs are
/// `c_out, s_{width-1}, …, s_0`. For `width = 1` this is the paper's 1-bit
/// adder (`n = 3`, `N_O = 2`), for `width = 2` the 2-bit adder (`n = 5`,
/// `N_O = 3`) and for `width = 3` the 3-bit adder (`n = 7`, `N_O = 4`).
///
/// # Panics
///
/// Panics if `width` is 0 or `2·width + 1` exceeds
/// [`MAX_INPUTS`](crate::MAX_INPUTS).
pub fn ripple_adder(width: u8) -> MultiOutputFn {
    assert!(width >= 1, "adder width must be at least 1");
    let n = 2 * width + 1;
    assert!(
        n <= crate::MAX_INPUTS,
        "adder with {width} bits needs too many inputs"
    );
    let out_bits = width as u32 + 1;
    multi_from_word_fn("adder", n, out_bits, |assignment| {
        let a = (assignment >> (width + 1)) & ((1 << width) - 1);
        let b = (assignment >> 1) & ((1 << width) - 1);
        let cin = assignment & 1;
        a + b + cin
    })
    .unwrap_or_else(|e| unreachable!("adder construction is infallible: {e}"))
    .with_output_names(
        std::iter::once("cout".to_string()).chain((0..width).rev().map(|i| format!("s{i}"))),
    )
}

/// Multiplication in GF(2²) — the function of the paper's Fig. 1 circuit
/// and Table IV row "GF(2²) multipl." (`n = 4`, `N_O = 2`).
///
/// Inputs are `a_1 a_0 b_1 b_0` (`x_1` = MSB of the first operand), outputs
/// the two product bits (MSB first).
pub fn gf22_multiplier() -> MultiOutputFn {
    let field = Gf2m::gf4().expect("GF(4) modulus is irreducible");
    gf_multiplier(&field).with_output_names(["p1", "p0"])
}

/// Multiplication in an arbitrary small field GF(2^m): `2m` inputs,
/// `m` outputs.
///
/// # Panics
///
/// Panics if `2m` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
pub fn gf_multiplier(field: &Gf2m) -> MultiOutputFn {
    let m = field.degree();
    let n = 2 * m;
    assert!(
        n <= crate::MAX_INPUTS,
        "GF(2^{m}) multiplier needs too many inputs"
    );
    let f = *field;
    multi_from_word_fn(format!("gf2^{m}_mul"), n, m as u32, move |assignment| {
        let a = (assignment >> m) as u16;
        let b = (assignment & ((1 << m) - 1)) as u16;
        f.mul(a, b) as u32
    })
    .unwrap_or_else(|e| unreachable!("GF multiplier construction is infallible: {e}"))
}

/// Multiplicative inversion in GF(2⁴) with `0 ↦ 0` — the paper's Table IV
/// row "GF(2⁴) inversion" (`n = 4`, `N_O = 4`).
pub fn gf16_inversion() -> MultiOutputFn {
    let field = Gf2m::gf16().expect("GF(16) modulus is irreducible");
    gf_inversion(&field)
}

/// Multiplicative inversion in an arbitrary small field GF(2^m) with
/// `0 ↦ 0`: `m` inputs, `m` outputs.
pub fn gf_inversion(field: &Gf2m) -> MultiOutputFn {
    let m = field.degree();
    let f = *field;
    multi_from_word_fn(format!("gf2^{m}_inv"), m, m as u32, move |assignment| {
        f.inv(assignment as u16) as u32
    })
    .unwrap_or_else(|e| unreachable!("GF inversion construction is infallible: {e}"))
}

/// The `n`-input AND gate `x_1 · x_2 · … · x_n` (Table II, `f_1`).
pub fn and_gate(n: u8) -> MultiOutputFn {
    single(
        "and",
        TruthTable::from_index_fn(n, |q| q == (1 << n) - 1).expect("n validated"),
    )
}

/// The `n`-input NAND gate (Table II, `f_2`).
pub fn nand_gate(n: u8) -> MultiOutputFn {
    single(
        "nand",
        TruthTable::from_index_fn(n, |q| q != (1 << n) - 1).expect("n validated"),
    )
}

/// The `n`-input OR gate (Table II, `f_3`).
pub fn or_gate(n: u8) -> MultiOutputFn {
    single(
        "or",
        TruthTable::from_index_fn(n, |q| q != 0).expect("n validated"),
    )
}

/// The `n`-input NOR gate (Table II, `f_4`).
pub fn nor_gate(n: u8) -> MultiOutputFn {
    single(
        "nor",
        TruthTable::from_index_fn(n, |q| q == 0).expect("n validated"),
    )
}

/// The `n`-input XOR (odd parity) gate — the paper's canonical example of a
/// function *not* realizable by V-ops alone (§II-C).
pub fn xor_gate(n: u8) -> MultiOutputFn {
    single(
        "xor",
        TruthTable::from_index_fn(n, |q| q.count_ones() % 2 == 1).expect("n validated"),
    )
}

/// The `n`-input XNOR (even parity) gate.
pub fn xnor_gate(n: u8) -> MultiOutputFn {
    single(
        "xnor",
        TruthTable::from_index_fn(n, |q| q.count_ones() % 2 == 0).expect("n validated"),
    )
}

/// The majority gate of `n` (odd) inputs.
///
/// # Panics
///
/// Panics if `n` is even (majority is undefined on ties).
pub fn majority_gate(n: u8) -> MultiOutputFn {
    assert!(n % 2 == 1, "majority gate needs an odd number of inputs");
    single(
        "maj",
        TruthTable::from_index_fn(n, |q| q.count_ones() > u32::from(n) / 2).expect("n validated"),
    )
}

/// The 2:1 multiplexer `s ? a : b` with inputs ordered `s, a, b`
/// (`x_1 = s`).
pub fn mux21() -> MultiOutputFn {
    single(
        "mux21",
        TruthTable::from_index_fn(3, |q| {
            let s = (q >> 2) & 1;
            let a = (q >> 1) & 1;
            let b = q & 1;
            (if s == 1 { a } else { b }) == 1
        })
        .expect("3 inputs always valid"),
    )
}

/// The function `x1·x2 + x3·x4` — the paper's witness of shape
/// `x_1x_2 + x_3x_4` for V-op non-universality (§II-C).
pub fn and_or_22() -> MultiOutputFn {
    single(
        "and_or_22",
        TruthTable::from_index_fn(4, |q| {
            let x1 = (q >> 3) & 1;
            let x2 = (q >> 2) & 1;
            let x3 = (q >> 1) & 1;
            let x4 = q & 1;
            (x1 & x2) | (x3 & x4) == 1
        })
        .expect("4 inputs always valid"),
    )
}

/// An unsigned `width × width`-bit integer multiplier: `2·width` inputs,
/// `2·width` outputs (product MSB first).
///
/// # Panics
///
/// Panics if `2·width` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS) or
/// `width` is 0.
pub fn int_multiplier(width: u8) -> MultiOutputFn {
    assert!(width >= 1, "multiplier width must be at least 1");
    let n = 2 * width;
    assert!(
        n <= crate::MAX_INPUTS,
        "{width}-bit multiplier needs too many inputs"
    );
    multi_from_word_fn(format!("mul{width}"), n, u32::from(n), move |assignment| {
        let a = assignment >> width;
        let b = assignment & ((1 << width) - 1);
        a * b
    })
    .unwrap_or_else(|e| unreachable!("multiplier construction is infallible: {e}"))
}

/// An unsigned `width`-bit comparator: inputs `a` then `b`, outputs
/// `(a < b, a == b)` — `a > b` is their NOR.
///
/// # Panics
///
/// Panics if `2·width` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS) or
/// `width` is 0.
pub fn comparator(width: u8) -> MultiOutputFn {
    assert!(width >= 1, "comparator width must be at least 1");
    let n = 2 * width;
    assert!(
        n <= crate::MAX_INPUTS,
        "{width}-bit comparator needs too many inputs"
    );
    multi_from_word_fn(format!("cmp{width}"), n, 2, move |assignment| {
        let a = assignment >> width;
        let b = assignment & ((1 << width) - 1);
        (u32::from(a < b) << 1) | u32::from(a == b)
    })
    .unwrap_or_else(|e| unreachable!("comparator construction is infallible: {e}"))
    .with_output_names(["lt", "eq"])
}

/// The population count of `n` inputs: `⌈log2(n+1)⌉` outputs (MSB first).
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
pub fn popcount(n: u8) -> MultiOutputFn {
    assert!(
        (1..=crate::MAX_INPUTS).contains(&n),
        "popcount needs 1..={} inputs",
        crate::MAX_INPUTS
    );
    let out_bits = 32 - u32::from(n).leading_zeros();
    multi_from_word_fn(format!("popcount{n}"), n, out_bits, |assignment| {
        assignment.count_ones()
    })
    .unwrap_or_else(|e| unreachable!("popcount construction is infallible: {e}"))
}

/// Builds a multi-output function from a word-valued evaluator: output `i`
/// of `N_O` is bit `N_O - 1 - i` of `f(assignment)` (first output = MSB).
///
/// # Errors
///
/// Returns [`BoolFnError::TooManyInputs`] when `n` exceeds
/// [`MAX_INPUTS`](crate::MAX_INPUTS) and [`BoolFnError::EmptyFunction`] when
/// `out_bits` is 0.
pub fn multi_from_word_fn(
    name: impl Into<String>,
    n: u8,
    out_bits: u32,
    f: impl Fn(u32) -> u32,
) -> Result<MultiOutputFn, BoolFnError> {
    if out_bits == 0 {
        return Err(BoolFnError::EmptyFunction);
    }
    let mut outputs = Vec::with_capacity(out_bits as usize);
    for bit in (0..out_bits).rev() {
        outputs.push(TruthTable::from_index_fn(n, |q| (f(q) >> bit) & 1 == 1)?);
    }
    MultiOutputFn::new(name, outputs)
}

fn single(name: &str, tt: TruthTable) -> MultiOutputFn {
    let n = tt.n_inputs();
    MultiOutputFn::new(format!("{name}{n}"), vec![tt])
        .expect("single-output function is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_dimensions_match_table4() {
        for (width, n, n_o) in [(1u8, 3u8, 2usize), (2, 5, 3), (3, 7, 4)] {
            let f = ripple_adder(width);
            assert_eq!(f.n_inputs(), n, "width {width}");
            assert_eq!(f.n_outputs(), n_o, "width {width}");
        }
    }

    #[test]
    fn adder_arithmetic_is_correct() {
        for width in 1u8..=3 {
            let f = ripple_adder(width);
            let w = width as u32;
            for a in 0..(1u32 << w) {
                for b in 0..(1u32 << w) {
                    for cin in 0..2u32 {
                        let assignment = (a << (w + 1)) | (b << 1) | cin;
                        assert_eq!(
                            f.eval(assignment),
                            a + b + cin,
                            "w={width} a={a} b={b} c={cin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gf22_multiplier_matches_field() {
        let f = gf22_multiplier();
        assert_eq!(f.n_inputs(), 4);
        assert_eq!(f.n_outputs(), 2);
        let field = Gf2m::gf4().unwrap();
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    f.eval((a << 2) | b),
                    u32::from(field.mul(a as u16, b as u16))
                );
            }
        }
    }

    #[test]
    fn gf16_inversion_matches_field() {
        let f = gf16_inversion();
        assert_eq!(f.n_inputs(), 4);
        assert_eq!(f.n_outputs(), 4);
        let field = Gf2m::gf16().unwrap();
        for a in 0..16u32 {
            assert_eq!(f.eval(a), u32::from(field.inv(a as u16)));
        }
    }

    #[test]
    fn table2_gate_truth_tables() {
        // The s_5 / s_4 rows of the paper's Table II are the gates' tables.
        assert_eq!(
            and_gate(4).output(0).unwrap().to_bitstring(),
            "0000000000000001"
        );
        assert_eq!(
            nand_gate(4).output(0).unwrap().to_bitstring(),
            "1111111111111110"
        );
        assert_eq!(
            or_gate(4).output(0).unwrap().to_bitstring(),
            "0111111111111111"
        );
        assert_eq!(
            nor_gate(4).output(0).unwrap().to_bitstring(),
            "1000000000000000"
        );
    }

    #[test]
    fn xor_and_majority() {
        assert_eq!(xor_gate(2).output(0).unwrap().to_bitstring(), "0110");
        assert_eq!(xnor_gate(2).output(0).unwrap().to_bitstring(), "1001");
        assert_eq!(
            majority_gate(3).output(0).unwrap().to_bitstring(),
            "00010111"
        );
    }

    #[test]
    fn mux_selects() {
        let f = mux21();
        // s=1 -> a, s=0 -> b
        assert_eq!(f.eval(0b110), 1);
        assert_eq!(f.eval(0b101), 0);
        assert_eq!(f.eval(0b001), 1);
        assert_eq!(f.eval(0b010), 0);
    }

    #[test]
    fn int_multiplier_is_correct() {
        for width in 1u8..=3 {
            let f = int_multiplier(width);
            assert_eq!(f.n_inputs(), 2 * width);
            assert_eq!(f.n_outputs(), 2 * width as usize);
            for a in 0..(1u32 << width) {
                for b in 0..(1u32 << width) {
                    assert_eq!(f.eval((a << width) | b), a * b, "w={width} {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn comparator_is_correct() {
        for width in 1u8..=3 {
            let f = comparator(width);
            for a in 0..(1u32 << width) {
                for b in 0..(1u32 << width) {
                    let want = (u32::from(a < b) << 1) | u32::from(a == b);
                    assert_eq!(f.eval((a << width) | b), want, "w={width} cmp({a},{b})");
                }
            }
        }
    }

    #[test]
    fn popcount_is_correct() {
        for n in 1u8..=6 {
            let f = popcount(n);
            for q in 0..(1u32 << n) {
                assert_eq!(f.eval(q), q.count_ones(), "n={n} q={q:b}");
            }
        }
        assert_eq!(popcount(3).n_outputs(), 2);
        assert_eq!(popcount(4).n_outputs(), 3);
    }

    #[test]
    fn and_or_22_shape() {
        let f = and_or_22();
        assert_eq!(f.eval(0b1100), 1);
        assert_eq!(f.eval(0b0011), 1);
        assert_eq!(f.eval(0b1010), 0);
        assert_eq!(f.eval(0b0000), 0);
    }
}
