//! Quine–McCluskey two-level minimization.
//!
//! The synthesis paper's SAT procedure is exact but limited to small input
//! counts; its stated future work is "developing scalable heuristic methods
//! for larger functions". The heuristic mapper in `mm-synth` builds
//! mixed-mode circuits from a minimal sum-of-products cover, which this
//! module computes: prime-implicant generation by iterative combination,
//! essential-implicant extraction, and an exact branch-and-bound cover for
//! the (small) cyclic core.
//!
//! # Example
//!
//! ```
//! use mm_boolfn::{qmc, TruthTable};
//!
//! # fn main() -> Result<(), mm_boolfn::BoolFnError> {
//! let f = TruthTable::from_bitstring("0111")?; // x1 + x2
//! let sop = qmc::minimize(&f);
//! assert_eq!(sop.cubes().len(), 2);
//! assert_eq!(sop.to_truth_table(), f);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Literal, TruthTable};

/// A product term over up to 16 variables.
///
/// `care` has a 1-bit for every variable the cube constrains; `value` gives
/// the required polarity on those bits. Bit `n - i` corresponds to `x_i`,
/// identical to the row-index convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cube {
    /// Mask of constrained variables.
    pub care: u32,
    /// Required values on the constrained variables (subset of `care`).
    pub value: u32,
}

impl Cube {
    /// The cube covering exactly one minterm of an `n`-input function.
    pub fn minterm(n: u8, q: u32) -> Self {
        let care = (1u32 << n) - 1;
        Self {
            care,
            value: q & care,
        }
    }

    /// Whether the cube covers row `q`.
    pub fn covers(&self, q: u32) -> bool {
        q & self.care == self.value
    }

    /// Tries to merge two cubes that differ in exactly one cared bit.
    pub fn combine(&self, other: &Self) -> Option<Self> {
        if self.care != other.care {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() == 1 {
            Some(Self {
                care: self.care & !diff,
                value: self.value & !diff,
            })
        } else {
            None
        }
    }

    /// Number of literals in the product term.
    pub fn literal_count(&self) -> u32 {
        self.care.count_ones()
    }

    /// The cube's literals for an `n`-input function, by ascending variable.
    pub fn literals(&self, n: u8) -> Vec<Literal> {
        (1..=n)
            .filter_map(|v| {
                let bit = 1u32 << (n - v);
                if self.care & bit == 0 {
                    None
                } else if self.value & bit != 0 {
                    Some(Literal::Pos(v))
                } else {
                    Some(Literal::Neg(v))
                }
            })
            .collect()
    }

    /// The cube's truth table as an `n`-input function.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
    pub fn to_truth_table(&self, n: u8) -> TruthTable {
        TruthTable::from_index_fn(n, |q| self.covers(q)).expect("n validated by caller")
    }
}

/// A sum-of-products cover of an `n`-input function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sop {
    n_inputs: u8,
    cubes: Vec<Cube>,
}

impl Sop {
    /// Creates a cover from explicit cubes.
    pub fn new(n_inputs: u8, cubes: Vec<Cube>) -> Self {
        Self { n_inputs, cubes }
    }

    /// Number of inputs.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// The product terms.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Total number of literals across all terms.
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluates the cover on a row index.
    pub fn eval(&self, q: u32) -> bool {
        self.cubes.iter().any(|c| c.covers(q))
    }

    /// Expands the cover back into a truth table.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_index_fn(self.n_inputs, |q| self.eval(q))
            .expect("n validated at construction")
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .cubes
            .iter()
            .map(|c| {
                let lits = c.literals(self.n_inputs);
                if lits.is_empty() {
                    "1".to_string()
                } else {
                    lits.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("·")
                }
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

/// Computes all prime implicants of `f` (with optional don't-cares).
///
/// Classic iterative combination: minterms (of `f ∪ dc`) are merged while
/// they differ in a single bit; cubes that were never merged are prime.
pub fn prime_implicants(f: &TruthTable, dont_care: Option<&TruthTable>) -> Vec<Cube> {
    let n = f.n_inputs();
    let mut current: BTreeSet<Cube> = (0..f.n_rows() as u32)
        .filter(|&q| f.get(q as usize) || dont_care.is_some_and(|d| d.get(q as usize)))
        .map(|q| Cube::minterm(n, q))
        .collect();
    let mut primes = Vec::new();
    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged = vec![false; cubes.len()];
        let mut next = BTreeSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(c) = cubes[i].combine(&cubes[j]) {
                    merged[i] = true;
                    merged[j] = true;
                    next.insert(c);
                }
            }
        }
        for (cube, was_merged) in cubes.iter().zip(&merged) {
            if !was_merged {
                primes.push(*cube);
            }
        }
        current = next;
    }
    primes
}

/// Minimizes `f` into a minimum-cardinality sum-of-products cover.
///
/// Essential prime implicants are extracted first; the remaining cyclic
/// core is solved exactly by branch and bound (minimizing the number of
/// cubes, with total literal count as tie-breaker at equal cardinality
/// via selection order).
pub fn minimize(f: &TruthTable) -> Sop {
    minimize_with_dont_cares(f, None)
}

/// Like [`minimize`], with an optional don't-care set.
pub fn minimize_with_dont_cares(f: &TruthTable, dont_care: Option<&TruthTable>) -> Sop {
    let n = f.n_inputs();
    let minterms: Vec<u32> = f.minterms();
    if minterms.is_empty() {
        return Sop::new(n, Vec::new());
    }
    let primes = prime_implicants(f, dont_care);
    if primes.len() == 1 {
        return Sop::new(n, primes);
    }

    // Build the covering table restricted to required minterms.
    let cover_sets: Vec<Vec<usize>> = minterms
        .iter()
        .map(|&q| {
            primes
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.covers(q).then_some(i))
                .collect()
        })
        .collect();

    // Essential primes: sole coverers of some minterm.
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    for covers in &cover_sets {
        if covers.len() == 1 {
            chosen.insert(covers[0]);
        }
    }
    let mut uncovered: Vec<usize> = (0..minterms.len())
        .filter(|&mi| !cover_sets[mi].iter().any(|p| chosen.contains(p)))
        .collect();

    // Exact branch and bound over the cyclic core.
    let mut best: Option<Vec<usize>> = None;
    let mut stack_choice: Vec<usize> = Vec::new();
    branch(&cover_sets, &mut uncovered, &mut stack_choice, &mut best);
    if let Some(extra) = best {
        chosen.extend(extra);
    }

    let mut cubes: Vec<Cube> = chosen.into_iter().map(|i| primes[i]).collect();
    cubes.sort();
    Sop::new(n, cubes)
}

fn branch(
    cover_sets: &[Vec<usize>],
    uncovered: &mut Vec<usize>,
    choice: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    if uncovered.is_empty() {
        if best.as_ref().is_none_or(|b| choice.len() < b.len()) {
            *best = Some(choice.clone());
        }
        return;
    }
    if let Some(b) = best {
        if choice.len() + 1 >= b.len() {
            return; // cannot improve
        }
    }
    // Branch on the uncovered minterm with the fewest coverers.
    let &mi = uncovered
        .iter()
        .min_by_key(|&&mi| cover_sets[mi].len())
        .expect("uncovered is non-empty");
    let candidates = cover_sets[mi].clone();
    for p in candidates {
        let removed: Vec<usize> = uncovered
            .iter()
            .copied()
            .filter(|&other| cover_sets[other].contains(&p))
            .collect();
        uncovered.retain(|other| !cover_sets[*other].contains(&p));
        choice.push(p);
        branch(cover_sets, uncovered, choice, best);
        choice.pop();
        uncovered.extend(removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn minimize_simple_or() {
        let f = TruthTable::from_bitstring("0111").unwrap();
        let sop = minimize(&f);
        assert_eq!(sop.cubes().len(), 2);
        assert_eq!(sop.to_truth_table(), f);
    }

    #[test]
    fn minimize_constants() {
        let zero = TruthTable::new_false(3).unwrap();
        assert!(minimize(&zero).cubes().is_empty());
        let one = TruthTable::new_true(3).unwrap();
        let sop = minimize(&one);
        assert_eq!(sop.cubes().len(), 1);
        assert_eq!(sop.cubes()[0].literal_count(), 0);
        assert_eq!(sop.to_truth_table(), one);
    }

    #[test]
    fn minimize_xor_needs_all_minterm_cubes() {
        let f = generators::xor_gate(3).output(0).unwrap().clone();
        let sop = minimize(&f);
        assert_eq!(sop.cubes().len(), 4); // parity has no mergeable minterms
        assert_eq!(sop.to_truth_table(), f);
        assert!(sop.cubes().iter().all(|c| c.literal_count() == 3));
    }

    #[test]
    fn classic_qmc_example() {
        // f(a,b,c,d) = Σ m(4,8,10,11,12,15), d(9,14) → 3 cubes is minimal.
        let mut f = TruthTable::new_false(4).unwrap();
        for q in [4usize, 8, 10, 11, 12, 15] {
            f.set(q, true);
        }
        let mut dc = TruthTable::new_false(4).unwrap();
        for q in [9usize, 14] {
            dc.set(q, true);
        }
        let sop = minimize_with_dont_cares(&f, Some(&dc));
        assert_eq!(sop.cubes().len(), 3);
        // The cover must agree with f on all care rows.
        for q in 0..16u32 {
            if !dc.get(q as usize) {
                assert_eq!(sop.eval(q), f.get(q as usize), "row {q}");
            }
        }
    }

    #[test]
    fn cover_is_always_equivalent() {
        // exhaustive over all 3-input functions
        for bits in 0..256u64 {
            let f = TruthTable::from_packed(3, bits).unwrap();
            let sop = minimize(&f);
            assert_eq!(sop.to_truth_table(), f, "function {bits:08b}");
        }
    }

    #[test]
    fn prime_implicants_of_and() {
        let f = generators::and_gate(2).output(0).unwrap().clone();
        let primes = prime_implicants(&f, None);
        assert_eq!(primes.len(), 1);
        assert_eq!(primes[0].literal_count(), 2);
    }

    #[test]
    fn cube_literals_and_display() {
        let c = Cube {
            care: 0b1010,
            value: 0b0010,
        };
        let lits = c.literals(4);
        assert_eq!(lits, vec![Literal::Neg(1), Literal::Pos(3)]);
        let sop = Sop::new(4, vec![c]);
        assert_eq!(sop.to_string(), "~x1·x3");
        assert_eq!(Sop::new(2, vec![]).to_string(), "0");
    }
}
