//! Randomized generators (and shrinkers) for Boolean-function fuzz inputs.
//!
//! The scenario fuzzer draws target functions from these generators instead
//! of the named benchmark set, so synthesis is exercised on the whole
//! function space rather than the handful of functions the paper tabulates.
//! All draws are pure functions of the passed RNG; shrinking goes through
//! the vendored [`proptest::shrink::Shrink`] trait and only ever clears
//! minterms or drops outputs — a shrunk function is always "closer to
//! constant false" than its parent.

use proptest::shrink::Shrink;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{MultiOutputFn, TruthTable};

/// Draws a uniformly random truth table over `n_inputs` variables.
///
/// # Panics
///
/// Panics if `n_inputs` is 0 or exceeds [`crate::TruthTable`]'s input limit.
pub fn truth_table(rng: &mut SmallRng, n_inputs: u8) -> TruthTable {
    let mut t = TruthTable::new_false(n_inputs).expect("valid input count");
    for q in 0..t.n_rows() {
        if rng.gen::<bool>() {
            t.set(q, true);
        }
    }
    t
}

/// Draws a random multi-output function with `n_inputs` variables and
/// `n_outputs` independent uniformly random outputs.
pub fn multi_output(
    rng: &mut SmallRng,
    name: impl Into<String>,
    n_inputs: u8,
    n_outputs: usize,
) -> MultiOutputFn {
    let outputs = (0..n_outputs).map(|_| truth_table(rng, n_inputs)).collect();
    MultiOutputFn::new(name, outputs).expect("outputs share an input count by construction")
}

impl Shrink for TruthTable {
    fn shrink_candidates(&self) -> Vec<Self> {
        // Clearing one minterm at a time descends monotonically toward
        // constant false (which has no candidates and ends the walk).
        (0..self.n_rows())
            .filter(|&q| self.get(q))
            .map(|q| {
                let mut t = self.clone();
                t.set(q, false);
                t
            })
            .collect()
    }
}

impl Shrink for MultiOutputFn {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.n_outputs() > 1 {
            for i in 0..self.n_outputs() {
                let mut tables = self.outputs().to_vec();
                tables.remove(i);
                out.push(
                    MultiOutputFn::new(self.name(), tables).expect("removal keeps inputs equal"),
                );
            }
        }
        for (i, table) in self.outputs().iter().enumerate() {
            for cand in table.shrink_candidates() {
                let mut tables = self.outputs().to_vec();
                tables[i] = cand;
                out.push(
                    MultiOutputFn::new(self.name(), tables)
                        .expect("shrinking preserves the input count"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::shrink::minimize;
    use rand::SeedableRng;

    #[test]
    fn generation_is_seed_deterministic() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..8)
                .map(|_| multi_output(&mut rng, "f", 3, 2).outputs().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn truth_table_shrinks_toward_constant_false() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = truth_table(&mut rng, 3);
        let shrunk = minimize(t, |_| true);
        assert!(shrunk.is_false());
    }

    #[test]
    fn shrinking_finds_a_minimal_failing_function() {
        let mut rng = SmallRng::seed_from_u64(11);
        let f = multi_output(&mut rng, "f", 3, 2);
        // Pretend the failure is "some output has at least 2 minterms set":
        // the unique local minimum is a single output with exactly 2 ones.
        let fails = |f: &MultiOutputFn| f.outputs().iter().any(|t| t.count_ones() >= 2);
        assert!(fails(&f), "seed must start failing");
        let shrunk = minimize(f, fails);
        assert_eq!(shrunk.n_outputs(), 1);
        assert_eq!(shrunk.outputs()[0].count_ones(), 2);
    }
}
