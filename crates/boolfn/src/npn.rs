//! NPN-style canonicalization of multi-output functions under the
//! **cost-preserving** symmetry subgroup of the mixed-mode architecture.
//!
//! Classic NPN equivalence relates two functions by input negation, input
//! permutation and *output* negation. For MAGIC-NOR/V-op synthesis the
//! output-negation part is **not** cost-preserving: complementing an output
//! costs an extra R-op (a NOR with const-0), so an optimal circuit for `f`
//! does not yield an optimal circuit for `¬f` by relabeling. The subgroup
//! that *does* preserve the paper's cost metrics exactly is:
//!
//! * **input permutation** — relabels `x_i ↦ x_{π(i)}` in every V-op
//!   electrode literal and R-op literal feed;
//! * **input polarity flips** — `x_i ↦ ~x_i` is a bijection on the admitted
//!   driver set `L_n` (paper §II-C), so it relabels literals without adding
//!   devices or cycles;
//! * **output permutation** — reorders the output taps.
//!
//! Applying any such transform to a circuit is a pure literal relabeling
//! plus an output reorder: `N_R`, `N_L`, `N_VS` and every other metric are
//! untouched, and UNSAT ladder rungs transfer verbatim. That is what makes
//! the transform safe as a **result-cache key**: a minimal circuit (and its
//! optimality certificate) for the canonical representative converts into a
//! minimal circuit for every member of the class.
//!
//! [`canonicalize`] searches the full subgroup (`n! · 2^n` input transforms,
//! outputs sorted canonically) for functions of up to
//! [`CANON_MAX_INPUTS`] inputs — comfortably covering the paper's n ≤ 4
//! benchmark space — and degrades to the identity transform above that (the
//! cache then keys on the raw function, which is still sound, just less
//! shared).

use serde::{Deserialize, Serialize};

use crate::{BoolFnError, Literal, MultiOutputFn, TruthTable};

/// Largest input count [`canonicalize`] searches exhaustively. `6! · 2^6 =
/// 46 080` input transforms is still sub-millisecond work; beyond that the
/// factorial wins and canonicalization falls back to the identity.
pub const CANON_MAX_INPUTS: u8 = 6;

/// An element of the cost-preserving transform subgroup: input permutation
/// × input polarity flips × output permutation.
///
/// Semantics of `g = t.apply(f)`: `g`'s input `x_i` *reads* `f`'s input
/// `x_{perm[i-1]}`, complemented when flip bit `i-1` is set, and `g`'s
/// output `k` is `f`'s output `output_perm[k]` over the transformed inputs.
/// Row-wise: `g(q) = f(q')` where bit `x_{perm[i-1]}` of `q'` equals bit
/// `x_i` of `q` XOR flip `i-1` (see [`map_row`](Self::map_row)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpnTransform {
    n_inputs: u8,
    /// `perm[i]` (0-based slot `i`) is the 1-based source variable feeding
    /// the transform's input `x_{i+1}`.
    perm: Vec<u8>,
    /// Bit `i` set ⇒ input `x_{i+1}` is complemented.
    flips: u32,
    /// `output_perm[k]` is the source output index of transformed output
    /// `k`.
    output_perm: Vec<usize>,
}

impl NpnTransform {
    /// The identity transform for a function shape.
    pub fn identity(n_inputs: u8, n_outputs: usize) -> Self {
        Self {
            n_inputs,
            perm: (1..=n_inputs).collect(),
            flips: 0,
            output_perm: (0..n_outputs).collect(),
        }
    }

    /// Builds a transform from its parts, validating both permutations.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::InvalidTransform`] when `perm` is not a
    /// permutation of `1..=n`, `flips` has bits above `n`, or
    /// `output_perm` is not a permutation of `0..n_outputs`.
    pub fn new(
        n_inputs: u8,
        perm: Vec<u8>,
        flips: u32,
        output_perm: Vec<usize>,
    ) -> Result<Self, BoolFnError> {
        let invalid = |reason: &str| BoolFnError::InvalidTransform {
            reason: reason.to_string(),
        };
        if perm.len() != usize::from(n_inputs) {
            return Err(invalid("input permutation has the wrong length"));
        }
        let mut seen = vec![false; usize::from(n_inputs)];
        for &v in &perm {
            if v == 0 || v > n_inputs || seen[usize::from(v - 1)] {
                return Err(invalid("input permutation is not a bijection on 1..=n"));
            }
            seen[usize::from(v - 1)] = true;
        }
        if n_inputs < 32 && flips >= 1u32 << n_inputs {
            return Err(invalid("polarity flips reference variables above n"));
        }
        let mut seen = vec![false; output_perm.len()];
        for &k in &output_perm {
            if k >= output_perm.len() || seen[k] {
                return Err(invalid("output permutation is not a bijection"));
            }
            seen[k] = true;
        }
        Ok(Self {
            n_inputs,
            perm,
            flips,
            output_perm,
        })
    }

    /// Number of inputs the transform acts on.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// Number of outputs the transform acts on.
    pub fn n_outputs(&self) -> usize {
        self.output_perm.len()
    }

    /// Whether this is the identity transform.
    pub fn is_identity(&self) -> bool {
        self.flips == 0
            && self
                .perm
                .iter()
                .enumerate()
                .all(|(i, &v)| usize::from(v) == i + 1)
            && self.output_perm.iter().enumerate().all(|(k, &v)| v == k)
    }

    /// The output permutation (`output_perm[k]` = source output of
    /// transformed output `k`).
    pub fn output_perm(&self) -> &[usize] {
        &self.output_perm
    }

    /// Maps a row index `q` of the transformed function to the row `q'` of
    /// the source function it evaluates: bit `x_{perm[i-1]}` of `q'` is bit
    /// `x_i` of `q` XOR flip `i-1`.
    pub fn map_row(&self, q: u32) -> u32 {
        let n = self.n_inputs;
        let mut out = 0u32;
        for i in 0..usize::from(n) {
            // Value of the transform's input x_{i+1} under q.
            let bit = (q >> (usize::from(n) - 1 - i)) & 1;
            let bit = bit ^ ((self.flips >> i) & 1);
            // Feed it into source variable perm[i] (1-based).
            let src = usize::from(self.perm[i]);
            out |= bit << (usize::from(n) - src);
        }
        out
    }

    /// Maps a literal of the *source* function's input space into the
    /// transformed space. This is the relabeling that converts a circuit
    /// implementing `g` into one implementing [`apply`](Self::apply)`(g)`:
    /// replace every literal `l` with `map_literal(l)` and reorder outputs
    /// by [`output_perm`](Self::output_perm).
    ///
    /// # Panics
    ///
    /// Panics if the literal references a variable outside `1..=n`.
    pub fn map_literal(&self, lit: Literal) -> Literal {
        let var = match lit {
            Literal::Const0 | Literal::Const1 => return lit,
            Literal::Pos(v) | Literal::Neg(v) => v,
        };
        let slot = self
            .perm
            .iter()
            .position(|&v| v == var)
            .unwrap_or_else(|| panic!("literal x{var} out of range for transform"));
        let mapped = match lit {
            Literal::Pos(_) => Literal::Pos(slot as u8 + 1),
            Literal::Neg(_) => Literal::Neg(slot as u8 + 1),
            _ => unreachable!(),
        };
        if (self.flips >> slot) & 1 == 1 {
            mapped.complement()
        } else {
            mapped
        }
    }

    /// Applies the input part of the transform to a single truth table.
    pub fn apply_table(&self, tt: &TruthTable) -> TruthTable {
        TruthTable::from_index_fn(self.n_inputs, |q| tt.get(self.map_row(q) as usize))
            .expect("n_inputs already validated by the source table")
    }

    /// Applies the transform to a multi-output function.
    ///
    /// # Panics
    ///
    /// Panics when the function shape disagrees with the transform shape.
    pub fn apply(&self, f: &MultiOutputFn) -> MultiOutputFn {
        assert_eq!(f.n_inputs(), self.n_inputs, "input count mismatch");
        assert_eq!(
            f.n_outputs(),
            self.output_perm.len(),
            "output count mismatch"
        );
        let outputs = self
            .output_perm
            .iter()
            .map(|&k| self.apply_table(f.output(k).expect("validated bijection")))
            .collect();
        MultiOutputFn::new(f.name(), outputs).expect("shape preserved")
    }

    /// The inverse transform: `t.inverse().apply(&t.apply(f))` equals `f`
    /// (up to the name metadata [`apply`](Self::apply) carries over).
    pub fn inverse(&self) -> Self {
        let n = usize::from(self.n_inputs);
        let mut perm = vec![0u8; n];
        let mut flips = 0u32;
        for (i, &src) in self.perm.iter().enumerate() {
            let j = usize::from(src - 1);
            perm[j] = i as u8 + 1;
            flips |= ((self.flips >> i) & 1) << j;
        }
        let mut output_perm = vec![0usize; self.output_perm.len()];
        for (k, &src) in self.output_perm.iter().enumerate() {
            output_perm[src] = k;
        }
        Self {
            n_inputs: self.n_inputs,
            perm,
            flips,
            output_perm,
        }
    }
}

/// Generates all permutations of `1..=n` in lexicographic order.
fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut current: Vec<u8> = (1..=n).collect();
    let mut all = vec![current.clone()];
    // Deterministic next-permutation loop (lexicographic successor).
    loop {
        let len = current.len();
        let Some(i) = (0..len.saturating_sub(1))
            .rev()
            .find(|&i| current[i] < current[i + 1])
        else {
            return all;
        };
        let j = (i + 1..len)
            .rev()
            .find(|&j| current[j] > current[i])
            .expect("successor exists by choice of i");
        current.swap(i, j);
        current[i + 1..].reverse();
        all.push(current.clone());
    }
}

/// The packed comparison key of a transformed function: every output table
/// as a `u64` word, in canonical (sorted) output order.
fn candidate_key(t: &NpnTransform, f: &MultiOutputFn) -> Vec<u64> {
    t.output_perm
        .iter()
        .map(|&k| {
            t.apply_table(f.output(k).expect("in range"))
                .to_packed()
                .expect("n ≤ CANON_MAX_INPUTS ≤ 6 fits one word")
        })
        .collect()
}

/// Canonicalizes `f` under the cost-preserving subgroup, returning the
/// canonical representative `g` and the transform `t` with `g = t.apply(f)`.
/// De-canonicalize results with `t.inverse()`.
///
/// The canonical representative is deterministic: among all `n! · 2^n`
/// input transforms (outputs sorted by packed table value, ties kept in
/// source order) the lexicographically smallest output-table vector wins,
/// first winner kept. Functions with more than [`CANON_MAX_INPUTS`] inputs
/// return the identity transform unchanged.
pub fn canonicalize(f: &MultiOutputFn) -> (MultiOutputFn, NpnTransform) {
    let n = f.n_inputs();
    if n > CANON_MAX_INPUTS {
        return (f.clone(), NpnTransform::identity(n, f.n_outputs()));
    }
    let mut best: Option<(Vec<u64>, NpnTransform)> = None;
    for perm in permutations(n) {
        for flips in 0..(1u32 << n) {
            let mut t = NpnTransform {
                n_inputs: n,
                perm: perm.clone(),
                flips,
                output_perm: (0..f.n_outputs()).collect(),
            };
            // Canonical output order: sort transformed tables ascending,
            // breaking ties by source index (sort_by_key is stable).
            let packed: Vec<u64> = (0..f.n_outputs())
                .map(|k| {
                    t.apply_table(f.output(k).expect("in range"))
                        .to_packed()
                        .expect("n ≤ 6")
                })
                .collect();
            t.output_perm.sort_by_key(|&k| packed[k]);
            let key = candidate_key(&t, f);
            if best.as_ref().is_none_or(|(b, _)| key < *b) {
                best = Some((key, t));
            }
        }
    }
    let (_, t) = best.expect("at least the identity was considered");
    (t.apply(f), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn random_fn(seed: u64, n: u8, n_out: usize) -> MultiOutputFn {
        // Deterministic xorshift-filled tables.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let outputs = (0..n_out)
            .map(|_| {
                let bits = next();
                TruthTable::from_index_fn(n, |q| (bits >> (q % 64)) & 1 == 1).unwrap()
            })
            .collect();
        MultiOutputFn::new("rand", outputs).unwrap()
    }

    fn random_transform(seed: u64, n: u8, n_out: usize) -> NpnTransform {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut perm: Vec<u8> = (1..=n).collect();
        for i in (1..perm.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut output_perm: Vec<usize> = (0..n_out).collect();
        for i in (1..output_perm.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            output_perm.swap(i, j);
        }
        let flips = (next() % (1 << n)) as u32;
        NpnTransform::new(n, perm, flips, output_perm).unwrap()
    }

    #[test]
    fn identity_is_identity() {
        let f = generators::gf22_multiplier();
        let id = NpnTransform::identity(f.n_inputs(), f.n_outputs());
        assert!(id.is_identity());
        assert_eq!(id.apply(&f).outputs(), f.outputs());
        assert!(id.inverse().is_identity());
    }

    #[test]
    fn validation_rejects_malformed_transforms() {
        assert!(NpnTransform::new(3, vec![1, 2], 0, vec![0]).is_err());
        assert!(NpnTransform::new(3, vec![1, 2, 2], 0, vec![0]).is_err());
        assert!(NpnTransform::new(3, vec![1, 2, 4], 0, vec![0]).is_err());
        assert!(NpnTransform::new(3, vec![1, 2, 3], 0b1000, vec![0]).is_err());
        assert!(NpnTransform::new(3, vec![1, 2, 3], 0, vec![1, 1]).is_err());
        assert!(NpnTransform::new(3, vec![3, 1, 2], 0b101, vec![1, 0]).is_ok());
    }

    #[test]
    fn apply_matches_pointwise_semantics() {
        // x1 (of the transform) reads source x2 complemented; x2 reads x1.
        let f = generators::gf22_multiplier();
        let t = NpnTransform::new(4, vec![2, 1, 4, 3], 0b0001, vec![0, 1]).unwrap();
        let g = t.apply(&f);
        for q in 0..16u32 {
            assert_eq!(
                g.output(0).unwrap().get(q as usize),
                f.output(0).unwrap().get(t.map_row(q) as usize)
            );
        }
    }

    #[test]
    fn inverse_roundtrips_functions() {
        for seed in 1..30u64 {
            for (n, n_out) in [(2u8, 1usize), (3, 2), (4, 3)] {
                let f = random_fn(seed * 77, n, n_out);
                let t = random_transform(seed * 131, n, n_out);
                let g = t.apply(&f);
                assert_eq!(
                    t.inverse().apply(&g).outputs(),
                    f.outputs(),
                    "seed {seed} n {n}"
                );
            }
        }
    }

    #[test]
    fn inverse_composes_to_identity_on_rows_and_literals() {
        let t = random_transform(99, 4, 2);
        let inv = t.inverse();
        for q in 0..16u32 {
            assert_eq!(inv.map_row(t.map_row(q)), q);
        }
        for lit in [
            Literal::Const0,
            Literal::Const1,
            Literal::Pos(1),
            Literal::Neg(2),
            Literal::Pos(3),
            Literal::Neg(4),
        ] {
            assert_eq!(inv.map_literal(t.map_literal(lit)), lit);
        }
    }

    #[test]
    fn canonical_form_is_class_invariant() {
        // Every transform of f canonicalizes to the same representative.
        for seed in 1..12u64 {
            let f = random_fn(seed * 13, 3, 2);
            let (canon, t) = canonicalize(&f);
            assert_eq!(t.apply(&f).outputs(), canon.outputs());
            for s in 1..8u64 {
                let g = random_transform(seed * 1000 + s, 3, 2).apply(&f);
                let (canon2, t2) = canonicalize(&g);
                assert_eq!(canon2.outputs(), canon.outputs(), "seed {seed}/{s}");
                assert_eq!(t2.apply(&g).outputs(), canon2.outputs());
            }
        }
    }

    #[test]
    fn canonicalize_is_deterministic_and_idempotent() {
        let f = generators::gf22_multiplier();
        let (c1, t1) = canonicalize(&f);
        let (c2, t2) = canonicalize(&f);
        assert_eq!(c1.outputs(), c2.outputs());
        assert_eq!(t1, t2);
        // A canonical representative canonicalizes to itself.
        let (c3, _) = canonicalize(&c1);
        assert_eq!(c3.outputs(), c1.outputs());
    }

    #[test]
    fn class_structure_matches_the_subgroup() {
        // For XOR an input flip *is* an output complement (¬a⊕b = ¬(a⊕b)),
        // so xor and xnor share a class — relabeling literals genuinely
        // converts one optimal circuit into the other.
        let xor = generators::xor_gate(2);
        let xnor = generators::xnor_gate(2);
        assert_eq!(
            canonicalize(&xor).0.outputs(),
            canonicalize(&xnor).0.outputs()
        );
        // AND and NAND do not: no input relabeling complements AND's single
        // minterm into NAND's three, and the subgroup deliberately excludes
        // output negation (it costs an extra R-op).
        let and = generators::and_gate(2);
        let nand = generators::nand_gate(2);
        assert_ne!(
            canonicalize(&and).0.outputs(),
            canonicalize(&nand).0.outputs()
        );
        // AND's class under input flips contains all 4 minterm-singletons.
        for bits in ["0001", "0010", "0100", "1000"] {
            let g =
                MultiOutputFn::new("m", vec![TruthTable::from_bitstring(bits).unwrap()]).unwrap();
            assert_eq!(canonicalize(&g).0.outputs(), canonicalize(&and).0.outputs());
        }
    }

    #[test]
    fn large_inputs_fall_back_to_identity() {
        let f = random_fn(5, 7, 1);
        let (c, t) = canonicalize(&f);
        assert!(t.is_identity());
        assert_eq!(c.outputs(), f.outputs());
    }

    #[test]
    fn serde_roundtrip() {
        let t = random_transform(7, 4, 2);
        let json = serde_json::to_string(&t).unwrap();
        let back: NpnTransform = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
