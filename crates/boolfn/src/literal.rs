use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BoolFnError, TruthTable};

/// One element of the electrode driver set
/// `L_n = (const-0, const-1, ~x_1, x_1, …, ~x_n, x_n)` (paper §II-C).
///
/// Because reading resistance states back out of the array is undesirable,
/// the paper restricts every top/bottom electrode of a V-op to this set; it
/// is "much easier to realize" in peripherals than input-dependent writes.
///
/// Variable indices are 1-based to match the paper's `x_1 … x_n`.
///
/// # Example
///
/// ```
/// use mm_boolfn::Literal;
///
/// let l = Literal::Neg(4);
/// assert_eq!(l.to_string(), "~x4");
/// assert_eq!(l.truth_table(4).to_bitstring(), "1010101010101010");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Literal {
    /// The constant 0 (ground / no write pulse).
    Const0,
    /// The constant 1 (write pulse).
    Const1,
    /// The positive literal `x_i` (1-based).
    Pos(u8),
    /// The negated literal `~x_i` (1-based).
    Neg(u8),
}

impl Literal {
    /// The literal's value under an input assignment packed as a row index
    /// (bit `n - i` of `assignment` is `x_i`).
    ///
    /// # Panics
    ///
    /// Panics if the literal references a variable outside `1..=n`.
    pub fn eval(self, n: u8, assignment: u32) -> bool {
        match self {
            Self::Const0 => false,
            Self::Const1 => true,
            Self::Pos(v) => {
                assert!(v >= 1 && v <= n, "literal x{v} out of range for n = {n}");
                (assignment >> (n - v)) & 1 == 1
            }
            Self::Neg(v) => !Self::Pos(v).eval(n, assignment),
        }
    }

    /// The literal's truth table as an `n`-input function.
    ///
    /// # Panics
    ///
    /// Panics if the literal references a variable outside `1..=n` or if
    /// `n` exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
    pub fn truth_table(self, n: u8) -> TruthTable {
        match self {
            Self::Const0 => TruthTable::new_false(n).expect("n validated by caller"),
            Self::Const1 => TruthTable::new_true(n).expect("n validated by caller"),
            Self::Pos(v) => TruthTable::var(n, v).expect("variable validated by caller"),
            Self::Neg(v) => !TruthTable::var(n, v).expect("variable validated by caller"),
        }
    }

    /// The complementary literal (`x_i` ↔ `~x_i`, `0` ↔ `1`).
    pub fn complement(self) -> Self {
        match self {
            Self::Const0 => Self::Const1,
            Self::Const1 => Self::Const0,
            Self::Pos(v) => Self::Neg(v),
            Self::Neg(v) => Self::Pos(v),
        }
    }

    /// Whether the literal is one of the two constants.
    pub fn is_const(self) -> bool {
        matches!(self, Self::Const0 | Self::Const1)
    }

    /// The variable the literal refers to, if any (1-based).
    pub fn variable(self) -> Option<u8> {
        match self {
            Self::Pos(v) | Self::Neg(v) => Some(v),
            _ => None,
        }
    }

    /// Position of the literal in the canonical ordering of `L_n`
    /// (`const-0`, `const-1`, `~x_1`, `x_1`, …, `~x_n`, `x_n`), 0-based.
    ///
    /// This ordering is exactly the one used when the paper decodes SAT
    /// models (§III-B: "literal 9 out of the list
    /// `L_4 = (const-0, const-1, ~x_1, x_1, …, ~x_4, x_4)`" is `~x_4` with
    /// 1-based indexing).
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::VariableOutOfRange`] if the literal's variable
    /// exceeds `n`.
    pub fn index_in(self, n: u8) -> Result<usize, BoolFnError> {
        let check = |v: u8| {
            if v == 0 || v > n {
                Err(BoolFnError::VariableOutOfRange {
                    var: v.into(),
                    n_inputs: n,
                })
            } else {
                Ok(())
            }
        };
        Ok(match self {
            Self::Const0 => 0,
            Self::Const1 => 1,
            Self::Neg(v) => {
                check(v)?;
                2 * v as usize
            }
            Self::Pos(v) => {
                check(v)?;
                2 * v as usize + 1
            }
        })
    }

    /// Inverse of [`Literal::index_in`]: the literal at 0-based position
    /// `index` of the canonical `L_n` ordering.
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::VariableOutOfRange`] if `index ≥ 2 + 2n`.
    pub fn from_index(n: u8, index: usize) -> Result<Self, BoolFnError> {
        if index >= 2 + 2 * n as usize {
            return Err(BoolFnError::VariableOutOfRange {
                var: index as u32,
                n_inputs: n,
            });
        }
        Ok(match index {
            0 => Self::Const0,
            1 => Self::Const1,
            i if i % 2 == 0 => Self::Neg((i / 2) as u8),
            i => Self::Pos((i / 2) as u8),
        })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Const0 => write!(f, "const-0"),
            Self::Const1 => write!(f, "const-1"),
            Self::Pos(v) => write!(f, "x{v}"),
            Self::Neg(v) => write!(f, "~x{v}"),
        }
    }
}

/// The full driver set `L_n` for an `n`-input function, in canonical order.
///
/// # Example
///
/// ```
/// use mm_boolfn::{Literal, LiteralSet};
///
/// let l2 = LiteralSet::new(2);
/// assert_eq!(l2.len(), 6);
/// assert_eq!(l2.get(3), Some(Literal::Pos(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiteralSet {
    n_inputs: u8,
}

impl LiteralSet {
    /// The canonical literal set for an `n`-input function.
    pub fn new(n: u8) -> Self {
        Self { n_inputs: n }
    }

    /// Number of literals, `2 + 2n`.
    pub fn len(&self) -> usize {
        2 + 2 * self.n_inputs as usize
    }

    /// Always false; `L_n` contains at least the two constants.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of inputs `n`.
    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    /// The literal at 0-based position `index`, or `None` out of range.
    pub fn get(&self, index: usize) -> Option<Literal> {
        Literal::from_index(self.n_inputs, index).ok()
    }

    /// Iterates over the literals in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Literal> + '_ {
        (0..self.len())
            .map(|i| Literal::from_index(self.n_inputs, i).expect("index < len is always valid"))
    }

    /// Truth tables of every literal, in canonical order.
    ///
    /// This is the base set fed to both the SAT encoder (Eq. 4) and the
    /// universality census of Table III.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        self.iter().map(|l| l.truth_table(self.n_inputs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_matches_paper() {
        let l4 = LiteralSet::new(4);
        let expected = [
            Literal::Const0,
            Literal::Const1,
            Literal::Neg(1),
            Literal::Pos(1),
            Literal::Neg(2),
            Literal::Pos(2),
            Literal::Neg(3),
            Literal::Pos(3),
            Literal::Neg(4),
            Literal::Pos(4),
        ];
        let got: Vec<_> = l4.iter().collect();
        assert_eq!(got, expected);
        // §III-B: 1-based literal 9 (0-based 8) of L_4 drives V1.2 and is ~x4.
        assert_eq!(l4.get(8), Some(Literal::Neg(4)));
    }

    #[test]
    fn index_round_trip() {
        let n = 5;
        for i in 0..(2 + 2 * n as usize) {
            let l = Literal::from_index(n, i).unwrap();
            assert_eq!(l.index_in(n).unwrap(), i);
        }
        assert!(Literal::from_index(n, 12).is_err());
        assert!(Literal::Pos(6).index_in(5).is_err());
    }

    #[test]
    fn eval_and_truth_table_agree() {
        let n = 3;
        for l in LiteralSet::new(n).iter() {
            let tt = l.truth_table(n);
            for q in 0..(1u32 << n) {
                assert_eq!(l.eval(n, q), tt.eval(q), "literal {l} row {q}");
            }
        }
    }

    #[test]
    fn complement_is_involution() {
        for l in LiteralSet::new(4).iter() {
            assert_eq!(l.complement().complement(), l);
        }
        assert_eq!(Literal::Const0.complement(), Literal::Const1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Literal::Pos(3).to_string(), "x3");
        assert_eq!(Literal::Neg(1).to_string(), "~x1");
        assert_eq!(Literal::Const0.to_string(), "const-0");
        assert_eq!(Literal::Const1.to_string(), "const-1");
    }
}
