use std::error::Error;
use std::fmt;

/// Errors produced when constructing or combining Boolean functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoolFnError {
    /// The requested input count exceeds [`MAX_INPUTS`](crate::MAX_INPUTS).
    TooManyInputs {
        /// The requested number of inputs.
        requested: u32,
    },
    /// A variable index was outside `1..=n`.
    VariableOutOfRange {
        /// The 1-based variable index that was requested.
        var: u32,
        /// The number of inputs of the function.
        n_inputs: u8,
    },
    /// A row index was outside `0..2^n`.
    RowOutOfRange {
        /// The offending row index.
        row: u64,
        /// The number of rows of the table.
        n_rows: u64,
    },
    /// Two truth tables with different input counts were combined.
    InputCountMismatch {
        /// Input count of the left operand.
        left: u8,
        /// Input count of the right operand.
        right: u8,
    },
    /// A bitstring could not be parsed into a truth table.
    ParseBitstring {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// A multi-output function was built without any outputs.
    EmptyFunction,
    /// An [`NpnTransform`](crate::npn::NpnTransform) was built from parts
    /// that are not bijections on the function shape.
    InvalidTransform {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// The polynomial passed to [`Gf2m`](crate::Gf2m) is not valid for the
    /// requested field size.
    InvalidFieldPolynomial {
        /// Field extension degree `m`.
        m: u8,
        /// The rejected polynomial (bit `i` = coefficient of `x^i`).
        poly: u32,
    },
}

impl fmt::Display for BoolFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyInputs { requested } => {
                write!(
                    f,
                    "requested {requested} inputs but at most {} are supported",
                    crate::MAX_INPUTS
                )
            }
            Self::VariableOutOfRange { var, n_inputs } => {
                write!(
                    f,
                    "variable x{var} does not exist in a {n_inputs}-input function"
                )
            }
            Self::RowOutOfRange { row, n_rows } => {
                write!(
                    f,
                    "row {row} is out of range for a table with {n_rows} rows"
                )
            }
            Self::InputCountMismatch { left, right } => {
                write!(
                    f,
                    "cannot combine truth tables with {left} and {right} inputs"
                )
            }
            Self::ParseBitstring { reason } => write!(f, "invalid truth-table bitstring: {reason}"),
            Self::EmptyFunction => write!(f, "multi-output function must have at least one output"),
            Self::InvalidTransform { reason } => {
                write!(f, "invalid NPN transform: {reason}")
            }
            Self::InvalidFieldPolynomial { m, poly } => {
                write!(
                    f,
                    "polynomial {poly:#b} is not a degree-{m} irreducible modulus"
                )
            }
        }
    }
}

impl Error for BoolFnError {}
