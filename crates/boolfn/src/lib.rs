//! Bit-packed truth tables, literals, finite-field arithmetic and Boolean
//! function generators for memristive mixed-mode synthesis.
//!
//! This crate is the Boolean substrate underneath the synthesis engine of
//! *Optimal Synthesis of Memristive Mixed-Mode Circuits* (DATE 2025). It
//! provides:
//!
//! * [`TruthTable`] — a bit-packed truth table for functions of up to
//!   [`MAX_INPUTS`] inputs, with the full set of Boolean connectives plus the
//!   memristive operations used by the paper ([`TruthTable::v_op`],
//!   [`TruthTable::nor`], [`TruthTable::nimp`]).
//! * [`Literal`] and [`LiteralSet`] — the restricted driver set
//!   `L_n = {const-0, const-1, x_1, ~x_1, …, x_n, ~x_n}` admitted on the
//!   top/bottom electrodes (paper §II-C).
//! * [`MultiOutputFn`] — a named multi-output specification, the `f` in the
//!   paper's formula `Φ(f, N_V, N_R)`.
//! * [`Gf2m`] — arithmetic in GF(2^m), used to generate the paper's
//!   Galois-field benchmark functions.
//! * [`generators`] — the complete benchmark suite of the paper's evaluation
//!   (ripple adders, GF(2²) multiplication, GF(2⁴) inversion, n-input gates).
//! * [`qmc`] — a Quine–McCluskey two-level minimizer feeding the scalable
//!   heuristic mapper.
//!
//! # Row-index convention
//!
//! A truth table of an `n`-input function has `2^n` rows indexed
//! `q ∈ 0..2^n`. Input `x_i` (1-based, as in the paper) takes the value of
//! bit `n - i` of `q`, i.e. `x_1` is the slowest-toggling (most significant)
//! input and `x_n` alternates every row. This matches the paper's Table II,
//! where the truth table of `x_4` reads `0101…`.
//!
//! # Example
//!
//! ```
//! use mm_boolfn::{TruthTable, Literal};
//!
//! # fn main() -> Result<(), mm_boolfn::BoolFnError> {
//! // x1 AND x2, built from variables.
//! let x1 = TruthTable::var(2, 1)?;
//! let x2 = TruthTable::var(2, 2)?;
//! let and = &x1 & &x2;
//! assert_eq!(and.to_bitstring(), "0001");
//!
//! // The same function as a V-op sequence per Eq. (1) of the paper:
//! // V(x1, x2, const-1) = x1 · x2.
//! let c1 = Literal::Const1.truth_table(2);
//! assert_eq!(x1.v_op(&x2, &c1), and);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod function;
mod gf2;
mod literal;
mod truth_table;

pub mod arbitrary;
pub mod generators;
pub mod npn;
pub mod qmc;

pub use error::BoolFnError;
pub use function::MultiOutputFn;
pub use gf2::Gf2m;
pub use literal::{Literal, LiteralSet};
pub use truth_table::TruthTable;

/// Maximum number of function inputs supported by [`TruthTable`].
///
/// `2^16` rows is far beyond the reach of optimal synthesis (the paper stops
/// at 7 inputs) but keeps the heuristic mapper useful for larger functions.
pub const MAX_INPUTS: u8 = 16;
