//! Property-based validation of assumption-based incremental solving.
//!
//! Three semantic contracts back the incremental minimality ladder:
//!
//! 1. SAT under assumptions ⇒ the returned model satisfies every clause
//!    *and* every assumption.
//! 2. UNSAT under assumptions ⇒ the formula stays UNSAT when the
//!    assumptions are added as unit clauses to a fresh one-shot solver
//!    (i.e. "UNSAT under assumptions" is never an artifact of solver
//!    reuse).
//! 3. The failed-assumption set is a genuine subset of the assumptions,
//!    and is itself already incompatible: formula + failed-set units is
//!    UNSAT on its own.
//!
//! A fourth property checks the reuse story end to end: a solver answering
//! a whole sequence of assumption sets agrees call-by-call with fresh
//! cold solvers given the assumptions as units.

use mm_sat::{Budget, CnfFormula, Lit, SatResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `n_vars` variables, as (var, polarity) pairs.
fn clauses_strategy(n_vars: u32) -> impl Strategy<Value = Vec<Vec<(u32, bool)>>> {
    let clause = prop::collection::vec((0..n_vars, any::<bool>()), 1..=4);
    prop::collection::vec(clause, 1..50)
}

/// A random assumption set over the same variables (may contain duplicates
/// and contradictory pairs — the solver must cope with both).
fn assumptions_strategy(n_vars: u32) -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0..n_vars, any::<bool>()), 0..=6)
}

fn build(n_vars: u32, raw: &[Vec<(u32, bool)>]) -> (CnfFormula, Vec<Vec<Lit>>) {
    let mut cnf = CnfFormula::new();
    cnf.reserve_vars(n_vars);
    let mut list = Vec::new();
    for c in raw {
        let clause: Vec<Lit> = c
            .iter()
            .map(|&(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        list.push(clause.clone());
        cnf.add_clause(clause);
    }
    (cnf, list)
}

fn to_lits(raw: &[(u32, bool)]) -> Vec<Lit> {
    raw.iter()
        .map(|&(v, pos)| Var::from_index(v).lit(pos))
        .collect()
}

/// One-shot ground truth: the formula with `units` added as unit clauses.
fn cold_solve_with_units(cnf: &CnfFormula, units: &[Lit]) -> SatResult {
    let mut hardened = cnf.clone();
    for &l in units {
        hardened.add_unit(l);
    }
    Solver::new(hardened).solve()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn assumption_verdicts_match_unit_clause_verdicts(
        raw in clauses_strategy(9),
        asm in assumptions_strategy(9),
    ) {
        let (cnf, clauses) = build(9, &raw);
        let assumptions = to_lits(&asm);
        let expected = cold_solve_with_units(&cnf, &assumptions);

        let mut solver = Solver::new(cnf.clone());
        match solver.solve_under_assumptions(&assumptions, Budget::new()) {
            SatResult::Sat(m) => {
                prop_assert!(expected.is_sat(), "incremental SAT but units-solve UNSAT");
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| m.value(l)), "model violates a clause");
                }
                for &a in &assumptions {
                    prop_assert!(m.value(a), "model violates assumption {a:?}");
                }
            }
            SatResult::Unsat => {
                prop_assert!(expected.is_unsat(), "incremental UNSAT but units-solve SAT");
            }
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn failed_assumptions_are_an_unsat_subset(
        raw in clauses_strategy(8),
        asm in assumptions_strategy(8),
    ) {
        let (cnf, _) = build(8, &raw);
        let assumptions = to_lits(&asm);
        let mut solver = Solver::new(cnf.clone());
        if solver.solve_under_assumptions(&assumptions, Budget::new()) == SatResult::Unsat {
            let failed = solver.failed_assumptions().to_vec();
            for l in &failed {
                prop_assert!(
                    assumptions.contains(l),
                    "failed literal {l:?} is not among the assumptions"
                );
            }
            // The failed subset alone must already refute the formula.
            prop_assert!(
                cold_solve_with_units(&cnf, &failed).is_unsat(),
                "failed-assumption set is not a refuting core"
            );
        }
    }

    #[test]
    fn solver_reuse_agrees_with_cold_solves_across_a_sequence(
        raw in clauses_strategy(8),
        asm_seq in prop::collection::vec(assumptions_strategy(8), 1..4),
    ) {
        let (cnf, _) = build(8, &raw);
        let mut warm = Solver::new(cnf.clone());
        for asm in &asm_seq {
            let assumptions = to_lits(asm);
            let warm_verdict = warm
                .solve_under_assumptions(&assumptions, Budget::new())
                .is_sat();
            let cold_verdict = cold_solve_with_units(&cnf, &assumptions).is_sat();
            prop_assert!(warm_verdict == cold_verdict, "warm/cold divergence");
        }
    }
}
