//! Property-based validation of the inprocessing layer: simplification
//! preserves satisfiability, models restrict correctly onto eliminated
//! variables, every certified verdict stays checkable, and diversified
//! solvers agree on every verdict.

use mm_sat::{drat, Budget, CnfFormula, Diversity, DratProof, Lit, SatResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `n_vars` variables, as (var, polarity) pairs.
/// Length-1 clauses are included deliberately: they drive the unit-cascade
/// paths of subsumption and variable elimination.
fn clauses_strategy(n_vars: u32) -> impl Strategy<Value = Vec<Vec<(u32, bool)>>> {
    let clause = prop::collection::vec((0..n_vars, any::<bool>()), 1..=4);
    prop::collection::vec(clause, 1..60)
}

fn build(n_vars: u32, raw: &[Vec<(u32, bool)>]) -> (CnfFormula, Vec<Vec<Lit>>) {
    let mut cnf = CnfFormula::new();
    cnf.reserve_vars(n_vars);
    let mut list = Vec::new();
    for c in raw {
        let clause: Vec<Lit> = c
            .iter()
            .map(|&(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        list.push(clause.clone());
        cnf.add_clause(clause);
    }
    (cnf, list)
}

fn brute_force_sat(n_vars: u32, clauses: &[Vec<Lit>]) -> bool {
    (0u64..(1 << n_vars)).any(|bits| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|l| ((bits >> l.var().index()) & 1 == 1) == l.is_positive())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn inprocessing_preserves_satisfiability_and_models_restrict(
        raw in clauses_strategy(10)
    ) {
        // An explicit inprocessing pass before search must not change the
        // verdict, and a SAT model — after reconstruction of eliminated
        // variables — must satisfy every ORIGINAL clause, not just the
        // rewritten database.
        let (cnf, clauses) = build(10, &raw);
        let expected = brute_force_sat(10, &clauses);
        let mut solver = Solver::new(cnf);
        solver.inprocess_now();
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "inprocessed solver SAT but brute force UNSAT");
                for c in &clauses {
                    prop_assert!(
                        c.iter().any(|&l| model.value(l)),
                        "reconstructed model violates an original clause {:?}",
                        c
                    );
                }
            }
            SatResult::Unsat => {
                prop_assert!(!expected, "inprocessed solver UNSAT but brute force SAT")
            }
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn repeated_passes_are_safe(raw in clauses_strategy(9)) {
        // Inprocessing is idempotent-safe: running the pass several times
        // back to back leaves a database that still answers correctly.
        let (cnf, clauses) = build(9, &raw);
        let expected = brute_force_sat(9, &clauses);
        let mut solver = Solver::new(cnf);
        for _ in 0..3 {
            solver.inprocess_now();
        }
        prop_assert_eq!(solver.solve().is_sat(), expected);
    }

    #[test]
    fn inprocessed_unsat_proofs_always_check(raw in clauses_strategy(10)) {
        // With the proof log attached BEFORE the pass, every inprocessing
        // step (unit additions, strengthened/vivified clauses, resolvents,
        // deletions) lands in the proof, and the backward checker accepts
        // the refutation built on the rewritten database.
        let (cnf, clauses) = build(10, &raw);
        let mut solver =
            Solver::new(cnf.clone()).with_proof_writer(Box::<DratProof>::default());
        solver.inprocess_now();
        let (result, stats, proof) = solver.solve_certified(Budget::new());
        let proof = proof.expect("certified solve always returns the log");
        prop_assert_eq!(stats.proof_steps as usize, proof.n_steps());
        match result {
            SatResult::Sat(model) => {
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| model.value(l)));
                }
                prop_assert!(!proof.is_concluded());
            }
            SatResult::Unsat => {
                prop_assert!(proof.is_concluded());
                let verdict = drat::check(&cnf, &proof);
                prop_assert!(
                    verdict.is_ok(),
                    "checker rejected an inprocessed proof: {:?}",
                    verdict
                );
            }
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn frozen_assumptions_survive_inprocessing(
        raw in clauses_strategy(9),
        a0 in 0u32..9,
        p0 in any::<bool>(),
    ) {
        // Freezing an assumption variable up front keeps it out of BVE, so
        // a later solve under that assumption answers exactly like adding
        // the unit to the formula.
        let (cnf, clauses) = build(9, &raw);
        let assumption = Var::from_index(a0).lit(p0);
        let mut with_unit = clauses.clone();
        with_unit.push(vec![assumption]);
        let expected = brute_force_sat(9, &with_unit);

        let mut solver = Solver::new(cnf);
        solver.freeze_vars([assumption.var()]);
        solver.inprocess_now();
        prop_assert!(!solver.is_eliminated(assumption.var()));
        let result = solver.solve_under_assumptions(&[assumption], Budget::new());
        match result {
            SatResult::Sat(_) => prop_assert!(expected),
            SatResult::Unsat => prop_assert!(!expected),
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn diversified_workers_agree_on_every_verdict(raw in clauses_strategy(9)) {
        // Seed, phase and restart-policy diversification changes the
        // trajectory, never the verdict.
        let (cnf, clauses) = build(9, &raw);
        let expected = brute_force_sat(9, &clauses);
        for idx in 0..4 {
            let solver = Solver::new(cnf.clone()).with_diversity(Diversity::for_worker(idx));
            match solver.solve() {
                SatResult::Sat(model) => {
                    prop_assert!(expected, "worker {} SAT but brute force UNSAT", idx);
                    for c in &clauses {
                        prop_assert!(c.iter().any(|&l| model.value(l)));
                    }
                }
                SatResult::Unsat => {
                    prop_assert!(!expected, "worker {} UNSAT but brute force SAT", idx)
                }
                SatResult::Unknown => prop_assert!(false, "no budget was set"),
            }
        }
    }

    #[test]
    fn no_inprocess_budget_is_bit_identical_to_legacy(raw in clauses_strategy(9)) {
        // `--no-inprocess` must reproduce the pre-inprocessing solver: same
        // verdict AND same conflict/decision counts as a default-budget run
        // on formulas too small to ever reach the inprocessing threshold.
        let (cnf, _) = build(9, &raw);
        let (r_off, s_off) = Solver::new(cnf.clone())
            .solve_with_budget(Budget::new().with_inprocess(false));
        let (r_on, s_on) = Solver::new(cnf).solve_with_budget(Budget::new());
        prop_assert_eq!(r_off.is_sat(), r_on.is_sat());
        if s_on.conflicts < 1_000 {
            // Below the first-pass threshold the knob must be a no-op.
            prop_assert_eq!(s_off.conflicts, s_on.conflicts);
            prop_assert_eq!(s_off.decisions, s_on.decisions);
        }
    }
}
