//! Property-based cross-validation of the CDCL solver against brute force,
//! and of every certified verdict against the DRAT checker.

use mm_sat::{drat, Budget, CnfFormula, DratProof, ExactlyOne, Lit, SatResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `n_vars` variables, as (var, polarity) pairs.
fn clauses_strategy(n_vars: u32) -> impl Strategy<Value = Vec<Vec<(u32, bool)>>> {
    let clause = prop::collection::vec((0..n_vars, any::<bool>()), 1..=4);
    prop::collection::vec(clause, 1..60)
}

fn build(n_vars: u32, raw: &[Vec<(u32, bool)>]) -> (CnfFormula, Vec<Vec<Lit>>) {
    let mut cnf = CnfFormula::new();
    cnf.reserve_vars(n_vars);
    let mut list = Vec::new();
    for c in raw {
        let clause: Vec<Lit> = c
            .iter()
            .map(|&(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        list.push(clause.clone());
        cnf.add_clause(clause);
    }
    (cnf, list)
}

fn brute_force_sat(n_vars: u32, clauses: &[Vec<Lit>]) -> bool {
    (0u64..(1 << n_vars)).any(|bits| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|l| ((bits >> l.var().index()) & 1 == 1) == l.is_positive())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(raw in clauses_strategy(10)) {
        let (cnf, clauses) = build(10, &raw);
        let expected = brute_force_sat(10, &clauses);
        match Solver::new(cnf).solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver SAT but brute force UNSAT");
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| model.value(l)), "model violates a clause");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver UNSAT but brute force SAT"),
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn minimization_does_not_change_answers(raw in clauses_strategy(9)) {
        let (cnf, _) = build(9, &raw);
        let with = Solver::new(cnf.clone()).solve().is_sat();
        let mut solver = Solver::new(cnf);
        solver.set_minimize(false);
        let without = solver.solve().is_sat();
        prop_assert_eq!(with, without);
    }

    #[test]
    fn exactly_one_models_are_exact(k in 1usize..10, pick in any::<prop::sample::Index>()) {
        for enc in [ExactlyOne::Pairwise, ExactlyOne::Sequential, ExactlyOne::Commander] {
            let mut cnf = CnfFormula::new();
            let ys: Vec<Lit> = (0..k).map(|_| cnf.new_lit()).collect();
            cnf.exactly_one(&ys, enc);
            // Forcing any single y_i to be true must be satisfiable with all
            // other block literals false.
            let chosen = pick.index(k);
            cnf.add_unit(ys[chosen]);
            match Solver::new(cnf).solve() {
                SatResult::Sat(m) => {
                    for (i, &y) in ys.iter().enumerate() {
                        prop_assert_eq!(m.value(y), i == chosen);
                    }
                }
                other => prop_assert!(false, "expected SAT, got {:?}", other),
            }
        }
    }

    #[test]
    fn certified_verdicts_are_independently_checkable(raw in clauses_strategy(10)) {
        // Every UNSAT verdict's DRAT proof passes the checker (including
        // after a round trip through the textual format), and every SAT
        // model satisfies the formula clause by clause.
        let (cnf, clauses) = build(10, &raw);
        let (result, stats, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
        let proof = proof.expect("certified solve always returns the log");
        prop_assert_eq!(stats.proof_steps as usize, proof.n_steps());
        match result {
            SatResult::Sat(model) => {
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| model.value(l)), "model violates a clause");
                }
                prop_assert!(!proof.is_concluded(), "SAT must not conclude a refutation");
                prop_assert!(drat::check(&cnf, &proof).is_err());
            }
            SatResult::Unsat => {
                prop_assert!(proof.is_concluded());
                let direct = drat::check(&cnf, &proof);
                prop_assert!(direct.is_ok(), "checker rejected a solver proof: {:?}", direct);
                let reparsed = DratProof::parse(&proof.to_drat_string())
                    .expect("solver proofs serialize to valid DRAT text");
                prop_assert_eq!(&reparsed, &proof);
                prop_assert!(drat::check(&cnf, &reparsed).is_ok());
            }
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn truncated_proofs_never_check(raw in clauses_strategy(9)) {
        // Dropping the concluding empty clause — what a crash or abort
        // leaves behind — must always be rejected.
        let (cnf, _) = build(9, &raw);
        let (result, _, proof) = Solver::new(cnf.clone()).solve_certified(Budget::new());
        if result.is_unsat() {
            let proof = proof.expect("log present");
            let truncated =
                DratProof::from_steps(proof.steps()[..proof.n_steps() - 1].to_vec());
            prop_assert!(!truncated.is_concluded());
            prop_assert_eq!(
                drat::check(&cnf, &truncated),
                Err(drat::DratError::NoEmptyClause)
            );
        }
    }

    #[test]
    fn budgeted_solves_never_lie(raw in clauses_strategy(10)) {
        // With a tiny budget the solver may return Unknown, but when it does
        // answer, the answer must match brute force.
        let (cnf, clauses) = build(10, &raw);
        let expected = brute_force_sat(10, &clauses);
        let (result, _) =
            Solver::new(cnf).solve_with_budget(Budget::new().with_max_conflicts(8));
        match result {
            SatResult::Sat(_) => prop_assert!(expected),
            SatResult::Unsat => prop_assert!(!expected),
            SatResult::Unknown => {}
        }
    }
}
